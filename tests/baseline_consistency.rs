//! Cross-crate consistency checks between the LP-based baselines, the failure
//! model and the evaluation metrics.

use figret_solvers::{
    desensitization_config, normalized_bound_to_absolute, omniscient_config, prediction_config,
    DesensitizationSettings, Predictor, SolverEngine,
};
use figret_te::{
    max_link_utilization, max_sensitivity, reroute_around_failures, PathSet, TeConfig,
};
use figret_topology::{random_link_failures, Topology, TopologySpec};
use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};

fn setup() -> (figret_topology::Graph, PathSet, figret_traffic::TrafficTrace) {
    let graph = TopologySpec::full_scale(Topology::MetaWebPod).build();
    let paths = PathSet::k_shortest(&graph, 3);
    let trace = pod_trace(&graph, &PodTrafficConfig { num_snapshots: 40, ..Default::default() });
    (graph, paths, trace)
}

#[test]
fn omniscient_prediction_and_desensitization_are_ordered_sensibly() {
    let (_graph, paths, trace) = setup();
    let t = trace.len() - 1;
    let history: Vec<_> = trace.matrices()[t - 8..t].to_vec();
    let realized = trace.matrix(t);

    let omni = omniscient_config(&paths, realized, SolverEngine::Lp).unwrap();
    let pred =
        prediction_config(&paths, &history, Predictor::LastSnapshot, SolverEngine::Lp).unwrap();
    let des = desensitization_config(
        &paths,
        &history,
        &DesensitizationSettings::default(),
        SolverEngine::Lp,
    )
    .unwrap();

    let omni_mlu = max_link_utilization(&paths, &omni, realized);
    let pred_mlu = max_link_utilization(&paths, &pred, realized);
    let des_mlu = max_link_utilization(&paths, &des, realized);

    assert!(omni_mlu <= pred_mlu + 1e-9, "omniscient must lower-bound prediction TE");
    assert!(omni_mlu <= des_mlu + 1e-9, "omniscient must lower-bound desensitization TE");

    // Des TE respects the uniform sensitivity cap even after solving.
    let min_cap = paths.edge_capacities().iter().cloned().fold(f64::INFINITY, f64::min);
    let bound = normalized_bound_to_absolute(2.0 / 3.0, min_cap);
    assert!(max_sensitivity(&paths, &des) <= bound + 1e-6);
}

#[test]
fn rerouted_configurations_remain_valid_and_evaluable() {
    let (graph, paths, trace) = setup();
    let scenario = random_link_failures(&graph, 2, 5).expect("the full mesh survives 2 failures");
    for config in [TeConfig::uniform(&paths), TeConfig::shortest_path(&paths)] {
        let rerouted = reroute_around_failures(&paths, &config, &scenario);
        assert!(rerouted.is_valid(&paths));
        let mlu = max_link_utilization(&paths, &rerouted, trace.matrix(0));
        assert!(mlu.is_finite() && mlu > 0.0);
        // Rerouting around failures cannot decrease the load on the surviving
        // links for the same demand, so the MLU never improves.
        let before = max_link_utilization(&paths, &config, trace.matrix(0));
        assert!(mlu + 1e-9 >= before);
    }
}

#[test]
fn lp_and_iterative_engines_agree_on_the_web_pod_fabric() {
    let (_graph, paths, trace) = setup();
    let demand = trace.matrix(10);
    let lp = omniscient_config(&paths, demand, SolverEngine::Lp).unwrap();
    let iterative = omniscient_config(
        &paths,
        demand,
        SolverEngine::Iterative(figret_solvers::IterativeSettings {
            iterations: 800,
            ..Default::default()
        }),
    )
    .unwrap();
    let lp_mlu = max_link_utilization(&paths, &lp, demand);
    let it_mlu = max_link_utilization(&paths, &iterative, demand);
    assert!(
        it_mlu <= lp_mlu * 1.08 + 1e-9,
        "iterative engine ({it_mlu:.4}) should be within a few percent of the LP ({lp_mlu:.4})"
    );
}
