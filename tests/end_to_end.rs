//! End-to-end integration tests spanning every crate of the workspace:
//! topology generation → traffic synthesis → path selection → training →
//! evaluation against the LP-based baselines.

use figret::{FigretConfig, FigretModel};
use figret_eval::{omniscient_series, run_scheme, EvalOptions, Scenario, ScenarioOptions, Scheme};
use figret_solvers::{DesensitizationSettings, Predictor};
use figret_te::{max_link_utilization, robustness_penalty, TeConfig};
use figret_topology::Topology;
use figret_traffic::{per_pair_variance_range, WindowDataset};

fn small_scenario(topology: Topology) -> Scenario {
    Scenario::build(topology, &ScenarioOptions { num_snapshots: 100, ..Default::default() })
}

fn fast_eval() -> EvalOptions {
    EvalOptions { window: 4, max_eval_snapshots: Some(6), ..Default::default() }
}

#[test]
fn full_pipeline_on_the_pod_fabric() {
    let scenario = small_scenario(Topology::MetaDbPod);
    let eval = fast_eval();
    let baseline = omniscient_series(&scenario, &eval);
    assert!(!baseline.is_empty());
    assert!(baseline.iter().all(|m| m.is_finite() && *m > 0.0));

    let schemes = vec![
        Scheme::Figret(FigretConfig::fast_test()),
        Scheme::Dote(FigretConfig { robustness_weight: 0.0, ..FigretConfig::fast_test() }),
        Scheme::Desensitization(DesensitizationSettings::default()),
        Scheme::Prediction(Predictor::LastSnapshot),
    ];
    for scheme in schemes {
        let run = run_scheme(&scenario, &scheme, &eval);
        let quality = run.quality(&baseline);
        assert!(
            quality.normalized_mlu.min >= 1.0 - 1e-6,
            "{}: no scheme may beat the omniscient optimum (min {})",
            quality.scheme,
            quality.normalized_mlu.min
        );
        assert!(
            quality.normalized_mlu.mean < 25.0,
            "{}: unreasonably poor normalized MLU {}",
            quality.scheme,
            quality.normalized_mlu.mean
        );
    }
}

#[test]
fn figret_configs_are_valid_and_less_sensitive_than_dote_on_bursty_pairs() {
    let scenario = small_scenario(Topology::MetaDbPod);
    let window = 4;
    let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
    let dataset = WindowDataset::from_trace(&scenario.trace, window, scenario.split.train.clone());

    let mut figret = FigretModel::new(
        &scenario.paths,
        &variances,
        FigretConfig { robustness_weight: 3.0, ..FigretConfig::fast_test() },
    );
    figret.train(&dataset);
    let mut dote = FigretModel::new(
        &scenario.paths,
        &variances,
        FigretConfig { robustness_weight: 0.0, ..FigretConfig::fast_test() },
    );
    dote.train(&dataset);

    // Average the variance-weighted sensitivity penalty over test snapshots:
    // FIGRET explicitly optimizes it, DOTE ignores it.
    let mut figret_penalty = 0.0;
    let mut dote_penalty = 0.0;
    let mut count = 0;
    for t in scenario.test_indices(window).into_iter().take(6) {
        let history: Vec<_> = (t - window..t).map(|h| scenario.trace.matrix(h).clone()).collect();
        let f_cfg = figret.predict(&scenario.paths, &history);
        let d_cfg = dote.predict(&scenario.paths, &history);
        assert!(f_cfg.is_valid(&scenario.paths));
        assert!(d_cfg.is_valid(&scenario.paths));
        figret_penalty += robustness_penalty(&scenario.paths, &f_cfg, &variances);
        dote_penalty += robustness_penalty(&scenario.paths, &d_cfg, &variances);
        count += 1;
    }
    assert!(count > 0);
    assert!(
        figret_penalty <= dote_penalty * 1.05,
        "FIGRET's variance-weighted sensitivity ({figret_penalty:.4}) should not exceed DOTE's ({dote_penalty:.4})"
    );
}

#[test]
fn trained_model_is_no_worse_than_uniform_on_wan_traffic() {
    let scenario = small_scenario(Topology::Geant);
    let window = 4;
    let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
    let dataset = WindowDataset::from_trace(&scenario.trace, window, scenario.split.train.clone());
    let mut model = FigretModel::new(&scenario.paths, &variances, FigretConfig::fast_test());
    model.train(&dataset);

    let uniform = TeConfig::uniform(&scenario.paths);
    let mut model_total = 0.0;
    let mut uniform_total = 0.0;
    for t in scenario.test_indices(window).into_iter().take(8) {
        let history: Vec<_> = (t - window..t).map(|h| scenario.trace.matrix(h).clone()).collect();
        let cfg = model.predict(&scenario.paths, &history);
        model_total += max_link_utilization(&scenario.paths, &cfg, scenario.trace.matrix(t));
        uniform_total += max_link_utilization(&scenario.paths, &uniform, scenario.trace.matrix(t));
    }
    assert!(
        model_total <= uniform_total * 1.10,
        "trained FIGRET ({model_total:.3}) should not be much worse than uniform ({uniform_total:.3})"
    );
}
