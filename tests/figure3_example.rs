//! Integration test reproducing the Figure 3 illustrative example of the
//! paper exactly (the normal-case MLUs of the three TE schemes), across the
//! topology, path, config and MLU layers.

use figret_te::{max_link_utilization, PathSet, TeConfig};
use figret_topology::{Graph, NodeId};
use figret_traffic::DemandMatrix;

fn figure3_network() -> (Graph, PathSet) {
    let mut g = Graph::named("figure3", 3);
    g.add_bidirectional(NodeId(0), NodeId(1), 2.0).unwrap();
    g.add_bidirectional(NodeId(0), NodeId(2), 2.0).unwrap();
    g.add_bidirectional(NodeId(1), NodeId(2), 2.0).unwrap();
    let ps = PathSet::k_shortest(&g, 2);
    (g, ps)
}

fn demand(ab: f64, ac: f64, bc: f64) -> DemandMatrix {
    let mut d = DemandMatrix::zeros(3);
    d.set(0, 1, ab);
    d.set(0, 2, ac);
    d.set(1, 2, bc);
    d
}

#[test]
fn scheme1_and_scheme2_match_section_2_3() {
    let (_g, ps) = figure3_network();
    let shortest = TeConfig::shortest_path(&ps);
    let uniform = TeConfig::uniform(&ps);

    // Scheme 1: optimal in the normal case (0.5) but MLU 2 under any burst.
    assert!((max_link_utilization(&ps, &shortest, &demand(1.0, 1.0, 1.0)) - 0.5).abs() < 1e-9);
    assert!((max_link_utilization(&ps, &shortest, &demand(4.0, 1.0, 1.0)) - 2.0).abs() < 1e-9);

    // Scheme 2: 0.75 normal, 1.5 under every burst.
    assert!((max_link_utilization(&ps, &uniform, &demand(1.0, 1.0, 1.0)) - 0.75).abs() < 1e-9);
    for burst in [demand(4.0, 1.0, 1.0), demand(1.0, 4.0, 1.0), demand(1.0, 1.0, 4.0)] {
        assert!((max_link_utilization(&ps, &uniform, &burst) - 1.5).abs() < 1e-9);
    }
}

#[test]
fn scheme3_balances_normal_case_and_the_bursty_pair() {
    let (_g, ps) = figure3_network();
    let mut raw = vec![0.0; ps.num_paths()];
    for pair in 0..ps.num_pairs() {
        let (s, d) = ps.pairs()[pair];
        for pi in ps.paths_of_pair(pair) {
            let direct = ps.path(pi).len() == 1;
            raw[pi] = if s == NodeId(1) && d == NodeId(2) {
                if direct {
                    0.625
                } else {
                    0.375
                }
            } else if direct {
                1.0
            } else {
                0.0
            };
        }
    }
    let scheme3 = TeConfig::from_raw(&ps, &raw);
    let uniform = TeConfig::uniform(&ps);

    // Normal case: 0.6875 (paper §2.3), better than scheme 2's 0.75.
    let normal = demand(1.0, 1.0, 1.0);
    assert!((max_link_utilization(&ps, &scheme3, &normal) - 0.6875).abs() < 1e-9);
    assert!(
        max_link_utilization(&ps, &scheme3, &normal) < max_link_utilization(&ps, &uniform, &normal)
    );

    // Burst on the hedged pair (B -> C): 1.25, better than scheme 2's 1.5.
    let burst3 = demand(1.0, 1.0, 4.0);
    assert!((max_link_utilization(&ps, &scheme3, &burst3) - 1.25).abs() < 1e-9);
    assert!(
        max_link_utilization(&ps, &scheme3, &burst3) < max_link_utilization(&ps, &uniform, &burst3)
    );

    // Burst on an unhedged pair: worse than scheme 2 — the trade-off the paper
    // uses to motivate fine-grained robustness.
    let burst1 = demand(4.0, 1.0, 1.0);
    assert!(
        max_link_utilization(&ps, &scheme3, &burst1) > max_link_utilization(&ps, &uniform, &burst1)
    );
}
