//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of the `rand 0.8` API the reproduction actually uses:
//! [`RngCore`], [`SeedableRng`], [`Rng::gen`], [`Rng::gen_range`] over
//! half-open ranges, and [`seq::SliceRandom::shuffle`].  The generators are
//! self-consistent and deterministic per seed; they make no attempt to be
//! bit-compatible with upstream `rand` (nothing in the workspace depends on
//! the upstream stream).

#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 exactly
    /// once per seed word so nearby integer seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = sm.next().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used only to expand `u64` seeds into full seed arrays.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange: Sized + PartialOrd {
    /// Draws one value from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling on the top zone to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(isize => usize, i64 => u64, i32 => u32);

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "cannot sample from an empty range");
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f32>) -> f32 {
        assert!(range.start < range.end, "cannot sample from an empty range");
        let u = f64::sample(rng) as f32;
        range.start + u * (range.end - range.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's whole domain (for `f64`:
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling (the `rand::seq` module).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleRange::sample_range(rng, 0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = crate::SampleRange::sample_range(rng, 0..self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak LCG is plenty for testing the adapters.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn float_samples_are_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_are_respected() {
        let mut rng = Counter(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values of a small range appear");
        for _ in 0..100 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = Counter(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5..1.5f64);
            assert!((-2.5..1.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
