//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use — the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`Just`], [`collection::vec`], [`ProptestConfig::with_cases`]
//! and the [`proptest!`] / `prop_assert*` macros — on top of a seeded ChaCha
//! stream.  Unlike upstream proptest there is no shrinking: a failing case
//! panics with the normal assertion message, and the stream is deterministic
//! per test name, so failures reproduce exactly.

#![warn(missing_docs)]

use std::ops::Range;

use rand::{Rng, SampleRange, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The random source handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Creates the deterministic generator for a named test.
pub fn new_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(hash)
}

/// Test-runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of a type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then samples from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleRange + Clone> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies (the `proptest::collection` module).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// `(min, max_exclusive)` bounds of the generated length.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// A vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty length range");
        VecStrategy { element, min, max_exclusive }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min + 1 == self.max_exclusive {
                self.min
            } else {
                rng.gen_range(self.min..self.max_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)` item
/// becomes a normal `#[test]` running the body over sampled cases.
///
/// The `#[test]` attribute is matched as part of the item's attribute list and
/// re-emitted verbatim, so the generated zero-argument function is a normal
/// Rust test.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])+
                fn $name( $($pat in $strat),+ ) $body
            )+
        }
    };
}

/// The names a `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = new_rng("ranges");
        for _ in 0..200 {
            let n = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&n));
            let (a, b) = (0usize..5, -1.0f64..1.0).sample(&mut rng);
            assert!(a < 5 && (-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        let mut rng = new_rng("vecs");
        for _ in 0..100 {
            let v = collection::vec(0.0f64..1.0, 1..40).sample(&mut rng);
            assert!((1..40).contains(&v.len()));
            let fixed = collection::vec(0usize..3, 7usize).sample(&mut rng);
            assert_eq!(fixed.len(), 7);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = new_rng("compose");
        let strat = (2usize..5)
            .prop_flat_map(|n| collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = strat.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
        assert_eq!(Just(41).sample(&mut rng) + 1, 42);
    }

    #[test]
    fn same_test_name_reproduces_the_stream() {
        let a: Vec<usize> = {
            let mut rng = new_rng("repro");
            (0..10).map(|_| (0usize..1000).sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = new_rng("repro");
            (0..10).map(|_| (0usize..1000).sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, metadata and multiple arguments.
        #[test]
        fn macro_generates_working_tests(
            (n, scale) in (1usize..4, 1.0f64..2.0),
            v in collection::vec(0.0f64..1.0, 3),
        ) {
            prop_assert!((1..4).contains(&n));
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(scale, 0.0);
        }
    }
}
