//! Minimal offline stand-in for the `rayon` crate.
//!
//! Implements the slice/`Vec`/range parallel-iterator subset the workspace
//! uses on top of `std::thread::scope`.  Combinators evaluate eagerly and
//! preserve item order, and the terminal reductions (`sum`, `reduce`,
//! `collect`) fold the already-ordered results sequentially, so every
//! pipeline is deterministic regardless of how many worker threads run —
//! the property the training and evaluation layers rely on for per-seed
//! reproducibility.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like upstream rayon) or
//! `std::thread::available_parallelism`.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker threads currently alive across every parallel call.  There is no
/// shared pool, so nested parallelism (a `par_iter` inside a `par_iter`)
/// reserves against this budget and degrades to serial execution once
/// [`current_num_threads`] workers are live, instead of multiplying threads.
/// The accounting is approximate (load then add, no CAS loop) — a brief
/// overshoot under races is harmless, unbounded growth is what this prevents.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Releases a worker-budget reservation on drop, including during unwinding,
/// so a panicking task cannot leak budget and serialize later calls.
struct WorkerReservation(usize);

impl WorkerReservation {
    fn acquire(threads: usize) -> WorkerReservation {
        ACTIVE_WORKERS.fetch_add(threads, Ordering::Relaxed);
        WorkerReservation(threads)
    }
}

impl Drop for WorkerReservation {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
    }
}

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || ACTIVE_WORKERS.load(Ordering::Relaxed) >= current_num_threads()
    {
        return (a(), b());
    }
    let _reservation = WorkerReservation::acquire(1);
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Maps `f` over `items` using up to [`current_num_threads`] scoped threads,
/// preserving item order in the output.
fn parallel_map<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let budget = current_num_threads().saturating_sub(ACTIVE_WORKERS.load(Ordering::Relaxed));
    let threads = budget.min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<I> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let _reservation = WorkerReservation::acquire(threads);
    let outputs: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Preserve the worker's original panic payload (an expect()
                // message from a solver, say) instead of masking it.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    outputs.into_iter().flatten().collect()
}

/// An eager "parallel iterator": combinators run in parallel immediately and
/// buffer their ordered results.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync + Send>(self, f: F) -> ParIter<R> {
        ParIter { items: parallel_map(self.items, &f) }
    }

    /// Keeps only items for which `f` returns `Some`, preserving order.
    pub fn filter_map<R: Send, F: Fn(T) -> Option<R> + Sync + Send>(self, f: F) -> ParIter<R> {
        ParIter { items: parallel_map(self.items, &f).into_iter().flatten().collect() }
    }

    /// Keeps only items matching the predicate, preserving order.
    pub fn filter<F: Fn(&T) -> bool + Sync + Send>(self, f: F) -> ParIter<T> {
        ParIter {
            items: parallel_map(self.items, &|t| if f(&t) { Some(t) } else { None })
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Maps every item to an iterator and concatenates the results in order.
    pub fn flat_map<R, II, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        II: IntoIterator<Item = R> + Send,
        F: Fn(T) -> II + Sync + Send,
    {
        let nested: Vec<Vec<R>> = parallel_map(self.items, &|t| f(t).into_iter().collect());
        ParIter { items: nested.into_iter().flatten().collect() }
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    /// Runs `f` on every item in parallel (no result).
    pub fn for_each<F: Fn(T) + Sync + Send>(self, f: F) {
        let _ = parallel_map(self.items, &|t| f(t));
    }

    /// Collects the ordered items into any [`FromIterator`] collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items **in index order** (deterministic for floats).
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Folds the items **in index order** with `op`, starting from
    /// `identity()` (deterministic for floats).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Compatibility no-op (the eager model has no splitting granularity).
    pub fn with_min_len(self, _len: usize) -> ParIter<T> {
        self
    }
}

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Conversion of `&collection` into a borrowing parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced by the iterator (a reference).
    type Item: Send + 'a;

    /// Borrowing counterpart of [`IntoParallelIterator::into_par_iter`].
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Parallel operations on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of at most `size` elements.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter { items: self.chunks(size).collect() }
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_ranges_and_vecs() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[99], 99 * 99);
        let owned: Vec<String> =
            vec!["a".to_string(), "b".to_string()].into_par_iter().map(|s| s + "!").collect();
        assert_eq!(owned, vec!["a!", "b!"]);
    }

    #[test]
    fn sum_and_reduce_are_deterministic() {
        let v: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
        let serial: f64 = v.iter().sum();
        let parallel: f64 = v.par_iter().map(|x| *x).sum();
        assert_eq!(serial, parallel, "ordered reduction must match serial bit-for-bit");
        let reduced = v.par_iter().map(|x| *x).reduce(|| 0.0, |a, b| a + b);
        assert_eq!(serial, reduced);
    }

    #[test]
    fn chunks_filter_flat_map_enumerate() {
        let v: Vec<usize> = (0..10).collect();
        let chunk_sums: Vec<usize> = v.par_chunks(3).map(|c| c.iter().sum::<usize>()).collect();
        assert_eq!(chunk_sums, vec![3, 12, 21, 9]);
        let evens: Vec<usize> = v.clone().into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
        let doubled: Vec<usize> = v.clone().into_par_iter().flat_map(|x| vec![x, x]).collect();
        assert_eq!(doubled.len(), 20);
        let indexed: Vec<(usize, usize)> = v.into_par_iter().enumerate().collect();
        assert_eq!(indexed[7], (7, 7));
    }

    #[test]
    fn nested_parallelism_stays_bounded_and_correct() {
        // A par_iter inside a par_iter must not multiply threads without
        // bound, and must still produce ordered, correct results.
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&o| (0..100usize).into_par_iter().map(|i| o * 100 + i).sum::<usize>())
            .collect();
        for (o, s) in sums.iter().enumerate() {
            assert_eq!(*s, (0..100).map(|i| o * 100 + i).sum::<usize>());
        }
        // No budget assertion here: the test harness runs tests concurrently,
        // so other parallel tests may legitimately hold reservations.
    }

    #[test]
    fn worker_panic_payload_is_preserved() {
        let result = std::panic::catch_unwind(|| {
            let v: Vec<usize> = (0..64).collect();
            v.par_iter().for_each(|&i| {
                if i == 63 {
                    panic!("original payload {i}");
                }
            });
        });
        let payload = result.expect_err("the worker panic must propagate");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("original payload 63"), "got: {message}");
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
        assert!(current_num_threads() >= 1);
    }
}
