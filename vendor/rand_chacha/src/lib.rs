//! Minimal offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] (and [`ChaCha20Rng`]) on top of a faithful
//! implementation of the ChaCha block function.  Streams are deterministic per
//! seed and self-consistent across the workspace; bit-compatibility with
//! upstream `rand_chacha` is not a goal (nothing in the workspace depends on
//! the upstream stream).

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha random number generator with `R` double-rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaRng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

/// ChaCha with 8 rounds (4 double-rounds): the fast statistical generator.
pub type ChaCha8Rng = ChaChaRng<4>;

/// ChaCha with 12 rounds (6 double-rounds).
pub type ChaCha12Rng = ChaChaRng<6>;

/// ChaCha with 20 rounds (10 double-rounds): the conservative generator.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "nearby seeds must give unrelated streams");
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "sample mean {mean} far from 0.5");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            rng.next_u32();
        }
        let mut copy = rng.clone();
        for _ in 0..40 {
            assert_eq!(rng.next_u64(), copy.next_u64());
        }
    }
}
