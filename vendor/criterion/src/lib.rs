//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset used by `crates/bench`: benchmark groups,
//! `bench_function` / `bench_with_input`, `sample_size`, `BenchmarkId` and the
//! `criterion_group!` / `criterion_main!` macros.  Each benchmark runs a short
//! warm-up followed by `sample_size` timed samples and reports
//! min / mean / median per-iteration times on stdout.  When the
//! `CRITERION_JSON` environment variable names a file, one JSON line per
//! benchmark is appended to it (used to record `BENCH_baseline.json`).

#![warn(missing_docs)]

use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string(), sample_size: 20 }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, 20, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a function under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Benchmarks a function parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        run_benchmark(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter display value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { full: format!("{function_name}/{parameter}") }
    }

    /// An id made of a parameter only.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { full: parameter.to_string() }
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] times the payload.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running one warm-up iteration plus `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { sample_size, samples: Vec::new() };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name}: min {} / mean {} / median {} ({} samples)",
        format_duration(min),
        format_duration(mean),
        format_duration(median),
        sorted.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"benchmark\":\"{name}\",\"samples\":{},\"min_ns\":{},\"mean_ns\":{},\"median_ns\":{}}}\n",
                sorted.len(),
                min.as_nanos(),
                mean.as_nanos(),
                median.as_nanos()
            );
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = file.write_all(line.as_bytes());
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // one warm-up + 5 samples
        assert_eq!(runs, 6);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", "geant").full, "f/geant");
        assert_eq!(BenchmarkId::from_parameter(12).full, "12");
    }

    #[test]
    fn format_duration_scales() {
        assert!(format_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(format_duration(Duration::from_micros(10)).contains("µs"));
        assert!(format_duration(Duration::from_millis(10)).contains("ms"));
        assert!(format_duration(Duration::from_secs(10)).contains("s"));
    }
}
