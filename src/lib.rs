//! # figret-repro
//!
//! Umbrella crate of the FIGRET reproduction workspace.  It re-exports the
//! member crates so the examples and integration tests can use a single
//! dependency, and its documentation points at the per-crate entry points:
//!
//! * [`figret`] — the FIGRET model, DOTE and the TEAL-like baseline;
//! * [`figret_topology`] — graphs, Table 1 topologies, paths, failures;
//! * [`figret_traffic`] — demand matrices, synthetic traces, statistics;
//! * [`figret_te`] — split ratios, MLU, path sensitivity, rerouting;
//! * [`figret_lp`] — the dense two-phase simplex;
//! * [`figret_nn`] — tensors, autograd, MLP, Adam;
//! * [`figret_solvers`] — omniscient / prediction / desensitization /
//!   oblivious / COPE baselines;
//! * [`figret_serve`] — the online TE controller: streaming ingestion,
//!   predictors, update-budgeted reconfiguration (DESIGN.md §6);
//! * [`figret_eval`] — scenarios, runners and the experiment functions that
//!   regenerate every table and figure of the paper.
//!
//! See README.md for the quickstart and DESIGN.md / EXPERIMENTS.md for the
//! experiment index and recorded results.

#![warn(missing_docs)]

pub use figret;
pub use figret_eval;
pub use figret_lp;
pub use figret_nn;
pub use figret_serve;
pub use figret_solvers;
pub use figret_te;
pub use figret_topology;
pub use figret_traffic;
