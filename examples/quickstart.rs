//! Quickstart: build a small data-center fabric, generate bursty traffic,
//! train FIGRET and compare it against DOTE and the omniscient optimum.
//!
//! Run with: `cargo run --release --example quickstart`

use figret::{FigretConfig, FigretModel};
use figret_solvers::{omniscient_config, SolverEngine};
use figret_te::{max_link_utilization, PathSet, TeConfig};
use figret_topology::{Topology, TopologySpec};
use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
use figret_traffic::{per_pair_variance_range, TrainTestSplit, WindowDataset};

fn main() {
    // 1. Topology: the 4-PoD Meta DB fabric (full mesh, Table 1 of the paper).
    let graph = TopologySpec::full_scale(Topology::MetaDbPod).build();
    let paths = PathSet::k_shortest(&graph, 3);
    println!(
        "topology: {} nodes, {} directed edges, {} candidate paths",
        graph.num_nodes(),
        graph.num_edges(),
        paths.num_paths()
    );

    // 2. Traffic: a synthetic PoD-level trace with heterogeneous burstiness.
    let trace = pod_trace(&graph, &PodTrafficConfig { num_snapshots: 300, ..Default::default() });
    let split = TrainTestSplit::chronological(trace.len(), 0.75);
    let variances = per_pair_variance_range(&trace, split.train.clone());

    // 3. Train FIGRET and DOTE on the first 75% of the trace.
    let config = FigretConfig { history_window: 8, epochs: 8, ..FigretConfig::default() };
    let dataset = WindowDataset::from_trace(&trace, config.history_window, split.train.clone());
    let mut figret = FigretModel::new(&paths, &variances, config.clone());
    let report = figret.train(&dataset);
    println!(
        "FIGRET trained: {} parameters, {:.1}s, final loss {:.4}",
        figret.num_parameters(),
        report.wall_seconds,
        report.final_loss().unwrap()
    );
    let mut dote = FigretModel::new(
        &paths,
        &variances,
        FigretConfig { robustness_weight: 0.0, ..config.clone() },
    );
    dote.train(&dataset);

    // 4. Evaluate on the last 25%: average MLU normalized by the omniscient optimum.
    let window = config.history_window;
    let mut sums = [0.0f64; 4]; // figret, dote, uniform, omniscient
    let mut count = 0usize;
    for t in split.test.clone() {
        if t < window {
            continue;
        }
        let history: Vec<_> = (t - window..t).map(|h| trace.matrix(h).clone()).collect();
        let demand = trace.matrix(t);
        let omni =
            omniscient_config(&paths, demand, SolverEngine::Auto).expect("omniscient solves");
        sums[0] += max_link_utilization(&paths, &figret.predict(&paths, &history), demand);
        sums[1] += max_link_utilization(&paths, &dote.predict(&paths, &history), demand);
        sums[2] += max_link_utilization(&paths, &TeConfig::uniform(&paths), demand);
        sums[3] += max_link_utilization(&paths, &omni, demand);
        count += 1;
    }
    let avg = |s: f64| s / count as f64;
    println!("\naverage MLU over {count} test snapshots (lower is better):");
    println!("  omniscient : {:.4}", avg(sums[3]));
    println!("  FIGRET     : {:.4}  ({:.2}x optimal)", avg(sums[0]), avg(sums[0]) / avg(sums[3]));
    println!("  DOTE       : {:.4}  ({:.2}x optimal)", avg(sums[1]), avg(sums[1]) / avg(sums[3]));
    println!("  uniform    : {:.4}  ({:.2}x optimal)", avg(sums[2]), avg(sums[2]) / avg(sums[3]));
}
