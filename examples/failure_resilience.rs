//! Link-failure resilience (a miniature Figure 7): fail 1-3 random links on
//! GEANT, reroute every scheme's configuration around the failures, and
//! compare against a failure-aware oracle.
//!
//! Run with: `cargo run --release --example failure_resilience`

use figret::FigretConfig;
use figret_eval::{omniscient_series, run_scheme, EvalOptions, Scenario, ScenarioOptions, Scheme};
use figret_solvers::DesensitizationSettings;
use figret_topology::{random_link_failures, Topology};

fn main() {
    let scenario = Scenario::build(
        Topology::Geant,
        &ScenarioOptions { num_snapshots: 260, ..Default::default() },
    );
    let learning = FigretConfig { epochs: 8, ..FigretConfig::default() };
    println!("GEANT link-failure study (normalized vs. failure-aware oracle)");
    println!("{:<12} {:>10} {:>10} {:>10}", "scheme", "1 failure", "2 failures", "3 failures");

    let schemes = [
        ("FIGRET", Scheme::Figret(learning.clone())),
        ("DOTE", Scheme::Dote(FigretConfig { robustness_weight: 0.0, ..learning })),
        ("Des TE", Scheme::Desensitization(DesensitizationSettings::default())),
        ("FA Des TE", Scheme::FaultAwareDesensitization(DesensitizationSettings::default())),
    ];
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for failures in 1..=3usize {
        let failure = random_link_failures(&scenario.graph, failures, 2024)
            .expect("GEANT tolerates three failures");
        let eval = EvalOptions {
            window: 12,
            max_eval_snapshots: Some(15),
            failure: Some(failure),
            ..Default::default()
        };
        let baseline = omniscient_series(&scenario, &eval);
        for (i, (_, scheme)) in schemes.iter().enumerate() {
            let run = run_scheme(&scenario, scheme, &eval);
            let q = run.quality(&baseline);
            columns[i].push(q.normalized_mlu.mean);
        }
    }
    for (i, (name, _)) in schemes.iter().enumerate() {
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3}",
            name, columns[i][0], columns[i][1], columns[i][2]
        );
    }
}
