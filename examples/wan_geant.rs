//! Wide-area-network scenario: the GEANT topology with mostly-stable traffic
//! that occasionally bursts.  Compares FIGRET against DOTE, Google-style
//! desensitization TE and prediction-based TE (a miniature Figure 5(a)).
//!
//! Run with: `cargo run --release --example wan_geant`

use figret::FigretConfig;
use figret_eval::{omniscient_series, run_scheme, EvalOptions, Scenario, ScenarioOptions, Scheme};
use figret_solvers::{DesensitizationSettings, Predictor};
use figret_topology::Topology;

fn main() {
    let scenario = Scenario::build(
        Topology::Geant,
        &ScenarioOptions { num_snapshots: 300, ..Default::default() },
    );
    println!(
        "GEANT: {} nodes, {} edges, {} snapshots ({} train / {} test)",
        scenario.graph.num_nodes(),
        scenario.graph.num_edges(),
        scenario.trace.len(),
        scenario.split.train.len(),
        scenario.split.test.len()
    );

    let eval = EvalOptions { window: 12, max_eval_snapshots: Some(30), ..Default::default() };
    let baseline = omniscient_series(&scenario, &eval);
    let learning = FigretConfig { epochs: 8, ..FigretConfig::default() };
    let schemes = vec![
        Scheme::Figret(learning.clone()),
        Scheme::Dote(FigretConfig { robustness_weight: 0.0, ..learning.clone() }),
        Scheme::Desensitization(DesensitizationSettings::default()),
        Scheme::Prediction(Predictor::LastSnapshot),
    ];
    println!("\nMLU normalized by the omniscient optimum (lower is better):");
    println!("{:<12} {:>8} {:>8} {:>8} {:>8}", "scheme", "mean", "median", "p99", "max");
    for scheme in schemes {
        let run = run_scheme(&scenario, &scheme, &eval);
        let q = run.quality(&baseline);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            q.scheme,
            q.normalized_mlu.mean,
            q.normalized_mlu.median,
            q.normalized_mlu.p99,
            q.normalized_mlu.max
        );
    }
}
