//! ToR-level data-center scenario with highly bursty traffic: the regime where
//! FIGRET's fine-grained robustness matters most.  Reports the reduction in
//! significant congestion events (normalized MLU > 2) relative to DOTE, the
//! headline result of §5.2.
//!
//! Run with: `cargo run --release --example datacenter_burst`

use figret::FigretConfig;
use figret_eval::{omniscient_series, run_scheme, EvalOptions, Scenario, ScenarioOptions, Scheme};
use figret_te::{congestion_event_rate, normalize_by, CONGESTION_THRESHOLD};
use figret_topology::Topology;

fn main() {
    let scenario = Scenario::build(
        Topology::MetaDbTor,
        &ScenarioOptions { num_snapshots: 400, ..Default::default() },
    );
    println!(
        "ToR-level DB fabric: {} ToRs, {} edges, {} candidate paths",
        scenario.graph.num_nodes(),
        scenario.graph.num_edges(),
        scenario.paths.num_paths()
    );

    let eval = EvalOptions { window: 12, max_eval_snapshots: Some(40), ..Default::default() };
    let baseline = omniscient_series(&scenario, &eval);
    let learning = FigretConfig { epochs: 10, ..FigretConfig::default() };

    let figret = run_scheme(&scenario, &Scheme::Figret(learning.clone()), &eval);
    let dote = run_scheme(
        &scenario,
        &Scheme::Dote(FigretConfig { robustness_weight: 0.0, ..learning }),
        &eval,
    );

    let figret_norm = normalize_by(&figret.mlus, &baseline);
    let dote_norm = normalize_by(&dote.mlus, &baseline);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let figret_cong = congestion_event_rate(&figret_norm, CONGESTION_THRESHOLD);
    let dote_cong = congestion_event_rate(&dote_norm, CONGESTION_THRESHOLD);

    println!("\nnormalized MLU (vs. omniscient):");
    println!(
        "  FIGRET: mean {:.3}, congestion events {:.1}%",
        mean(&figret_norm),
        figret_cong * 100.0
    );
    println!("  DOTE  : mean {:.3}, congestion events {:.1}%", mean(&dote_norm), dote_cong * 100.0);
    if dote_cong > 0.0 {
        println!(
            "  -> FIGRET reduces significant congestion events by {:.0}%",
            100.0 * (dote_cong - figret_cong).max(0.0) / dote_cong
        );
    }
    println!(
        "  -> FIGRET changes average MLU by {:+.1}% relative to DOTE",
        100.0 * (mean(&figret_norm) - mean(&dote_norm)) / mean(&dote_norm)
    );
}
