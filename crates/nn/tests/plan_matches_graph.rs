//! Property test: the compiled f32 [`InferencePlan`] tracks the f64 graph
//! forward within 1e-4 relative error across random architectures, weights
//! (via the init seed and a few optimizer-style perturbation steps), segment
//! layouts and inputs.

use std::ops::Range;
use std::sync::Arc;

use figret_nn::{Graph, InferencePlan, Mlp, MlpConfig, OutputActivation, Tensor};
use proptest::prelude::*;

/// Splits `0..n` into contiguous non-empty segments using `cuts` as offsets.
fn segments_for(n: usize, cuts: &[usize]) -> Vec<Range<usize>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    bounds.dedup();
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

fn activation_for(tag: usize) -> OutputActivation {
    match tag % 3 {
        0 => OutputActivation::Sigmoid,
        1 => OutputActivation::Relu,
        _ => OutputActivation::Linear,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn plan_forward_matches_graph_forward(
        input_dim in 1usize..12,
        hidden in proptest::collection::vec(1usize..24, 0..3),
        output_dim in 1usize..16,
        seed in 0u64..1000,
        activation_tag in 0usize..3,
        cuts in proptest::collection::vec(0usize..64, 0..4),
        x_raw in proptest::collection::vec(-3.0f64..3.0, 12),
        scale in 0.5f64..8.0,
        nudge in -0.2f64..0.2,
    ) {
        let mut g = Graph::new();
        let mlp = Mlp::new(&mut g, MlpConfig {
            input_dim,
            hidden,
            output_dim,
            output_activation: activation_for(activation_tag),
            seed,
        });
        g.seal();
        // "Trained" weights: perturb every parameter away from its xavier
        // init so the test is not tied to the initializer's distribution.
        for p in mlp.parameters() {
            let delta = Tensor::full(g.value(p).rows(), g.value(p).cols(), nudge);
            g.add_grad(p, &delta);
            let update = g.grad(p).clone();
            g.value_mut(p).add_assign(&update);
            g.reset(); // clears gradients, keeps parameters
        }
        let segments = segments_for(output_dim, &cuts);
        let mut plan = InferencePlan::compile(&g, &mlp, segments.clone(), scale);

        let x = &x_raw[..input_dim];
        let mut plan_out = vec![0.0; output_dim];
        plan.forward(x, &mut plan_out);

        // Reference: scale the features exactly like the plan's input load,
        // then run the f64 tape.
        let scaled: Vec<f64> = x.iter().map(|v| v / scale).collect();
        g.reset();
        let input = g.input(Tensor::row(&scaled));
        let raw = mlp.forward(&mut g, input);
        let normed = g.segment_normalize(raw, Arc::new(segments));
        let reference = g.value(normed).data();

        for (i, (p, r)) in plan_out.iter().zip(reference).enumerate() {
            prop_assert!(
                (p - r).abs() <= 1e-4 * (1.0 + r.abs()),
                "output {i}: plan {p} vs graph {r}"
            );
        }
    }
}
