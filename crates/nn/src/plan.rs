//! A compiled, allocation-free f32 inference plan.
//!
//! Training and reference inference walk the autograd tape ([`crate::graph`]):
//! every op clones tensors, pushes nodes and touches `Arc`-shared constants.
//! That is the right shape for backpropagation and exactly the wrong shape
//! for a serving hot path that wants one forward pass per control-loop tick.
//!
//! [`InferencePlan`] is the serving artifact compiled *once* from a trained
//! MLP: weights quantized to `f32`, ping-pong activation buffers pre-sized to
//! the widest layer, and the forward pass expressed as a flat sequence of
//! chunked kernels over `[f32]` slices (affine, ReLU/sigmoid, per-segment
//! normalization).  [`InferencePlan::forward`] performs **no allocation** and
//! touches **no reference counts**; the fixed-width chunking
//! ([`LANES`]-wide, via `chunks_exact`) keeps the inner loops trivially
//! autovectorizable.
//!
//! The f64 tape remains the reference implementation: a property test pins
//! the plan to the graph forward within 1e-4 relative error
//! (`tests/plan_matches_graph.rs`).

use std::ops::Range;

use crate::graph::Graph;
use crate::layers::{Mlp, OutputActivation};

/// Fixed chunk width of the inner kernels.  Eight `f32` lanes fill one
/// 256-bit vector register; the compiler unrolls the `chunks_exact` bodies
/// into packed operations without any explicit SIMD types.
const LANES: usize = 8;

/// One dense layer of the compiled plan: `y = act(Wᵀx + b)` in `f32`, with
/// the weight stored in the layout its kernel wants.  Wide layers (`out_dim ≥
/// in_dim`) keep the tape's row-major `in_dim × out_dim` layout and run the
/// rank-1 axpy kernel (contiguous output rows, zero inputs skipped); narrow
/// layers (`out_dim < in_dim`, e.g. the first layer collapsing a whole
/// feature window onto a few hidden units) store the transpose (`out_dim ×
/// in_dim`) and run one long contiguous dot product per output — the axpy
/// orientation would pay its per-input loop overhead on a tiny row.
#[derive(Debug, Clone)]
struct PlanLayer {
    out_dim: usize,
    /// `true`: `weight` is transposed (`out_dim × in_dim`) for the dot
    /// kernel; `false`: row-major (`in_dim × out_dim`) for the axpy kernel.
    transposed: bool,
    weight: Vec<f32>,
    bias: Vec<f32>,
}

/// A trained MLP compiled into a flat, allocation-free f32 forward pass; see
/// the module docs.
#[derive(Debug, Clone)]
pub struct InferencePlan {
    input_dim: usize,
    output_dim: usize,
    layers: Vec<PlanLayer>,
    output_activation: OutputActivation,
    segments: Vec<Range<usize>>,
    /// Reciprocal of the feature scale, folded into the input load.
    inv_input_scale: f32,
    /// Ping-pong activation buffers, sized to the widest layer.
    buf_a: Vec<f32>,
    buf_b: Vec<f32>,
}

impl InferencePlan {
    /// Compiles a plan from an MLP whose parameters live on `graph`.
    ///
    /// `segments` are the per-pair output ranges normalized after the final
    /// activation (pass an empty vec to skip normalization); raw `f64` inputs
    /// are multiplied by `1 / input_scale` while being quantized, mirroring
    /// the feature scaling of the reference path.
    pub fn compile(
        graph: &Graph,
        mlp: &Mlp,
        segments: Vec<Range<usize>>,
        input_scale: f64,
    ) -> InferencePlan {
        assert!(input_scale > 0.0, "the input scale must be positive");
        let params = mlp.parameters();
        debug_assert_eq!(params.len() % 2, 0, "parameters come in (weight, bias) pairs");
        let mut layers = Vec::with_capacity(params.len() / 2);
        let mut max_width = mlp.config().input_dim;
        let mut in_dim = mlp.config().input_dim;
        for pair in params.chunks_exact(2) {
            let weight = graph.value(pair[0]);
            let bias = graph.value(pair[1]);
            assert_eq!(bias.rows(), 1, "biases are row vectors");
            assert_eq!(weight.cols(), bias.cols(), "weight/bias widths must agree");
            assert_eq!(weight.rows(), in_dim, "layer widths must chain");
            let out_dim = weight.cols();
            max_width = max_width.max(out_dim);
            let transposed = out_dim < in_dim;
            let data = weight.data();
            let quantized: Vec<f32> = if transposed {
                let mut t = vec![0.0f32; data.len()];
                for k in 0..in_dim {
                    for j in 0..out_dim {
                        t[j * in_dim + k] = data[k * out_dim + j] as f32;
                    }
                }
                t
            } else {
                data.iter().map(|&v| v as f32).collect()
            };
            layers.push(PlanLayer {
                out_dim,
                transposed,
                weight: quantized,
                bias: bias.data().iter().map(|&v| v as f32).collect(),
            });
            in_dim = out_dim;
        }
        let output_dim = layers.last().expect("an MLP has at least one layer").out_dim;
        for seg in &segments {
            assert!(seg.end <= output_dim, "segments must index the output row");
        }
        InferencePlan {
            input_dim: mlp.config().input_dim,
            output_dim,
            layers,
            output_activation: mlp.config().output_activation,
            segments,
            inv_input_scale: (1.0 / input_scale) as f32,
            buf_a: vec![0.0; max_width],
            buf_b: vec![0.0; max_width],
        }
    }

    /// Input width the plan expects.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width the plan produces.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Number of quantized scalars held by the plan.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.weight.len() + l.bias.len()).sum()
    }

    /// Runs the compiled forward pass: scales and quantizes `features`, walks
    /// the flat kernel sequence and writes the (segment-normalized) outputs
    /// into `out`.  No allocation; `&mut self` only touches the pre-sized
    /// scratch buffers.
    pub fn forward(&mut self, features: &[f64], out: &mut [f64]) {
        assert_eq!(features.len(), self.input_dim, "input width must match the plan");
        assert_eq!(out.len(), self.output_dim, "output width must match the plan");
        let scale = self.inv_input_scale;
        for (dst, &src) in self.buf_a[..self.input_dim].iter_mut().zip(features) {
            *dst = src as f32 * scale;
        }
        let mut in_dim = self.input_dim;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let x = &self.buf_a[..in_dim];
            let y = &mut self.buf_b[..layer.out_dim];
            if layer.transposed {
                affine_dot(x, &layer.weight, &layer.bias, y);
            } else {
                affine(x, &layer.weight, &layer.bias, y);
            }
            if i < last {
                relu(y);
            } else {
                match self.output_activation {
                    OutputActivation::Sigmoid => sigmoid(y),
                    OutputActivation::Relu => relu(y),
                    OutputActivation::Linear => {}
                }
            }
            std::mem::swap(&mut self.buf_a, &mut self.buf_b);
            in_dim = layer.out_dim;
        }
        let result = &mut self.buf_a[..self.output_dim];
        segment_normalize(result, &self.segments);
        for (dst, &src) in out.iter_mut().zip(result.iter()) {
            *dst = src as f64;
        }
    }
}

/// `y = Wᵀx + b` for a row-major `in_dim × out_dim` weight: one rank-1
/// update (`y += x_k · W[k, :]`) per input element, each a contiguous
/// chunked axpy over the output row.  Skips zero inputs — ReLU activations
/// make those common.
fn affine(x: &[f32], weight: &[f32], bias: &[f32], y: &mut [f32]) {
    let out_dim = y.len();
    debug_assert_eq!(weight.len(), x.len() * out_dim);
    y.copy_from_slice(bias);
    for (k, &xk) in x.iter().enumerate() {
        if xk == 0.0 {
            continue;
        }
        let row = &weight[k * out_dim..(k + 1) * out_dim];
        let (y_chunks, y_tail) = y.split_at_mut(out_dim - out_dim % LANES);
        let (r_chunks, r_tail) = row.split_at(y_chunks.len());
        for (yc, rc) in y_chunks.chunks_exact_mut(LANES).zip(r_chunks.chunks_exact(LANES)) {
            for (yv, rv) in yc.iter_mut().zip(rc) {
                *yv += xk * rv;
            }
        }
        for (yv, rv) in y_tail.iter_mut().zip(r_tail) {
            *yv += xk * rv;
        }
    }
}

/// `y = Wᵀx + b` for a *transposed* (`out_dim × in_dim`) weight: one long
/// contiguous dot product per output element, accumulated across [`LANES`]
/// independent partial sums so the reduction vectorizes.  The layout of
/// choice when the layer is much narrower than its input.
fn affine_dot(x: &[f32], weight: &[f32], bias: &[f32], y: &mut [f32]) {
    let in_dim = x.len();
    debug_assert_eq!(weight.len(), in_dim * y.len());
    let (x_chunks, x_tail) = x.split_at(in_dim - in_dim % LANES);
    for (j, (yv, &b)) in y.iter_mut().zip(bias).enumerate() {
        let row = &weight[j * in_dim..(j + 1) * in_dim];
        let (r_chunks, r_tail) = row.split_at(x_chunks.len());
        let mut acc = [0.0f32; LANES];
        for (xc, rc) in x_chunks.chunks_exact(LANES).zip(r_chunks.chunks_exact(LANES)) {
            for ((a, &xv), &rv) in acc.iter_mut().zip(xc).zip(rc) {
                *a += xv * rv;
            }
        }
        let mut sum: f32 = acc.iter().sum();
        for (&xv, &rv) in x_tail.iter().zip(r_tail) {
            sum += xv * rv;
        }
        *yv = b + sum;
    }
}

/// In-place ReLU.
fn relu(y: &mut [f32]) {
    for v in y {
        *v = v.max(0.0);
    }
}

/// In-place logistic sigmoid.
fn sigmoid(y: &mut [f32]) {
    for v in y {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

/// In-place per-segment normalization with the reference semantics of
/// [`Graph::segment_normalize`]: each segment is scaled to sum to one, and an
/// all-zero segment becomes the uniform distribution over its entries.
fn segment_normalize(y: &mut [f32], segments: &[Range<usize>]) {
    for seg in segments {
        let slice = &mut y[seg.clone()];
        let sum: f32 = slice.iter().sum();
        if sum > 0.0 {
            let inv = 1.0 / sum;
            for v in slice {
                *v *= inv;
            }
        } else {
            let uniform = 1.0 / slice.len().max(1) as f32;
            for v in slice {
                *v = uniform;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::MlpConfig;
    use crate::tensor::Tensor;

    fn build(
        input_dim: usize,
        hidden: Vec<usize>,
        output_dim: usize,
        activation: OutputActivation,
    ) -> (Graph, Mlp) {
        let mut g = Graph::new();
        let mlp = Mlp::new(
            &mut g,
            MlpConfig { input_dim, hidden, output_dim, output_activation: activation, seed: 11 },
        );
        g.seal();
        (g, mlp)
    }

    fn graph_forward(g: &mut Graph, mlp: &Mlp, x: &[f64], segments: &[Range<usize>]) -> Vec<f64> {
        g.reset();
        let input = g.input(Tensor::row(x));
        let raw = mlp.forward(g, input);
        let out = if segments.is_empty() {
            raw
        } else {
            g.segment_normalize(raw, std::sync::Arc::new(segments.to_vec()))
        };
        g.value(out).data().to_vec()
    }

    #[test]
    fn plan_matches_graph_on_a_small_mlp() {
        let (mut g, mlp) = build(5, vec![9, 7], 6, OutputActivation::Sigmoid);
        let segments = vec![0..3, 3..6];
        let mut plan = InferencePlan::compile(&g, &mlp, segments.clone(), 2.0);
        assert_eq!(plan.input_dim(), 5);
        assert_eq!(plan.output_dim(), 6);
        assert_eq!(plan.num_parameters(), 5 * 9 + 9 + 9 * 7 + 7 + 7 * 6 + 6);

        let x = [1.0, -2.0, 0.5, 3.0, -0.25];
        let scaled: Vec<f64> = x.iter().map(|v| v / 2.0).collect();
        let reference = graph_forward(&mut g, &mlp, &scaled, &segments);
        let mut out = vec![0.0; 6];
        plan.forward(&x, &mut out);
        for (p, r) in out.iter().zip(&reference) {
            assert!((p - r).abs() <= 1e-4 * (1.0 + r.abs()), "plan {p} vs graph {r}");
        }
        // Normalized segments sum to one (up to f32 rounding).
        for seg in &segments {
            let sum: f64 = out[seg.clone()].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "segment sum {sum}");
        }
    }

    #[test]
    fn forward_is_repeatable_and_scratch_is_reset() {
        let (g, mlp) = build(4, vec![8], 4, OutputActivation::Relu);
        let mut plan = InferencePlan::compile(&g, &mlp, vec![0..2, 2..4], 1.0);
        let x = [0.4, 0.0, -1.5, 2.0];
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        plan.forward(&x, &mut a);
        plan.forward(&[9.0, 9.0, 9.0, 9.0], &mut b); // dirty the buffers
        plan.forward(&x, &mut b);
        assert_eq!(a, b, "repeated forwards must not depend on buffer history");
    }

    #[test]
    fn all_zero_segment_falls_back_to_uniform() {
        let mut y = [0.0f32, 0.0, 3.0, 1.0];
        segment_normalize(&mut y, &[0..2, 2..4]);
        assert_eq!(&y[..2], &[0.5, 0.5]);
        assert!((y[2] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn dot_orientation_matches_axpy_orientation() {
        // in_dim = 19 exercises the dot kernel's lane accumulators and tail.
        let in_dim = 19;
        let out_dim = 3;
        let x: Vec<f32> = (0..in_dim).map(|i| (i as f32 - 7.0) * 0.3).collect();
        let weight: Vec<f32> = (0..in_dim * out_dim).map(|i| (i as f32).sin()).collect();
        let mut transposed = vec![0.0f32; in_dim * out_dim];
        for k in 0..in_dim {
            for j in 0..out_dim {
                transposed[j * in_dim + k] = weight[k * out_dim + j];
            }
        }
        let bias = vec![0.25f32; out_dim];
        let mut via_axpy = vec![0.0f32; out_dim];
        let mut via_dot = vec![0.0f32; out_dim];
        affine(&x, &weight, &bias, &mut via_axpy);
        affine_dot(&x, &transposed, &bias, &mut via_dot);
        for (a, d) in via_axpy.iter().zip(&via_dot) {
            assert!((a - d).abs() < 1e-5, "axpy {a} vs dot {d}");
        }
    }

    #[test]
    fn affine_handles_tails_past_the_chunk_width() {
        // out_dim = 11 exercises both the 8-lane chunks and the 3-wide tail.
        let x = [2.0f32, -1.0];
        let weight: Vec<f32> = (0..22).map(|i| i as f32 * 0.1).collect();
        let bias = vec![1.0f32; 11];
        let mut y = vec![0.0f32; 11];
        affine(&x, &weight, &bias, &mut y);
        for j in 0..11 {
            let expect = 1.0 + 2.0 * weight[j] - weight[11 + j];
            assert!((y[j] - expect).abs() < 1e-6, "col {j}: {} vs {expect}", y[j]);
        }
    }
}
