//! Fully connected layers and the multi-layer perceptron used by FIGRET/DOTE.
//!
//! The paper's architecture (Appendix D.4) is five fully connected hidden
//! layers of 128 neurons with ReLU activations; the output layer uses a
//! sigmoid and is then normalized per SD pair.  [`Mlp`] builds exactly that
//! (with configurable sizes) on top of the autograd [`Graph`].

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Output activation of the final layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputActivation {
    /// Logistic sigmoid (the paper's choice; outputs are normalized afterwards).
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// No activation.
    Linear,
}

/// Hyper-parameters of an MLP.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input dimension.
    pub input_dim: usize,
    /// Sizes of the hidden layers (the paper uses `[128; 5]`).
    pub hidden: Vec<usize>,
    /// Output dimension.
    pub output_dim: usize,
    /// Activation of the output layer.
    pub output_activation: OutputActivation,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl MlpConfig {
    /// The paper's default architecture for a given input/output size.
    pub fn paper_default(input_dim: usize, output_dim: usize) -> MlpConfig {
        MlpConfig {
            input_dim,
            hidden: vec![128; 5],
            output_dim,
            output_activation: OutputActivation::Sigmoid,
            seed: 17,
        }
    }
}

/// One dense layer's parameter handles on the tape.
#[derive(Debug, Clone, Copy)]
struct DenseVars {
    weight: Var,
    bias: Var,
}

/// A multi-layer perceptron whose parameters live on a [`Graph`] as persistent
/// nodes.
#[derive(Debug)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<DenseVars>,
}

impl Mlp {
    /// Creates the MLP, registering its parameters on the graph.  Call
    /// [`Graph::seal`] afterwards (before the first forward pass).
    pub fn new(graph: &mut Graph, config: MlpConfig) -> Mlp {
        assert!(config.input_dim > 0 && config.output_dim > 0, "dimensions must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x3141_5926);
        let mut layers = Vec::new();
        let mut in_dim = config.input_dim;
        for &h in config.hidden.iter().chain(std::iter::once(&config.output_dim)) {
            let weight = graph.parameter(Tensor::xavier_uniform(in_dim, h, &mut rng));
            let bias = graph.parameter(Tensor::zeros(1, h));
            layers.push(DenseVars { weight, bias });
            in_dim = h;
        }
        Mlp { config, layers }
    }

    /// The configuration the MLP was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Handles of every parameter tensor (weights and biases, layer order).
    pub fn parameters(&self) -> Vec<Var> {
        self.layers.iter().flat_map(|l| [l.weight, l.bias]).collect()
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&self, graph: &Graph) -> usize {
        self.parameters().iter().map(|v| graph.value(*v).len()).sum()
    }

    /// Runs the forward pass for a `1×input_dim` input node and returns the
    /// `1×output_dim` output node.
    pub fn forward(&self, graph: &mut Graph, input: Var) -> Var {
        assert_eq!(
            graph.value(input).cols(),
            self.config.input_dim,
            "input width must match the configured input dimension"
        );
        let mut x = input;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let wx = graph.matmul(x, layer.weight);
            let z = graph.add_bias(wx, layer.bias);
            x = if i < last {
                graph.relu(z)
            } else {
                match self.config.output_activation {
                    OutputActivation::Sigmoid => graph.sigmoid(z),
                    OutputActivation::Relu => graph.relu(z),
                    OutputActivation::Linear => z,
                }
            };
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_architecture() {
        let mut g = Graph::new();
        let mlp = Mlp::new(&mut g, MlpConfig::paper_default(40, 12));
        g.seal();
        assert_eq!(mlp.parameters().len(), 12, "6 layers x (weight + bias)");
        // 40*128 + 128 + 4*(128*128 + 128) + 128*12 + 12
        let expected = 40 * 128 + 128 + 4 * (128 * 128 + 128) + 128 * 12 + 12;
        assert_eq!(mlp.num_parameters(&g), expected);
        let x = g.input(Tensor::zeros(1, 40));
        let y = mlp.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (1, 12));
        // Sigmoid of zero input with zero bias is 0.5 everywhere only if the
        // pre-activation is 0; with zero input it is exactly 0 + bias = 0.
        assert!(g.value(y).data().iter().all(|v| (*v - 0.5).abs() < 1e-12));
    }

    #[test]
    fn forward_is_deterministic_given_seed() {
        let build = || {
            let mut g = Graph::new();
            let mlp = Mlp::new(
                &mut g,
                MlpConfig {
                    input_dim: 7,
                    hidden: vec![16, 16],
                    output_dim: 3,
                    output_activation: OutputActivation::Linear,
                    seed: 5,
                },
            );
            g.seal();
            let x = g.input(Tensor::row(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]));
            let y = mlp.forward(&mut g, x);
            g.value(y).data().to_vec()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let mut g = Graph::new();
        let mlp = Mlp::new(
            &mut g,
            MlpConfig {
                input_dim: 4,
                hidden: vec![8],
                output_dim: 2,
                output_activation: OutputActivation::Sigmoid,
                seed: 3,
            },
        );
        g.seal();
        let x = g.input(Tensor::row(&[1.0, -1.0, 0.5, 2.0]));
        let y = mlp.forward(&mut g, x);
        let loss = g.sum(y);
        g.backward(loss);
        for p in mlp.parameters() {
            let norm = g.grad(p).norm();
            assert!(norm.is_finite());
        }
        // At least the output layer must receive a non-zero gradient.
        let out_weight = mlp.parameters()[2];
        assert!(g.grad(out_weight).norm() > 0.0);
    }

    #[test]
    fn reset_between_samples_keeps_parameters() {
        let mut g = Graph::new();
        let mlp = Mlp::new(
            &mut g,
            MlpConfig {
                input_dim: 3,
                hidden: vec![4],
                output_dim: 2,
                output_activation: OutputActivation::Relu,
                seed: 9,
            },
        );
        g.seal();
        let before = g.len();
        for _ in 0..5 {
            g.reset();
            let x = g.input(Tensor::row(&[1.0, 2.0, 3.0]));
            let y = mlp.forward(&mut g, x);
            let loss = g.sum(y);
            g.backward(loss);
        }
        g.reset();
        assert_eq!(g.len(), before);
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn forward_checks_input_width() {
        let mut g = Graph::new();
        let mlp = Mlp::new(
            &mut g,
            MlpConfig {
                input_dim: 3,
                hidden: vec![],
                output_dim: 2,
                output_activation: OutputActivation::Linear,
                seed: 1,
            },
        );
        g.seal();
        let x = g.input(Tensor::row(&[1.0, 2.0]));
        let _ = mlp.forward(&mut g, x);
    }
}
