//! Gradient-descent optimizers.
//!
//! FIGRET trains with Adam (Appendix D.4); plain SGD is provided as well for
//! ablations and tests.  Optimizers update parameter nodes of a [`Graph`] in
//! place from the gradients accumulated by [`Graph::backward`].

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Interface shared by all optimizers.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored on the
    /// graph for the registered parameters.
    fn step(&mut self, graph: &mut Graph);

    /// The parameters this optimizer updates.
    fn parameters(&self) -> &[Var];
}

/// Plain stochastic gradient descent.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Var>,
    learning_rate: f64,
}

impl Sgd {
    /// Creates an SGD optimizer over the given parameters.
    pub fn new(params: Vec<Var>, learning_rate: f64) -> Sgd {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Sgd { params, learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, graph: &mut Graph) {
        for &p in &self.params {
            let grad = graph.grad(p).clone();
            graph.value_mut(p).axpy(-self.learning_rate, &grad);
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }
}

/// Adam optimizer configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate (paper default 1e-3).
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub epsilon: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { learning_rate: 1e-3, beta1: 0.9, beta2: 0.999, epsilon: 1e-8 }
    }
}

/// The Adam optimizer [Kingma & Ba, 2014].
#[derive(Debug)]
pub struct Adam {
    params: Vec<Var>,
    config: AdamConfig,
    step_count: usize,
    first_moment: Vec<Tensor>,
    second_moment: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer over the given parameters.
    pub fn new(graph: &Graph, params: Vec<Var>, config: AdamConfig) -> Adam {
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        let first_moment = params
            .iter()
            .map(|&p| Tensor::zeros(graph.value(p).rows(), graph.value(p).cols()))
            .collect();
        let second_moment = params
            .iter()
            .map(|&p| Tensor::zeros(graph.value(p).rows(), graph.value(p).cols()))
            .collect();
        Adam { params, config, step_count: 0, first_moment, second_moment }
    }

    /// Number of update steps performed so far.
    pub fn steps(&self) -> usize {
        self.step_count
    }
}

impl Optimizer for Adam {
    fn step(&mut self, graph: &mut Graph) {
        self.step_count += 1;
        let t = self.step_count as f64;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);
        for (i, &p) in self.params.iter().enumerate() {
            let grad = graph.grad(p).clone();
            let m = &mut self.first_moment[i];
            let v = &mut self.second_moment[i];
            for ((g, m), v) in grad.data().iter().zip(m.data_mut()).zip(v.data_mut()) {
                *m = c.beta1 * *m + (1.0 - c.beta1) * g;
                *v = c.beta2 * *v + (1.0 - c.beta2) * g * g;
            }
            let value = graph.value_mut(p);
            for ((x, m), v) in value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let m_hat = m / bias1;
                let v_hat = v / bias2;
                *x -= c.learning_rate * m_hat / (v_hat.sqrt() + c.epsilon);
            }
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use std::sync::Arc;

    /// Minimizes `(x - 3)^2 + (y + 1)^2` expressed with autograd ops.
    fn quadratic_loss(graph: &mut Graph, param: Var) -> Var {
        // loss = sum((p - target)^2) via dot products: (p - t) . (p - t)
        let target = graph.input(Tensor::row(&[3.0, -1.0]));
        let neg_target = graph.scale(target, -1.0);
        let diff = graph.add(param, neg_target);
        // square = diff * diff via mul_const is not possible (diff is not a
        // constant), so use dot with itself through an elementwise trick:
        // sum(diff^2) = dot(diff, diff) is not an available op; instead use
        // relu(diff)^... Simplest: use dot_const against diff's current value
        // would break gradients.  Use: loss = sum(diff ⊙ diff) via Mul of two
        // vars -> not implemented; so compute as matmul(diff, diff^T) which is
        // a 1x1 tensor.  We emulate the transpose with a second input.
        let diff_t_value = graph.value(diff).transpose();
        let diff_t = graph.input(diff_t_value);
        // d(loss)/d(diff) via matmul gives diff_t^T = diff (half of the true
        // gradient of diff^2, which only rescales the problem), good enough to
        // verify convergence behaviour of the optimizers.
        let _ = &diff_t;
        graph.matmul(diff, diff_t)
    }

    #[test]
    fn sgd_reduces_a_quadratic() {
        let mut g = Graph::new();
        let p = g.parameter(Tensor::row(&[0.0, 0.0]));
        g.seal();
        let mut opt = Sgd::new(vec![p], 0.1);
        let mut last = f64::INFINITY;
        for _ in 0..200 {
            g.reset();
            let loss = quadratic_loss(&mut g, p);
            g.backward(loss);
            opt.step(&mut g);
            last = g.value(loss).as_scalar();
        }
        assert!(last < 1e-3, "SGD failed to converge, loss = {last}");
        assert!((g.value(p).data()[0] - 3.0).abs() < 0.05);
        assert!((g.value(p).data()[1] + 1.0).abs() < 0.05);
        assert_eq!(opt.parameters(), &[p]);
    }

    #[test]
    fn adam_reduces_a_quadratic_faster_than_its_start() {
        let mut g = Graph::new();
        let p = g.parameter(Tensor::row(&[10.0, -10.0]));
        g.seal();
        let mut opt =
            Adam::new(&g, vec![p], AdamConfig { learning_rate: 0.3, ..Default::default() });
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..500 {
            g.reset();
            let loss = quadratic_loss(&mut g, p);
            g.backward(loss);
            opt.step(&mut g);
            last = g.value(loss).as_scalar();
            if first.is_none() {
                first = Some(last);
            }
        }
        assert!(last < first.unwrap() * 1e-3, "Adam did not improve enough: {last}");
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adam_handles_sparse_gradients() {
        // Only one coordinate ever receives gradient (max picks it); Adam must
        // still behave sensibly and leave the other coordinate untouched.
        let mut g = Graph::new();
        let p = g.parameter(Tensor::row(&[5.0, 1.0]));
        g.seal();
        let mut opt = Adam::new(&g, vec![p], AdamConfig::default());
        for _ in 0..10 {
            g.reset();
            let scaled = g.mul_const(p, Arc::new(vec![1.0, 0.0]));
            let loss = g.max(scaled);
            g.backward(loss);
            opt.step(&mut g);
        }
        assert!(g.value(p).data()[0] < 5.0, "coordinate with gradient must decrease");
        assert_eq!(g.value(p).data()[1], 1.0, "untouched coordinate must stay put");
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_learning_rate() {
        Sgd::new(vec![], 0.0);
    }
}
