//! # figret-nn
//!
//! A from-scratch deep-learning substrate: dense tensors, a reverse-mode
//! autograd tape with the operations needed by FIGRET's burst-aware loss, the
//! paper's fully connected architecture and the Adam optimizer.
//!
//! The paper implements FIGRET in PyTorch; this crate is the offline
//! substitute documented in DESIGN.md §5.
//!
//! # Example
//!
//! ```
//! use figret_nn::{Graph, Mlp, MlpConfig, Tensor, Adam, AdamConfig, Optimizer};
//!
//! let mut graph = Graph::new();
//! let mlp = Mlp::new(&mut graph, MlpConfig::paper_default(8, 4));
//! graph.seal();
//! let mut adam = Adam::new(&graph, mlp.parameters(), AdamConfig::default());
//!
//! graph.reset();
//! let x = graph.input(Tensor::row(&[0.5; 8]));
//! let y = mlp.forward(&mut graph, x);
//! let loss = graph.sum(y);
//! graph.backward(loss);
//! adam.step(&mut graph);
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod layers;
pub mod optim;
pub mod plan;
pub mod tensor;

pub use graph::{Graph, SparseMatrix, Var};
pub use layers::{Mlp, MlpConfig, OutputActivation};
pub use optim::{Adam, AdamConfig, Optimizer, Sgd};
pub use plan::InferencePlan;
pub use tensor::Tensor;

#[cfg(test)]
mod gradient_check {
    //! Numerical gradient checks: the most important correctness tests of the
    //! autograd engine.  Every composite expression used by the FIGRET loss is
    //! perturbed coordinate-by-coordinate and compared against the analytic
    //! gradient.

    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    /// Builds a scalar loss from an input vector in a way that exercises the
    /// ops used by the FIGRET loss.  `variant` selects the expression.
    fn build_loss(graph: &mut Graph, input: Var, variant: usize) -> Var {
        match variant % 4 {
            0 => {
                // max of a sparse aggregation (the MLU path).
                let m = Arc::new(SparseMatrix::from_rows(
                    3,
                    6,
                    &[
                        vec![(0, 1.0), (1, 1.0), (3, 0.5)],
                        vec![(2, 1.0), (4, 2.0)],
                        vec![(5, 1.0), (0, 0.25)],
                    ],
                ));
                let agg = graph.sparse_matvec(input, m);
                let scaled = graph.mul_const(agg, Arc::new(vec![0.5, 1.0, 0.25]));
                graph.max(scaled)
            }
            1 => {
                // segment-normalized ratios dotted with a constant (the
                // sensitivity penalty path), with a sigmoid in front so the
                // normalization sees positive inputs.
                let sig = graph.sigmoid(input);
                let segs = Arc::new(vec![0..2, 2..4, 4..6]);
                let ratios = graph.segment_normalize(sig, segs.clone());
                let sens = graph.mul_const(ratios, Arc::new(vec![1.0, 0.5, 2.0, 0.25, 1.0, 4.0]));
                let per_pair = graph.segment_max(sens, segs);
                graph.dot_const(per_pair, Arc::new(vec![3.0, 1.0, 0.5]))
            }
            2 => {
                // A tiny MLP-style affine + relu + sum.
                let w = graph.input(Tensor::from_vec(
                    6,
                    2,
                    vec![0.3, -0.2, 0.1, 0.4, -0.5, 0.2, 0.7, -0.1, 0.05, 0.3, -0.3, 0.6],
                ));
                let z = graph.matmul(input, w);
                let a = graph.relu(z);
                graph.sum(a)
            }
            _ => {
                // Combination: scaled sum plus a max.
                let s = graph.scale(input, 1.5);
                let t = graph.add_scalar(s, 0.1);
                let total = graph.sum(t);
                let m = graph.max(input);
                graph.add(total, m)
            }
        }
    }

    fn loss_value(x: &[f64], variant: usize) -> f64 {
        let mut g = Graph::new();
        g.seal();
        let input = g.input(Tensor::row(x));
        let loss = build_loss(&mut g, input, variant);
        g.value(loss).as_scalar()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn analytic_gradient_matches_finite_differences(
            x in proptest::collection::vec(-2.0f64..2.0, 6),
            variant in 0usize..4,
        ) {
            let mut g = Graph::new();
            g.seal();
            let input = g.input(Tensor::row(&x));
            let loss = build_loss(&mut g, input, variant);
            g.backward(loss);
            let analytic = g.grad(input).data().to_vec();

            let h = 1e-5;
            for i in 0..x.len() {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp[i] += h;
                xm[i] -= h;
                let numeric = (loss_value(&xp, variant) - loss_value(&xm, variant)) / (2.0 * h);
                // max / relu / segment_max are only piecewise differentiable;
                // skip coordinates where the finite difference straddles a kink.
                let disagreement = (analytic[i] - numeric).abs();
                let scale = 1.0 + analytic[i].abs() + numeric.abs();
                if disagreement / scale > 1e-4 {
                    // Tolerate kink coordinates but only if the two one-sided
                    // differences themselves disagree (evidence of a kink).
                    let fp = (loss_value(&xp, variant) - loss_value(&x, variant)) / h;
                    let fm = (loss_value(&x, variant) - loss_value(&xm, variant)) / h;
                    prop_assert!(
                        (fp - fm).abs() / scale > 1e-6,
                        "variant {} coord {}: analytic {} vs numeric {}",
                        variant, i, analytic[i], numeric
                    );
                }
            }
        }
    }
}
