//! A minimal dense 2-D tensor (row-major `f64`).
//!
//! All neural-network state in this reproduction — activations, weights,
//! gradients — is a [`Tensor`].  Scalars are `1×1` tensors and vectors are
//! `1×n` row vectors.

use rand::Rng;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tensor {
    /// A tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f64) -> Tensor {
        Tensor { rows, cols, data: vec![value; rows * cols] }
    }

    /// A `1×1` tensor holding a scalar.
    pub fn scalar(value: f64) -> Tensor {
        Tensor { rows: 1, cols: 1, data: vec![value] }
    }

    /// A `1×n` row vector with the given entries.
    pub fn row(values: &[f64]) -> Tensor {
        Tensor { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Builds a tensor from a row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows * cols");
        Tensor { rows, cols, data }
    }

    /// Stacks equally sized row slices into a batch-major `B×n` tensor (the
    /// input layout of mini-batch forward passes).
    ///
    /// # Panics
    /// Panics if `rows` is empty or the slices have unequal lengths.
    pub fn stack_rows(rows: &[&[f64]]) -> Tensor {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all stacked rows must have the same length");
            data.extend_from_slice(row);
        }
        Tensor { rows: rows.len(), cols, data }
    }

    /// Xavier/Glorot-uniform initialization, the standard choice for the fully
    /// connected layers used by FIGRET and DOTE.
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// The value of a `1×1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1×1`.
    pub fn as_scalar(&self) -> f64 {
        assert_eq!(self.shape(), (1, 1), "tensor is not a scalar");
        self.data[0]
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self += other` element-wise.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += scale * other` element-wise.
    pub fn axpy(&mut self, scale: f64, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_out = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, b) in row_out.iter_mut().zip(row_b) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Largest element.  NaNs are ignored (`f64::max` propagates the other
    /// operand), so a tensor that is empty or all-NaN yields
    /// `f64::NEG_INFINITY`.
    pub fn max_value(&self) -> f64 {
        self.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constructors_and_accessors() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert_eq!(Tensor::scalar(3.5).as_scalar(), 3.5);
        assert_eq!(Tensor::row(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Tensor::full(2, 2, 7.0).data(), &[7.0; 4]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Tensor::row(&[1.0, 2.0]);
        let b = Tensor::row(&[3.0, 4.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[4.0, 6.0]);
        a.axpy(-2.0, &b);
        assert_eq!(a.data(), &[-2.0, -2.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0]);
        assert!((Tensor::row(&[3.0, 4.0]).norm() - 5.0).abs() < 1e-12);
        assert_eq!(Tensor::row(&[1.0, 9.0, 3.0]).max_value(), 9.0);
        assert_eq!(Tensor::row(&[1.0, f64::NAN, 3.0]).max_value(), 3.0);
        assert_eq!(Tensor::row(&[]).max_value(), f64::NEG_INFINITY);
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = Tensor::xavier_uniform(20, 30, &mut rng);
        let limit = (6.0f64 / 50.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= limit));
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(t, Tensor::xavier_uniform(20, 30, &mut rng2));
    }

    #[test]
    fn stack_rows_builds_batches() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let t = Tensor::stack_rows(&[&a, &b]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.row_slice(0), &a);
        assert_eq!(t.row_slice(1), &b);
        assert_eq!(t.get(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn stack_rows_checks_widths() {
        let a = [1.0, 2.0];
        let b = [3.0];
        let _ = Tensor::stack_rows(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn stack_rows_rejects_empty() {
        let _ = Tensor::stack_rows(&[]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_checks_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
