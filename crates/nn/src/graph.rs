//! Reverse-mode automatic differentiation on a flat tape.
//!
//! The FIGRET loss (Equation 6/7/8 of the paper) differentiates the maximum
//! link utilization and the sensitivity penalty with respect to the neural
//! network's weights.  This module provides exactly the operations needed for
//! that computation:
//!
//! * dense affine layers (`matmul`, `add_bias`), ReLU and sigmoid activations,
//! * per-SD-pair normalization of split ratios (`segment_normalize`),
//! * the linear path→edge aggregation of Function 1 (`sparse_matvec`),
//! * element-wise products with constants, per-segment maxima, global and
//!   per-row maxima and dot products for the loss terms.
//!
//! Nodes live on a tape ([`Graph`]); parameters are *persistent* nodes created
//! before [`Graph::seal`], everything built afterwards is transient and
//! discarded by [`Graph::reset`] between samples, so the parameter tensors are
//! never re-cloned during training.
//!
//! # Batched (row-major) semantics
//!
//! Every structured operation treats an `R×C` node as a batch of `R`
//! independent row vectors: `segment_normalize`, `segment_max`,
//! `sparse_matvec`, `dot_const` and the per-row reductions ([`Graph::row_max`],
//! [`Graph::row_logsumexp`]) apply to each row separately, and
//! [`Graph::mul_const`] broadcasts a `cols`-length constant across rows.  With
//! `R = 1` this degenerates to the original single-sample behaviour, so the
//! same loss-construction code serves both the per-sample solver path and the
//! mini-batch training path.
//!
//! Constants attached to operations are shared through [`Arc`], which makes a
//! cloned [`Graph`] cheap to send to a worker thread: mini-batch training
//! clones the sealed parameter tape once per microbatch and runs
//! forward/backward passes in parallel.

use std::ops::Range;
use std::sync::Arc;

use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// A constant sparse matrix in CSR form, used for the path→edge aggregation.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` lists.
    pub fn from_rows(rows: usize, cols: usize, entries: &[Vec<(usize, f64)>]) -> SparseMatrix {
        assert_eq!(entries.len(), rows, "one entry list per row is required");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in entries {
            for &(c, v) in row {
                assert!(c < cols, "column index {c} out of range");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        SparseMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `y = M x` for a dense vector `x` of length `cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must equal the column count");
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// `y = M x` writing into a caller-provided buffer of length `rows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "vector length must equal the column count");
        assert_eq!(y.len(), self.rows, "output length must equal the row count");
        for r in 0..self.rows {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i]];
            }
            y[r] = acc;
        }
    }

    /// `x += Mᵀ y` for a dense vector `y` of length `rows`.
    pub fn add_transpose_matvec(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        for r in 0..self.rows {
            let g = y[r];
            if g == 0.0 {
                continue;
            }
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                x[self.col_idx[i]] += self.values[i] * g;
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(usize, usize),
    Add(usize, usize),
    AddBias(usize, usize),
    Relu(usize),
    Sigmoid(usize),
    Scale(usize, f64),
    AddScalar(usize),
    MulConst(usize, Arc<Vec<f64>>),
    SparseMatVec(usize, Arc<SparseMatrix>),
    SegmentNormalize(usize, Arc<Vec<Range<usize>>>),
    SegmentMax(usize, Arc<Vec<Range<usize>>>),
    Max(usize),
    RowMax(usize),
    Sum(usize),
    Mean(usize),
    DotConst(usize, Arc<Vec<f64>>),
    LogSumExp(usize, f64),
    RowLogSumExp(usize, f64),
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    grad: Tensor,
    op: Op,
}

/// The autograd tape.
///
/// Cloning a graph clones node values and gradients but shares the constant
/// payloads ([`Arc`]), so a sealed parameter tape can be cheaply duplicated
/// per worker for data-parallel gradient computation.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    nodes: Vec<Node>,
    persistent: usize,
    sealed: bool,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Graph {
        Graph { nodes: Vec::new(), persistent: 0, sealed: false }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.nodes.push(Node { value, grad, op });
        Var(self.nodes.len() - 1)
    }

    /// Creates a persistent leaf (a trainable parameter).  Must be called
    /// before [`Graph::seal`].
    pub fn parameter(&mut self, value: Tensor) -> Var {
        assert!(!self.sealed, "parameters must be created before seal()");
        let v = self.push(value, Op::Leaf);
        self.persistent = self.nodes.len();
        v
    }

    /// Marks the end of the persistent (parameter) prefix.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Removes every transient node and zeroes all gradients.  Parameters keep
    /// their values.
    pub fn reset(&mut self) {
        self.nodes.truncate(self.persistent);
        for n in &mut self.nodes {
            n.grad.fill_zero();
        }
    }

    /// Creates a transient leaf (an input).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a node (valid after [`Graph::backward`]).
    pub fn grad(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].grad
    }

    /// Accumulates an externally computed gradient into a node (used to merge
    /// the per-microbatch gradients of data-parallel training before an
    /// optimizer step).
    pub fn add_grad(&mut self, v: Var, grad: &Tensor) {
        self.nodes[v.0].grad.add_assign(grad);
    }

    /// Zeroes the gradient of every node on the tape.
    pub fn zero_grads(&mut self) {
        for n in &mut self.nodes {
            n.grad.fill_zero();
        }
    }

    /// Overwrites the value of a (parameter) node in place.
    pub fn set_value(&mut self, v: Var, value: Tensor) {
        assert_eq!(self.nodes[v.0].value.shape(), value.shape(), "shape mismatch in set_value");
        self.nodes[v.0].value = value;
    }

    /// Mutable access to a node value (used by optimizers for in-place updates).
    pub fn value_mut(&mut self, v: Var) -> &mut Tensor {
        &mut self.nodes[v.0].value
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- operations -------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::MatMul(a.0, b.0))
    }

    /// Element-wise sum of two same-shaped nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        value.add_assign(&self.nodes[b.0].value);
        self.push(value, Op::Add(a.0, b.0))
    }

    /// Adds a `1×n` bias row to every row of an `m×n` node.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[bias.0].value;
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(bv.cols(), xv.cols(), "bias width must match");
        let mut value = xv.clone();
        for r in 0..value.rows() {
            for c in 0..value.cols() {
                let v = value.get(r, c) + bv.get(0, c);
                value.set(r, c, v);
            }
        }
        self.push(value, Op::AddBias(x.0, bias.0))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        for v in value.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.push(value, Op::Relu(a.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        for v in value.data_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        self.push(value, Op::Sigmoid(a.0))
    }

    /// Multiplies every element by a scalar constant.
    pub fn scale(&mut self, a: Var, k: f64) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        for v in value.data_mut() {
            *v *= k;
        }
        self.push(value, Op::Scale(a.0, k))
    }

    /// Adds a scalar constant to every element.
    pub fn add_scalar(&mut self, a: Var, k: f64) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        for v in value.data_mut() {
            *v += k;
        }
        self.push(value, Op::AddScalar(a.0))
    }

    /// Element-wise product with a constant.  The constant either matches the
    /// node's full element count, or has length `cols` and is broadcast across
    /// every row of a batched node.
    pub fn mul_const(&mut self, a: Var, constant: Arc<Vec<f64>>) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        let cols = value.cols();
        if constant.len() == value.len() {
            for (v, c) in value.data_mut().iter_mut().zip(constant.iter()) {
                *v *= c;
            }
        } else {
            assert_eq!(
                constant.len(),
                cols,
                "constant length must match the element count or the column count"
            );
            for row in value.data_mut().chunks_mut(cols) {
                for (v, c) in row.iter_mut().zip(constant.iter()) {
                    *v *= c;
                }
            }
        }
        self.push(value, Op::MulConst(a.0, constant))
    }

    /// `Y[r] = M X[r]` per row, for a constant sparse matrix and an
    /// `R×M.cols()` node; the result is an `R×M.rows()` node (`1×M.rows()`
    /// for a single sample).
    pub fn sparse_matvec(&mut self, a: Var, matrix: Arc<SparseMatrix>) -> Var {
        let x = &self.nodes[a.0].value;
        assert_eq!(x.cols(), matrix.cols(), "node width must match the matrix column count");
        let rows = x.rows();
        let mut out = Tensor::zeros(rows, matrix.rows());
        for r in 0..rows {
            let src = &x.data()[r * matrix.cols()..(r + 1) * matrix.cols()];
            let dst = &mut out.data_mut()[r * matrix.rows()..(r + 1) * matrix.rows()];
            matrix.matvec_into(src, dst);
        }
        self.push(out, Op::SparseMatVec(a.0, matrix))
    }

    /// Normalizes each segment of every row so it sums to 1
    /// (`r_p = x_p / Σ_{q ∈ segment} x_q`).  Segments index columns; inputs
    /// must be non-negative; an all-zero segment yields a uniform distribution
    /// over that segment.
    pub fn segment_normalize(&mut self, a: Var, segments: Arc<Vec<Range<usize>>>) -> Var {
        let value = &self.nodes[a.0].value;
        let cols = value.cols();
        let mut out = value.clone();
        for row in out.data_mut().chunks_mut(cols) {
            for seg in segments.iter() {
                let sum: f64 = row[seg.clone()].iter().sum();
                if sum > 0.0 {
                    for v in &mut row[seg.clone()] {
                        *v /= sum;
                    }
                } else {
                    let n = seg.len().max(1);
                    for v in &mut row[seg.clone()] {
                        *v = 1.0 / n as f64;
                    }
                }
            }
        }
        self.push(out, Op::SegmentNormalize(a.0, segments))
    }

    /// Per-segment maximum of every row; the result has one column per
    /// segment.  Empty segments yield 0.
    pub fn segment_max(&mut self, a: Var, segments: Arc<Vec<Range<usize>>>) -> Var {
        let value = &self.nodes[a.0].value;
        let cols = value.cols();
        let rows = value.rows();
        let mut out = Tensor::zeros(rows, segments.len());
        for r in 0..rows {
            let row = &value.data()[r * cols..(r + 1) * cols];
            for (s, seg) in segments.iter().enumerate() {
                out.set(r, s, row[seg.clone()].iter().cloned().fold(0.0f64, f64::max));
            }
        }
        self.push(out, Op::SegmentMax(a.0, segments))
    }

    /// Maximum element over the whole node (a `1×1` result).
    pub fn max(&mut self, a: Var) -> Var {
        let m = self.nodes[a.0].value.data().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.push(Tensor::scalar(m), Op::Max(a.0))
    }

    /// Per-row maximum (an `R×1` result); the batched counterpart of
    /// [`Graph::max`].
    pub fn row_max(&mut self, a: Var) -> Var {
        let value = &self.nodes[a.0].value;
        let cols = value.cols();
        assert!(cols > 0, "row_max requires at least one column");
        let rows = value.rows();
        let mut out = Tensor::zeros(rows, 1);
        for r in 0..rows {
            let m = value.data()[r * cols..(r + 1) * cols]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            out.set(r, 0, m);
        }
        self.push(out, Op::RowMax(a.0))
    }

    /// Sum of all elements (a `1×1` result).
    pub fn sum(&mut self, a: Var) -> Var {
        let s: f64 = self.nodes[a.0].value.data().iter().sum();
        self.push(Tensor::scalar(s), Op::Sum(a.0))
    }

    /// Arithmetic mean of all elements (a `1×1` result); the standard batch
    /// reduction of per-sample losses.
    pub fn mean(&mut self, a: Var) -> Var {
        let n = self.nodes[a.0].value.len();
        assert!(n > 0, "mean of an empty node");
        let s: f64 = self.nodes[a.0].value.data().iter().sum();
        self.push(Tensor::scalar(s / n as f64), Op::Mean(a.0))
    }

    /// Smooth maximum `T · ln Σ exp(x_i / T)` over the whole node (a `1×1`
    /// result).
    ///
    /// Upper-bounds the true maximum and converges to it as the temperature
    /// `T → 0`.  Used by the iterative MLU solver, where a smooth surrogate of
    /// the max-link-utilization objective converges much faster than the
    /// sub-gradient of the exact maximum.
    pub fn logsumexp(&mut self, a: Var, temperature: f64) -> Var {
        assert!(temperature > 0.0, "temperature must be positive");
        let x = self.nodes[a.0].value.data();
        let value = logsumexp_slice(x, temperature);
        self.push(Tensor::scalar(value), Op::LogSumExp(a.0, temperature))
    }

    /// Per-row smooth maximum (an `R×1` result); the batched counterpart of
    /// [`Graph::logsumexp`].
    pub fn row_logsumexp(&mut self, a: Var, temperature: f64) -> Var {
        assert!(temperature > 0.0, "temperature must be positive");
        let value = &self.nodes[a.0].value;
        let cols = value.cols();
        assert!(cols > 0, "row_logsumexp requires at least one column");
        let rows = value.rows();
        let mut out = Tensor::zeros(rows, 1);
        for r in 0..rows {
            out.set(r, 0, logsumexp_slice(&value.data()[r * cols..(r + 1) * cols], temperature));
        }
        self.push(out, Op::RowLogSumExp(a.0, temperature))
    }

    /// Dot product of every row with a constant vector (an `R×1` result; a
    /// `1×1` scalar for a single row).
    pub fn dot_const(&mut self, a: Var, constant: Arc<Vec<f64>>) -> Var {
        let value = &self.nodes[a.0].value;
        let cols = value.cols();
        assert_eq!(constant.len(), cols, "constant length must match the column count");
        let rows = value.rows();
        let mut out = Tensor::zeros(rows, 1);
        for r in 0..rows {
            let row = &value.data()[r * cols..(r + 1) * cols];
            let s: f64 = row.iter().zip(constant.iter()).map(|(a, b)| a * b).sum();
            out.set(r, 0, s);
        }
        self.push(out, Op::DotConst(a.0, constant))
    }

    // ---- backward ---------------------------------------------------------

    /// Back-propagates from `loss` (which must be `1×1`), accumulating
    /// gradients into every node reachable from it.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "loss must be a scalar");
        for n in &mut self.nodes {
            n.grad.fill_zero();
        }
        self.nodes[loss.0].grad = Tensor::scalar(1.0);
        for i in (0..=loss.0).rev() {
            let op = self.nodes[i].op.clone();
            let grad = self.nodes[i].grad.clone();
            if grad.data().iter().all(|g| *g == 0.0) {
                continue;
            }
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let a_val = self.nodes[a].value.clone();
                    let b_val = self.nodes[b].value.clone();
                    let da = grad.matmul(&b_val.transpose());
                    let db = a_val.transpose().matmul(&grad);
                    self.nodes[a].grad.add_assign(&da);
                    self.nodes[b].grad.add_assign(&db);
                }
                Op::Add(a, b) => {
                    self.nodes[a].grad.add_assign(&grad);
                    self.nodes[b].grad.add_assign(&grad);
                }
                Op::AddBias(x, bias) => {
                    self.nodes[x].grad.add_assign(&grad);
                    let cols = grad.cols();
                    let mut bias_grad = Tensor::zeros(1, cols);
                    for r in 0..grad.rows() {
                        for c in 0..cols {
                            let v = bias_grad.get(0, c) + grad.get(r, c);
                            bias_grad.set(0, c, v);
                        }
                    }
                    self.nodes[bias].grad.add_assign(&bias_grad);
                }
                Op::Relu(a) => {
                    let mut da = grad.clone();
                    for (g, v) in da.data_mut().iter_mut().zip(self.nodes[a].value.data()) {
                        if *v <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::Sigmoid(a) => {
                    let out = self.nodes[i].value.clone();
                    let mut da = grad.clone();
                    for (g, y) in da.data_mut().iter_mut().zip(out.data()) {
                        *g *= y * (1.0 - y);
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::Scale(a, k) => {
                    self.nodes[a].grad.axpy(k, &grad);
                }
                Op::AddScalar(a) => {
                    self.nodes[a].grad.add_assign(&grad);
                }
                Op::MulConst(a, c) => {
                    let mut da = grad.clone();
                    if c.len() == da.len() {
                        for (g, k) in da.data_mut().iter_mut().zip(c.iter()) {
                            *g *= k;
                        }
                    } else {
                        let cols = da.cols();
                        for row in da.data_mut().chunks_mut(cols) {
                            for (g, k) in row.iter_mut().zip(c.iter()) {
                                *g *= k;
                            }
                        }
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::SparseMatVec(a, m) => {
                    let rows = self.nodes[a].value.rows();
                    let mut da = vec![0.0; rows * m.cols()];
                    for r in 0..rows {
                        let gy = &grad.data()[r * m.rows()..(r + 1) * m.rows()];
                        let dx = &mut da[r * m.cols()..(r + 1) * m.cols()];
                        m.add_transpose_matvec(gy, dx);
                    }
                    let da = Tensor::from_vec(rows, m.cols(), da);
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::SegmentNormalize(a, segments) => {
                    let value = &self.nodes[a].value;
                    let cols = value.cols();
                    let rows = value.rows();
                    let x = value.data().to_vec();
                    let mut da = vec![0.0; x.len()];
                    for r in 0..rows {
                        let base = r * cols;
                        for seg in segments.iter() {
                            let sum: f64 = seg.clone().map(|i| x[base + i]).sum();
                            if sum <= 0.0 {
                                // Uniform output does not depend on the input.
                                continue;
                            }
                            let gdotx: f64 = seg
                                .clone()
                                .map(|i| grad.data()[base + i] * x[base + i])
                                .sum::<f64>()
                                / (sum * sum);
                            for i in seg.clone() {
                                da[base + i] += grad.data()[base + i] / sum - gdotx;
                            }
                        }
                    }
                    let da = Tensor::from_vec(rows, cols, da);
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::SegmentMax(a, segments) => {
                    let value = &self.nodes[a].value;
                    let cols = value.cols();
                    let rows = value.rows();
                    let x = value.data();
                    let mut da = vec![0.0; x.len()];
                    for r in 0..rows {
                        let base = r * cols;
                        for (s, seg) in segments.iter().enumerate() {
                            if seg.is_empty() {
                                continue;
                            }
                            // Sub-gradient: route to the first argmax of the segment.
                            let mut best = seg.start;
                            for i in seg.clone() {
                                if x[base + i] > x[base + best] {
                                    best = i;
                                }
                            }
                            let g = grad.get(r, s);
                            if x[base + best] > 0.0 || g != 0.0 {
                                da[base + best] += g;
                            }
                        }
                    }
                    let da = Tensor::from_vec(rows, cols, da);
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::Max(a) => {
                    let x = self.nodes[a].value.data();
                    let mut best = 0usize;
                    for (j, v) in x.iter().enumerate() {
                        if *v > x[best] {
                            best = j;
                        }
                    }
                    let mut da =
                        Tensor::zeros(self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    da.data_mut()[best] = grad.as_scalar();
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::RowMax(a) => {
                    let value = &self.nodes[a].value;
                    let cols = value.cols();
                    let rows = value.rows();
                    let x = value.data();
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        let base = r * cols;
                        let mut best = 0usize;
                        for c in 1..cols {
                            if x[base + c] > x[base + best] {
                                best = c;
                            }
                        }
                        da.set(r, best, grad.get(r, 0));
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::Sum(a) => {
                    let g = grad.as_scalar();
                    let da =
                        Tensor::full(self.nodes[a].value.rows(), self.nodes[a].value.cols(), g);
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::Mean(a) => {
                    let n = self.nodes[a].value.len();
                    let g = grad.as_scalar() / n as f64;
                    let da =
                        Tensor::full(self.nodes[a].value.rows(), self.nodes[a].value.cols(), g);
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::DotConst(a, c) => {
                    let value = &self.nodes[a].value;
                    let cols = value.cols();
                    let rows = value.rows();
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        let g = grad.get(r, 0);
                        if g == 0.0 {
                            continue;
                        }
                        for (ci, k) in c.iter().enumerate() {
                            da.set(r, ci, g * k);
                        }
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::LogSumExp(a, temperature) => {
                    let g = grad.as_scalar();
                    let x = self.nodes[a].value.data();
                    let mut da =
                        Tensor::zeros(self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    logsumexp_grad_slice(x, temperature, g, da.data_mut());
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::RowLogSumExp(a, temperature) => {
                    let value = &self.nodes[a].value;
                    let cols = value.cols();
                    let rows = value.rows();
                    let mut da = Tensor::zeros(rows, cols);
                    for r in 0..rows {
                        let g = grad.get(r, 0);
                        if g == 0.0 {
                            continue;
                        }
                        let x = &value.data()[r * cols..(r + 1) * cols];
                        logsumexp_grad_slice(
                            x,
                            temperature,
                            g,
                            &mut da.data_mut()[r * cols..(r + 1) * cols],
                        );
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
            }
        }
    }
}

fn logsumexp_slice(x: &[f64], temperature: f64) -> f64 {
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = x.iter().map(|v| ((v - m) / temperature).exp()).sum();
    m + temperature * sum.ln()
}

fn logsumexp_grad_slice(x: &[f64], temperature: f64, upstream: f64, out: &mut [f64]) {
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = x.iter().map(|v| ((v - m) / temperature).exp()).collect();
    let total: f64 = weights.iter().sum();
    for (d, w) in out.iter_mut().zip(&weights) {
        *d = upstream * w / total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_matrix_matvec_and_transpose() {
        // M = [[1, 0, 2], [0, 3, 0]]
        let m = SparseMatrix::from_rows(2, 3, &[vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        let mut x = vec![0.0; 3];
        m.add_transpose_matvec(&[1.0, 2.0], &mut x);
        assert_eq!(x, vec![1.0, 6.0, 2.0]);
    }

    #[test]
    fn forward_values_are_correct() {
        let mut g = Graph::new();
        let w = g.parameter(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        g.seal();
        let x = g.input(Tensor::row(&[1.0, 1.0]));
        let y = g.matmul(x, w);
        assert_eq!(g.value(y).data(), &[4.0, 6.0]);
        let r = g.relu(y);
        assert_eq!(g.value(r).data(), &[4.0, 6.0]);
        let s = g.sum(r);
        assert_eq!(g.value(s).as_scalar(), 10.0);
        let m = g.max(y);
        assert_eq!(g.value(m).as_scalar(), 6.0);
        g.reset();
        assert_eq!(g.len(), 1, "reset keeps only persistent parameters");
    }

    #[test]
    fn backward_through_linear_layer() {
        // loss = sum(relu(x W + b)) with positive pre-activations:
        // dL/dW = x^T . 1, dL/db = 1, dL/dx = 1 . W^T.
        let mut g = Graph::new();
        let w = g.parameter(Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, 4.0]));
        let b = g.parameter(Tensor::row(&[10.0, 10.0]));
        g.seal();
        let x = g.input(Tensor::row(&[2.0, 5.0]));
        let xw = g.matmul(x, w);
        let z = g.add_bias(xw, b);
        let a = g.relu(z);
        let loss = g.sum(a);
        g.backward(loss);
        assert_eq!(g.grad(w).data(), &[2.0, 2.0, 5.0, 5.0]);
        assert_eq!(g.grad(b).data(), &[1.0, 1.0]);
        assert_eq!(g.grad(x).data(), &[-1.0, 7.0]);
    }

    #[test]
    fn segment_normalize_sums_to_one_and_handles_zero() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[2.0, 6.0, 0.0, 0.0, 5.0]));
        let segs = Arc::new(vec![0..2, 2..4, 4..5]);
        let r = g.segment_normalize(x, segs);
        let out = g.value(r).data().to_vec();
        assert!((out[0] - 0.25).abs() < 1e-12);
        assert!((out[1] - 0.75).abs() < 1e-12);
        assert!((out[2] - 0.5).abs() < 1e-12);
        assert!((out[3] - 0.5).abs() < 1e-12);
        assert!((out[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_and_segment_max_route_gradients_to_argmax() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[1.0, 5.0, 3.0, 4.0]));
        let segs = Arc::new(vec![0..2, 2..4]);
        let sm = g.segment_max(x, segs);
        assert_eq!(g.value(sm).data(), &[5.0, 4.0]);
        let total = g.sum(sm);
        g.backward(total);
        assert_eq!(g.grad(x).data(), &[0.0, 1.0, 0.0, 1.0]);

        g.reset();
        let x = g.input(Tensor::row(&[1.0, 5.0, 3.0]));
        let m = g.max(x);
        g.backward(m);
        assert_eq!(g.grad(x).data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn scalar_ops_and_dot() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[1.0, 2.0]));
        let s = g.scale(x, 3.0);
        assert_eq!(g.value(s).data(), &[3.0, 6.0]);
        let t = g.add_scalar(s, 1.0);
        assert_eq!(g.value(t).data(), &[4.0, 7.0]);
        let d = g.dot_const(t, Arc::new(vec![1.0, 2.0]));
        assert_eq!(g.value(d).as_scalar(), 18.0);
        g.backward(d);
        assert_eq!(g.grad(x).data(), &[3.0, 6.0]);
    }

    #[test]
    fn logsumexp_bounds_max_and_has_softmax_gradient() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[1.0, 3.0, 2.0]));
        let lse = g.logsumexp(x, 0.1);
        let value = g.value(lse).as_scalar();
        assert!(value >= 3.0, "logsumexp must upper-bound the max");
        assert!(value < 3.1, "with a low temperature it must be close to the max");
        g.backward(lse);
        let grads = g.grad(x).data().to_vec();
        assert!((grads.iter().sum::<f64>() - 1.0).abs() < 1e-9, "softmax weights sum to 1");
        assert!(grads[1] > 0.99, "the max coordinate dominates");
    }

    #[test]
    fn sigmoid_gradient_matches_formula() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[0.0]));
        let y = g.sigmoid(x);
        let loss = g.sum(y);
        g.backward(loss);
        // sigma(0) = 0.5, derivative = 0.25.
        assert!((g.value(y).data()[0] - 0.5).abs() < 1e-12);
        assert!((g.grad(x).data()[0] - 0.25).abs() < 1e-12);
    }

    // ---- batched (row-major) semantics ------------------------------------

    #[test]
    fn batched_segment_normalize_acts_per_row() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::from_vec(2, 4, vec![2.0, 6.0, 1.0, 3.0, 5.0, 5.0, 0.0, 0.0]));
        let segs = Arc::new(vec![0..2, 2..4]);
        let r = g.segment_normalize(x, segs);
        let out = g.value(r);
        assert_eq!(out.shape(), (2, 4));
        assert!((out.get(0, 0) - 0.25).abs() < 1e-12);
        assert!((out.get(0, 1) - 0.75).abs() < 1e-12);
        assert!((out.get(0, 2) - 0.25).abs() < 1e-12);
        assert!((out.get(1, 0) - 0.5).abs() < 1e-12);
        // All-zero segment in row 1 becomes uniform.
        assert!((out.get(1, 2) - 0.5).abs() < 1e-12);
        assert!((out.get(1, 3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batched_sparse_matvec_matches_per_row_matvec() {
        let m =
            Arc::new(SparseMatrix::from_rows(2, 3, &[vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)]]));
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::from_vec(2, 3, vec![1.0, 1.0, 1.0, 2.0, 0.5, -1.0]));
        let y = g.sparse_matvec(x, m.clone());
        assert_eq!(g.value(y).shape(), (2, 2));
        assert_eq!(&g.value(y).data()[0..2], m.matvec(&[1.0, 1.0, 1.0]).as_slice());
        assert_eq!(&g.value(y).data()[2..4], m.matvec(&[2.0, 0.5, -1.0]).as_slice());
        // Gradients flow independently per row.
        let total = g.sum(y);
        g.backward(total);
        assert_eq!(g.grad(x).shape(), (2, 3));
        assert_eq!(&g.grad(x).data()[0..3], &[1.0, 3.0, 2.0]);
        assert_eq!(&g.grad(x).data()[3..6], &[1.0, 3.0, 2.0]);
    }

    #[test]
    fn row_max_routes_gradient_per_row() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::from_vec(2, 3, vec![1.0, 5.0, 3.0, 7.0, 2.0, 6.0]));
        let m = g.row_max(x);
        assert_eq!(g.value(m).shape(), (2, 1));
        assert_eq!(g.value(m).data(), &[5.0, 7.0]);
        let total = g.sum(m);
        g.backward(total);
        assert_eq!(g.grad(x).data(), &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_gradient_is_uniform() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 6.0]));
        let m = g.mean(x);
        assert_eq!(g.value(m).as_scalar(), 3.0);
        g.backward(m);
        assert_eq!(g.grad(x).data(), &[0.25; 4]);
    }

    #[test]
    fn mul_const_broadcasts_across_rows() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::from_vec(2, 3, vec![1.0; 6]));
        let y = g.mul_const(x, Arc::new(vec![1.0, 2.0, 3.0]));
        assert_eq!(g.value(y).data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let total = g.sum(y);
        g.backward(total);
        assert_eq!(g.grad(x).data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn batched_dot_const_yields_column() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let d = g.dot_const(x, Arc::new(vec![2.0, 1.0]));
        assert_eq!(g.value(d).shape(), (2, 1));
        assert_eq!(g.value(d).data(), &[4.0, 10.0]);
        let total = g.sum(d);
        g.backward(total);
        assert_eq!(g.grad(x).data(), &[2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn row_logsumexp_matches_global_on_single_row() {
        let mut g = Graph::new();
        g.seal();
        let x1 = g.input(Tensor::row(&[1.0, 3.0, 2.0]));
        let global = g.logsumexp(x1, 0.1);
        let x2 = g.input(Tensor::row(&[1.0, 3.0, 2.0]));
        let per_row = g.row_logsumexp(x2, 0.1);
        assert!((g.value(global).as_scalar() - g.value(per_row).get(0, 0)).abs() < 1e-12);
        // Batched: each row upper-bounds its own max.
        let x3 = g.input(Tensor::from_vec(2, 2, vec![0.0, 1.0, 5.0, 4.0]));
        let lse = g.row_logsumexp(x3, 0.05);
        assert!(g.value(lse).get(0, 0) >= 1.0);
        assert!(g.value(lse).get(1, 0) >= 5.0);
    }

    #[test]
    fn cloned_graph_is_independent_and_sendable() {
        let mut g = Graph::new();
        let w = g.parameter(Tensor::row(&[1.0, 2.0]));
        g.seal();
        let mut clone = g.clone();
        let handle = std::thread::spawn(move || {
            // The loss flows through the parameter, so the worker writes a
            // non-zero gradient into ITS tape.
            let x = clone.input(Tensor::row(&[3.0, 4.0]));
            let z = clone.add(x, w);
            let d = clone.dot_const(z, Arc::new(vec![1.0, 1.0]));
            let loss = clone.sum(d);
            clone.backward(loss);
            clone.grad(w).data().to_vec()
        });
        let worker_grads = handle.join().unwrap();
        assert_eq!(worker_grads, vec![1.0, 1.0], "the clone must accumulate real gradients");
        // ...while the original tape's gradient storage stays untouched.
        assert_eq!(g.grad(w).data(), &[0.0, 0.0]);
        assert_eq!(g.value(w).data(), &[1.0, 2.0]);
    }

    #[test]
    fn add_grad_accumulates_external_gradients() {
        let mut g = Graph::new();
        let w = g.parameter(Tensor::row(&[0.0, 0.0]));
        g.seal();
        g.add_grad(w, &Tensor::row(&[1.0, 2.0]));
        g.add_grad(w, &Tensor::row(&[0.5, -1.0]));
        assert_eq!(g.grad(w).data(), &[1.5, 1.0]);
        g.zero_grads();
        assert_eq!(g.grad(w).data(), &[0.0, 0.0]);
    }
}
