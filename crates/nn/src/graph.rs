//! Reverse-mode automatic differentiation on a flat tape.
//!
//! The FIGRET loss (Equation 6/7/8 of the paper) differentiates the maximum
//! link utilization and the sensitivity penalty with respect to the neural
//! network's weights.  This module provides exactly the operations needed for
//! that computation:
//!
//! * dense affine layers (`matmul`, `add_bias`), ReLU and sigmoid activations,
//! * per-SD-pair normalization of split ratios (`segment_normalize`),
//! * the linear path→edge aggregation of Function 1 (`sparse_matvec`),
//! * element-wise products with constants, per-segment maxima, global maxima
//!   and dot products for the loss terms.
//!
//! Nodes live on a tape ([`Graph`]); parameters are *persistent* nodes created
//! before [`Graph::seal`], everything built afterwards is transient and
//! discarded by [`Graph::reset`] between samples, so the parameter tensors are
//! never re-cloned during training.

use std::ops::Range;
use std::rc::Rc;

use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// A constant sparse matrix in CSR form, used for the path→edge aggregation.
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` lists.
    pub fn from_rows(rows: usize, cols: usize, entries: &[Vec<(usize, f64)>]) -> SparseMatrix {
        assert_eq!(entries.len(), rows, "one entry list per row is required");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in entries {
            for &(c, v) in row {
                assert!(c < cols, "column index {c} out of range");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        SparseMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `y = M x` for a dense vector `x` of length `cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must equal the column count");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i]];
            }
            y[r] = acc;
        }
        y
    }

    /// `x += Mᵀ y` for a dense vector `y` of length `rows`.
    pub fn add_transpose_matvec(&self, y: &[f64], x: &mut [f64]) {
        assert_eq!(y.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        for r in 0..self.rows {
            let g = y[r];
            if g == 0.0 {
                continue;
            }
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                x[self.col_idx[i]] += self.values[i] * g;
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(usize, usize),
    Add(usize, usize),
    AddBias(usize, usize),
    Relu(usize),
    Sigmoid(usize),
    Scale(usize, f64),
    AddScalar(usize),
    MulConst(usize, Rc<Vec<f64>>),
    SparseMatVec(usize, Rc<SparseMatrix>),
    SegmentNormalize(usize, Rc<Vec<Range<usize>>>),
    SegmentMax(usize, Rc<Vec<Range<usize>>>),
    Max(usize),
    Sum(usize),
    DotConst(usize, Rc<Vec<f64>>),
    LogSumExp(usize, f64),
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    grad: Tensor,
    op: Op,
}

/// The autograd tape.
#[derive(Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    persistent: usize,
    sealed: bool,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Graph {
        Graph { nodes: Vec::new(), persistent: 0, sealed: false }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.nodes.push(Node { value, grad, op });
        Var(self.nodes.len() - 1)
    }

    /// Creates a persistent leaf (a trainable parameter).  Must be called
    /// before [`Graph::seal`].
    pub fn parameter(&mut self, value: Tensor) -> Var {
        assert!(!self.sealed, "parameters must be created before seal()");
        let v = self.push(value, Op::Leaf);
        self.persistent = self.nodes.len();
        v
    }

    /// Marks the end of the persistent (parameter) prefix.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Removes every transient node and zeroes all gradients.  Parameters keep
    /// their values.
    pub fn reset(&mut self) {
        self.nodes.truncate(self.persistent);
        for n in &mut self.nodes {
            n.grad.fill_zero();
        }
    }

    /// Creates a transient leaf (an input).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// The value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient of a node (valid after [`Graph::backward`]).
    pub fn grad(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].grad
    }

    /// Overwrites the value of a (parameter) node in place.
    pub fn set_value(&mut self, v: Var, value: Tensor) {
        assert_eq!(self.nodes[v.0].value.shape(), value.shape(), "shape mismatch in set_value");
        self.nodes[v.0].value = value;
    }

    /// Mutable access to a node value (used by optimizers for in-place updates).
    pub fn value_mut(&mut self, v: Var) -> &mut Tensor {
        &mut self.nodes[v.0].value
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- operations -------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::MatMul(a.0, b.0))
    }

    /// Element-wise sum of two same-shaped nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        value.add_assign(&self.nodes[b.0].value);
        self.push(value, Op::Add(a.0, b.0))
    }

    /// Adds a `1×n` bias row to every row of an `m×n` node.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[bias.0].value;
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(bv.cols(), xv.cols(), "bias width must match");
        let mut value = xv.clone();
        for r in 0..value.rows() {
            for c in 0..value.cols() {
                let v = value.get(r, c) + bv.get(0, c);
                value.set(r, c, v);
            }
        }
        self.push(value, Op::AddBias(x.0, bias.0))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        for v in value.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.push(value, Op::Relu(a.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        for v in value.data_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        self.push(value, Op::Sigmoid(a.0))
    }

    /// Multiplies every element by a scalar constant.
    pub fn scale(&mut self, a: Var, k: f64) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        for v in value.data_mut() {
            *v *= k;
        }
        self.push(value, Op::Scale(a.0, k))
    }

    /// Adds a scalar constant to every element.
    pub fn add_scalar(&mut self, a: Var, k: f64) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        for v in value.data_mut() {
            *v += k;
        }
        self.push(value, Op::AddScalar(a.0))
    }

    /// Element-wise product with a constant vector (flattened, must match the
    /// node's element count).
    pub fn mul_const(&mut self, a: Var, constant: Rc<Vec<f64>>) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        assert_eq!(value.len(), constant.len(), "constant length must match");
        for (v, c) in value.data_mut().iter_mut().zip(constant.iter()) {
            *v *= c;
        }
        self.push(value, Op::MulConst(a.0, constant))
    }

    /// `y = M x` for a constant sparse matrix and a flattened node of length
    /// `M.cols()`; the result is a `1×M.rows()` row vector.
    pub fn sparse_matvec(&mut self, a: Var, matrix: Rc<SparseMatrix>) -> Var {
        let x = self.nodes[a.0].value.data();
        let y = matrix.matvec(x);
        let value = Tensor::row(&y);
        self.push(value, Op::SparseMatVec(a.0, matrix))
    }

    /// Normalizes each segment of a flattened node so it sums to 1
    /// (`r_p = x_p / Σ_{q ∈ segment} x_q`).  Inputs must be non-negative; an
    /// all-zero segment yields a uniform distribution over that segment.
    pub fn segment_normalize(&mut self, a: Var, segments: Rc<Vec<Range<usize>>>) -> Var {
        let x = self.nodes[a.0].value.data().to_vec();
        let mut out = x.clone();
        for seg in segments.iter() {
            let sum: f64 = x[seg.clone()].iter().sum();
            if sum > 0.0 {
                for i in seg.clone() {
                    out[i] = x[i] / sum;
                }
            } else {
                let n = seg.len().max(1);
                for i in seg.clone() {
                    out[i] = 1.0 / n as f64;
                }
            }
        }
        let value = Tensor::row(&out);
        self.push(value, Op::SegmentNormalize(a.0, segments))
    }

    /// Per-segment maximum of a flattened node; the result has one entry per
    /// segment.  Empty segments yield 0.
    pub fn segment_max(&mut self, a: Var, segments: Rc<Vec<Range<usize>>>) -> Var {
        let x = self.nodes[a.0].value.data();
        let out: Vec<f64> = segments
            .iter()
            .map(|seg| x[seg.clone()].iter().cloned().fold(0.0f64, f64::max))
            .collect();
        let value = Tensor::row(&out);
        self.push(value, Op::SegmentMax(a.0, segments))
    }

    /// Maximum element (a `1×1` result).
    pub fn max(&mut self, a: Var) -> Var {
        let m = self.nodes[a.0].value.data().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.push(Tensor::scalar(m), Op::Max(a.0))
    }

    /// Sum of all elements (a `1×1` result).
    pub fn sum(&mut self, a: Var) -> Var {
        let s: f64 = self.nodes[a.0].value.data().iter().sum();
        self.push(Tensor::scalar(s), Op::Sum(a.0))
    }

    /// Smooth maximum `T · ln Σ exp(x_i / T)` (a `1×1` result).
    ///
    /// Upper-bounds the true maximum and converges to it as the temperature
    /// `T → 0`.  Used by the iterative MLU solver, where a smooth surrogate of
    /// the max-link-utilization objective converges much faster than the
    /// sub-gradient of the exact maximum.
    pub fn logsumexp(&mut self, a: Var, temperature: f64) -> Var {
        assert!(temperature > 0.0, "temperature must be positive");
        let x = self.nodes[a.0].value.data();
        let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = x.iter().map(|v| ((v - m) / temperature).exp()).sum();
        let value = m + temperature * sum.ln();
        self.push(Tensor::scalar(value), Op::LogSumExp(a.0, temperature))
    }

    /// Dot product with a constant vector (a `1×1` result).
    pub fn dot_const(&mut self, a: Var, constant: Rc<Vec<f64>>) -> Var {
        let x = self.nodes[a.0].value.data();
        assert_eq!(x.len(), constant.len(), "constant length must match");
        let s: f64 = x.iter().zip(constant.iter()).map(|(a, b)| a * b).sum();
        self.push(Tensor::scalar(s), Op::DotConst(a.0, constant))
    }

    // ---- backward ---------------------------------------------------------

    /// Back-propagates from `loss` (which must be `1×1`), accumulating
    /// gradients into every node reachable from it.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "loss must be a scalar");
        for n in &mut self.nodes {
            n.grad.fill_zero();
        }
        self.nodes[loss.0].grad = Tensor::scalar(1.0);
        for i in (0..=loss.0).rev() {
            let op = self.nodes[i].op.clone();
            let grad = self.nodes[i].grad.clone();
            if grad.data().iter().all(|g| *g == 0.0) {
                continue;
            }
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let a_val = self.nodes[a].value.clone();
                    let b_val = self.nodes[b].value.clone();
                    let da = grad.matmul(&b_val.transpose());
                    let db = a_val.transpose().matmul(&grad);
                    self.nodes[a].grad.add_assign(&da);
                    self.nodes[b].grad.add_assign(&db);
                }
                Op::Add(a, b) => {
                    self.nodes[a].grad.add_assign(&grad);
                    self.nodes[b].grad.add_assign(&grad);
                }
                Op::AddBias(x, bias) => {
                    self.nodes[x].grad.add_assign(&grad);
                    let cols = grad.cols();
                    let mut bias_grad = Tensor::zeros(1, cols);
                    for r in 0..grad.rows() {
                        for c in 0..cols {
                            let v = bias_grad.get(0, c) + grad.get(r, c);
                            bias_grad.set(0, c, v);
                        }
                    }
                    self.nodes[bias].grad.add_assign(&bias_grad);
                }
                Op::Relu(a) => {
                    let mut da = grad.clone();
                    for (g, v) in da.data_mut().iter_mut().zip(self.nodes[a].value.data()) {
                        if *v <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::Sigmoid(a) => {
                    let out = self.nodes[i].value.clone();
                    let mut da = grad.clone();
                    for (g, y) in da.data_mut().iter_mut().zip(out.data()) {
                        *g *= y * (1.0 - y);
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::Scale(a, k) => {
                    self.nodes[a].grad.axpy(k, &grad);
                }
                Op::AddScalar(a) => {
                    self.nodes[a].grad.add_assign(&grad);
                }
                Op::MulConst(a, c) => {
                    let mut da = grad.clone();
                    for (g, k) in da.data_mut().iter_mut().zip(c.iter()) {
                        *g *= k;
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::SparseMatVec(a, m) => {
                    let mut da = vec![0.0; m.cols()];
                    m.add_transpose_matvec(grad.data(), &mut da);
                    let da = Tensor::from_vec(
                        self.nodes[a].value.rows(),
                        self.nodes[a].value.cols(),
                        da,
                    );
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::SegmentNormalize(a, segments) => {
                    let x = self.nodes[a].value.data().to_vec();
                    let mut da = vec![0.0; x.len()];
                    for seg in segments.iter() {
                        let sum: f64 = x[seg.clone()].iter().sum();
                        if sum <= 0.0 {
                            // Uniform output does not depend on the input.
                            continue;
                        }
                        let gdotx: f64 =
                            seg.clone().map(|i| grad.data()[i] * x[i]).sum::<f64>() / (sum * sum);
                        for i in seg.clone() {
                            da[i] += grad.data()[i] / sum - gdotx;
                        }
                    }
                    let da = Tensor::from_vec(
                        self.nodes[a].value.rows(),
                        self.nodes[a].value.cols(),
                        da,
                    );
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::SegmentMax(a, segments) => {
                    let x = self.nodes[a].value.data();
                    let mut da = vec![0.0; x.len()];
                    for (s, seg) in segments.iter().enumerate() {
                        if seg.is_empty() {
                            continue;
                        }
                        // Sub-gradient: route to the first argmax of the segment.
                        let mut best = seg.start;
                        for i in seg.clone() {
                            if x[i] > x[best] {
                                best = i;
                            }
                        }
                        if x[best] > 0.0 || grad.data()[s] != 0.0 {
                            da[best] += grad.data()[s];
                        }
                    }
                    let da = Tensor::from_vec(
                        self.nodes[a].value.rows(),
                        self.nodes[a].value.cols(),
                        da,
                    );
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::Max(a) => {
                    let x = self.nodes[a].value.data();
                    let mut best = 0usize;
                    for (j, v) in x.iter().enumerate() {
                        if *v > x[best] {
                            best = j;
                        }
                    }
                    let mut da = Tensor::zeros(self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    da.data_mut()[best] = grad.as_scalar();
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::Sum(a) => {
                    let g = grad.as_scalar();
                    let da = Tensor::full(self.nodes[a].value.rows(), self.nodes[a].value.cols(), g);
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::DotConst(a, c) => {
                    let g = grad.as_scalar();
                    let mut da = Tensor::zeros(self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    for (d, k) in da.data_mut().iter_mut().zip(c.iter()) {
                        *d = g * k;
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
                Op::LogSumExp(a, temperature) => {
                    let g = grad.as_scalar();
                    let x = self.nodes[a].value.data();
                    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let weights: Vec<f64> = x.iter().map(|v| ((v - m) / temperature).exp()).collect();
                    let total: f64 = weights.iter().sum();
                    let mut da = Tensor::zeros(self.nodes[a].value.rows(), self.nodes[a].value.cols());
                    for (d, w) in da.data_mut().iter_mut().zip(&weights) {
                        *d = g * w / total;
                    }
                    self.nodes[a].grad.add_assign(&da);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_matrix_matvec_and_transpose() {
        // M = [[1, 0, 2], [0, 3, 0]]
        let m = SparseMatrix::from_rows(2, 3, &[vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        let mut x = vec![0.0; 3];
        m.add_transpose_matvec(&[1.0, 2.0], &mut x);
        assert_eq!(x, vec![1.0, 6.0, 2.0]);
    }

    #[test]
    fn forward_values_are_correct() {
        let mut g = Graph::new();
        let w = g.parameter(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        g.seal();
        let x = g.input(Tensor::row(&[1.0, 1.0]));
        let y = g.matmul(x, w);
        assert_eq!(g.value(y).data(), &[4.0, 6.0]);
        let r = g.relu(y);
        assert_eq!(g.value(r).data(), &[4.0, 6.0]);
        let s = g.sum(r);
        assert_eq!(g.value(s).as_scalar(), 10.0);
        let m = g.max(y);
        assert_eq!(g.value(m).as_scalar(), 6.0);
        g.reset();
        assert_eq!(g.len(), 1, "reset keeps only persistent parameters");
    }

    #[test]
    fn backward_through_linear_layer() {
        // loss = sum(relu(x W + b)) with positive pre-activations:
        // dL/dW = x^T . 1, dL/db = 1, dL/dx = 1 . W^T.
        let mut g = Graph::new();
        let w = g.parameter(Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, 4.0]));
        let b = g.parameter(Tensor::row(&[10.0, 10.0]));
        g.seal();
        let x = g.input(Tensor::row(&[2.0, 5.0]));
        let xw = g.matmul(x, w);
        let z = g.add_bias(xw, b);
        let a = g.relu(z);
        let loss = g.sum(a);
        g.backward(loss);
        assert_eq!(g.grad(w).data(), &[2.0, 2.0, 5.0, 5.0]);
        assert_eq!(g.grad(b).data(), &[1.0, 1.0]);
        assert_eq!(g.grad(x).data(), &[-1.0, 7.0]);
    }

    #[test]
    fn segment_normalize_sums_to_one_and_handles_zero() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[2.0, 6.0, 0.0, 0.0, 5.0]));
        let segs = Rc::new(vec![0..2, 2..4, 4..5]);
        let r = g.segment_normalize(x, segs);
        let out = g.value(r).data().to_vec();
        assert!((out[0] - 0.25).abs() < 1e-12);
        assert!((out[1] - 0.75).abs() < 1e-12);
        assert!((out[2] - 0.5).abs() < 1e-12);
        assert!((out[3] - 0.5).abs() < 1e-12);
        assert!((out[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_and_segment_max_route_gradients_to_argmax() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[1.0, 5.0, 3.0, 4.0]));
        let segs = Rc::new(vec![0..2, 2..4]);
        let sm = g.segment_max(x, segs);
        assert_eq!(g.value(sm).data(), &[5.0, 4.0]);
        let total = g.sum(sm);
        g.backward(total);
        assert_eq!(g.grad(x).data(), &[0.0, 1.0, 0.0, 1.0]);

        g.reset();
        let x = g.input(Tensor::row(&[1.0, 5.0, 3.0]));
        let m = g.max(x);
        g.backward(m);
        assert_eq!(g.grad(x).data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn scalar_ops_and_dot() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[1.0, 2.0]));
        let s = g.scale(x, 3.0);
        assert_eq!(g.value(s).data(), &[3.0, 6.0]);
        let t = g.add_scalar(s, 1.0);
        assert_eq!(g.value(t).data(), &[4.0, 7.0]);
        let d = g.dot_const(t, Rc::new(vec![1.0, 2.0]));
        assert_eq!(g.value(d).as_scalar(), 18.0);
        g.backward(d);
        assert_eq!(g.grad(x).data(), &[3.0, 6.0]);
    }

    #[test]
    fn logsumexp_bounds_max_and_has_softmax_gradient() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[1.0, 3.0, 2.0]));
        let lse = g.logsumexp(x, 0.1);
        let value = g.value(lse).as_scalar();
        assert!(value >= 3.0, "logsumexp must upper-bound the max");
        assert!(value < 3.1, "with a low temperature it must be close to the max");
        g.backward(lse);
        let grads = g.grad(x).data().to_vec();
        assert!((grads.iter().sum::<f64>() - 1.0).abs() < 1e-9, "softmax weights sum to 1");
        assert!(grads[1] > 0.99, "the max coordinate dominates");
    }

    #[test]
    fn sigmoid_gradient_matches_formula() {
        let mut g = Graph::new();
        g.seal();
        let x = g.input(Tensor::row(&[0.0]));
        let y = g.sigmoid(x);
        let loss = g.sum(y);
        g.backward(loss);
        // sigma(0) = 0.5, derivative = 0.25.
        assert!((g.value(y).data()[0] - 0.5).abs() < 1e-12);
        assert!((g.grad(x).data()[0] - 0.25).abs() < 1e-12);
    }
}
