//! Drift detection and online retraining: the self-healing half of the
//! serving loop (DESIGN.md §9).
//!
//! PR 5's safety valve made degradation *terminal*: once the audit tripped,
//! the controller served warm LP re-solves forever, forfeiting the
//! 100–1000× model-vs-LP decision speedup after a single drift episode.
//! The recovery subsystem closes the loop with three deterministic pieces:
//!
//! 1. **[`CusumDetector`]** — a one-sided CUSUM on the relative
//!    predicted-vs-realized MLU error.  Transient bursts add little to the
//!    cumulative sum (the per-tick `slack` absorbs them and hysteresis rides
//!    them out); a sustained distribution shift accumulates past
//!    `threshold` and flags drift *before* the model-vs-LP audit would.
//! 2. **[`RecoveryManager`]** — owns a sliding window of observed demand
//!    columns (the same columnar shape the controller's history buffer
//!    uses) and, while the controller is degraded, periodically trains a
//!    *challenger* model on it via [`figret::FigretModel::train_flat`].
//!    Retraining is keyed to the tick counter, never wall clock, so the
//!    whole ladder is bit-deterministic per seed at any thread count.
//! 3. **[`crate::ShadowModel`]** — the challenger serves in shadow mode:
//!    audited tick-by-tick against the warm LP reference and promoted only
//!    after `promotion_patience` consecutive wins (see
//!    [`crate::ServeController`]).
//!
//! The degradation ladder is plan → graph model → warm LP → (retrain,
//! shadow-audit, promote) → graph model, with demotion and re-entry on
//! regression.

use std::collections::VecDeque;
use std::time::Instant;

use figret::{FigretConfig, FigretModel};
use figret_te::PathSet;
use figret_traffic::FlatWindowDataset;

use crate::shadow::ShadowModel;

/// Parameters of the one-sided CUSUM drift detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CusumConfig {
    /// Per-tick allowance subtracted from the relative forecast error
    /// before accumulation: errors below `slack` are treated as in-band
    /// noise and drain the statistic back toward zero.
    pub slack: f64,
    /// Cumulative excess error at which the detector fires.
    pub threshold: f64,
}

impl Default for CusumConfig {
    fn default() -> Self {
        // ~6 consecutive ticks of 16% relative error (or fewer, larger
        // excursions) trip the detector; isolated bursts drain away.
        CusumConfig { slack: 0.08, threshold: 0.5 }
    }
}

/// One-sided CUSUM statistic: `s ← max(0, s + (error − slack))`, firing
/// when `s` exceeds the configured threshold.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CusumDetector {
    sum: f64,
}

impl CusumDetector {
    /// Feeds one relative forecast error; returns `true` when the
    /// accumulated excess crosses the threshold (the caller decides whether
    /// to reset or keep accumulating).
    pub fn observe(&mut self, config: &CusumConfig, error: f64) -> bool {
        self.sum = (self.sum + (error - config.slack)).max(0.0);
        self.sum > config.threshold
    }

    /// Resets the statistic to zero (after acting on a trip).
    pub fn reset(&mut self) {
        self.sum = 0.0;
    }

    /// The current cumulative excess error.
    pub fn level(&self) -> f64 {
        self.sum
    }
}

/// Configuration of the degradation-and-recovery state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Observed demand columns kept for retraining (the challenger's
    /// training set is the most recent `retrain_window` columns).
    pub retrain_window: usize,
    /// While degraded, (re)train a challenger every `retrain_every` ticks
    /// (keyed to the controller's tick counter, so the schedule is
    /// deterministic).  Must be ≥ 1.
    pub retrain_every: usize,
    /// Consecutive shadow-audit wins required before a challenger is
    /// promoted back to live serving.
    pub promotion_patience: usize,
    /// A shadow audit counts as a win when the challenger's predicted MLU
    /// is at most `promotion_margin ×` the warm LP candidate's.
    pub promotion_margin: f64,
    /// Epochs of mini-batch SGD per retraining round (the challenger's
    /// `FigretConfig::epochs` override).
    pub retrain_epochs: usize,
    /// Drift detector parameters.
    pub detector: CusumConfig,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            retrain_window: 32,
            retrain_every: 8,
            promotion_patience: 3,
            promotion_margin: 1.05,
            retrain_epochs: 6,
            detector: CusumConfig::default(),
        }
    }
}

/// Deterministic counters plus measured retraining cost over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Challenger training rounds completed.
    pub retrains: usize,
    /// Wall-clock seconds spent retraining (a measurement, like decision
    /// latencies — excluded from determinism checks).
    pub retrain_seconds: f64,
    /// Training samples consumed across all rounds.
    pub retrain_samples: usize,
    /// Challengers promoted to live serving.
    pub promotions: usize,
    /// Live models demoted back to the LP (regressions after a promotion).
    pub demotions: usize,
    /// CUSUM detector trips observed.
    pub detector_trips: usize,
}

/// The controller-side recovery state: the sliding training window, the
/// drift detector, and the current challenger (if any).  Owned by a
/// [`crate::ServeController`] when recovery is enabled; see the module docs
/// for the state machine.
#[derive(Debug)]
pub struct RecoveryManager {
    config: RecoveryConfig,
    /// Most recent observed demand columns, oldest first, capped at
    /// `retrain_window`.
    buffer: VecDeque<Vec<f64>>,
    detector: CusumDetector,
    /// Set when the detector fires; consumed by the controller's next
    /// decision via [`RecoveryManager::take_drift_flag`].
    drift_flagged: bool,
    shadow: Option<ShadowModel>,
    /// Challenger generations spawned so far (seeds each retraining round
    /// distinctly and deterministically).
    generation: u64,
    stats: RecoveryStats,
}

impl RecoveryManager {
    /// A recovery manager with an empty training window.
    pub fn new(config: RecoveryConfig) -> RecoveryManager {
        assert!(config.retrain_every >= 1, "the retrain cadence must be at least one tick");
        assert!(config.promotion_patience >= 1, "promotion requires at least one audit win");
        RecoveryManager {
            config,
            buffer: VecDeque::with_capacity(config.retrain_window + 1),
            detector: CusumDetector::default(),
            drift_flagged: false,
            shadow: None,
            generation: 0,
            stats: RecoveryStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Appends one observed demand column to the sliding training window.
    pub fn ingest(&mut self, demand: &[f64]) {
        if self.buffer.len() >= self.config.retrain_window {
            let mut recycled = self.buffer.pop_front().expect("capacity checked above");
            recycled.clear();
            recycled.extend_from_slice(demand);
            self.buffer.push_back(recycled);
        } else {
            self.buffer.push_back(demand.to_vec());
        }
    }

    /// Feeds one relative forecast error to the drift detector; latches the
    /// drift flag (and counts the trip) when it fires, then resets the
    /// statistic so the next episode accumulates from zero.
    pub fn observe_error(&mut self, error: f64) {
        if self.detector.observe(&self.config.detector, error) {
            self.detector.reset();
            self.stats.detector_trips += 1;
            self.drift_flagged = true;
        }
    }

    /// The drift detector's current CUSUM statistic (0 right after a trip
    /// or reset) — exported as a telemetry gauge.
    pub fn detector_level(&self) -> f64 {
        self.detector.level()
    }

    /// Consumes the latched drift flag.
    pub fn take_drift_flag(&mut self) -> bool {
        std::mem::take(&mut self.drift_flagged)
    }

    /// Resets the drift detector (on a state transition, so stale
    /// accumulation cannot carry across regimes).
    pub fn reset_detector(&mut self) {
        self.detector.reset();
        self.drift_flagged = false;
    }

    /// Whether tick `tick` is a scheduled retraining tick.  Keyed to the
    /// deterministic tick counter — never wall clock.
    pub fn should_retrain(&self, tick: usize) -> bool {
        tick.is_multiple_of(self.config.retrain_every)
    }

    /// Trains a fresh challenger on the buffered window and installs it as
    /// the shadow model.  Returns `false` without training when the window
    /// has no full (history, target) sample yet, or when the current
    /// challenger is mid-streak (wins > 0): replacing a winning challenger
    /// would restart its promotion count and could starve promotion forever
    /// when `retrain_every < promotion_patience`.
    ///
    /// The challenger's seed mixes the incumbent seed with the generation
    /// counter, so every round trains a distinct but reproducible model.
    pub fn retrain(&mut self, paths: &PathSet, incumbent: &FigretConfig) -> bool {
        if self.shadow.as_ref().is_some_and(|s| s.wins() > 0) {
            return false;
        }
        let columns: Vec<Vec<f64>> = self.buffer.iter().cloned().collect();
        let dataset = FlatWindowDataset::from_columns(incumbent.history_window, columns);
        if dataset.is_empty() {
            return false;
        }
        let start = Instant::now();
        self.generation += 1;
        let config = FigretConfig {
            epochs: self.config.retrain_epochs,
            seed: incumbent.seed
                ^ 0xc4a1_1e4e
                ^ self.generation.wrapping_mul(0x9e37_79b9_97f4_a7c5),
            ..incumbent.clone()
        };
        let variances = dataset.per_slot_variance();
        let mut challenger = FigretModel::new(paths, &variances, config);
        let report = challenger.train_flat(&dataset);
        self.stats.retrains += 1;
        self.stats.retrain_samples += report.samples_per_epoch * report.epochs.len();
        self.stats.retrain_seconds += start.elapsed().as_secs_f64();
        self.shadow = Some(ShadowModel::new(challenger, self.generation));
        true
    }

    /// The current challenger, if any.
    pub fn shadow(&self) -> Option<&ShadowModel> {
        self.shadow.as_ref()
    }

    /// Mutable access to the current challenger (shadow audits mutate its
    /// win streak and run its forward pass).
    pub fn shadow_mut(&mut self) -> Option<&mut ShadowModel> {
        self.shadow.as_mut()
    }

    /// Removes and returns the challenger (for promotion).
    pub fn take_shadow(&mut self) -> Option<ShadowModel> {
        self.shadow.take()
    }

    /// Records a promotion.
    pub fn note_promotion(&mut self) {
        self.stats.promotions += 1;
    }

    /// Records a demotion.
    pub fn note_demotion(&mut self) {
        self.stats.demotions += 1;
    }

    /// Columns currently buffered for retraining.
    pub fn buffered_columns(&self) -> usize {
        self.buffer.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_topology::{Topology, TopologySpec};

    #[test]
    fn cusum_rides_out_bursts_but_fires_on_sustained_shift() {
        let config = CusumConfig::default();
        let mut d = CusumDetector::default();
        // A single large burst followed by quiet ticks drains away.
        assert!(!d.observe(&config, 0.4));
        for _ in 0..8 {
            assert!(!d.observe(&config, 0.01));
        }
        assert_eq!(d.level(), 0.0);
        // A sustained 18% error accumulates 0.1 excess per tick and fires
        // on the 6th.
        let mut fired_at = None;
        for t in 0..10 {
            if d.observe(&config, 0.18) {
                fired_at = Some(t);
                break;
            }
        }
        assert_eq!(fired_at, Some(5));
        d.reset();
        assert_eq!(d.level(), 0.0);
    }

    #[test]
    fn manager_latches_trips_and_schedules_deterministically() {
        let mut m = RecoveryManager::new(RecoveryConfig {
            retrain_every: 4,
            detector: CusumConfig { slack: 0.0, threshold: 0.1 },
            ..Default::default()
        });
        assert!(!m.take_drift_flag());
        m.observe_error(0.2);
        assert_eq!(m.stats().detector_trips, 1);
        assert!(m.take_drift_flag(), "the trip must latch until consumed");
        assert!(!m.take_drift_flag(), "take consumes the flag");
        assert!(m.should_retrain(0));
        assert!(!m.should_retrain(3));
        assert!(m.should_retrain(8));
    }

    #[test]
    fn buffer_is_capped_at_the_retrain_window() {
        let mut m =
            RecoveryManager::new(RecoveryConfig { retrain_window: 3, ..Default::default() });
        for i in 0..5 {
            m.ingest(&[i as f64]);
        }
        assert_eq!(m.buffered_columns(), 3);
    }

    #[test]
    fn retrain_needs_a_full_sample_and_trains_distinct_generations() {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let incumbent =
            figret::FigretConfig { history_window: 2, ..figret::FigretConfig::fast_test() };
        let mut m =
            RecoveryManager::new(RecoveryConfig { retrain_epochs: 1, ..Default::default() });
        // Too few columns: 2 columns with H=2 yields zero samples.
        m.ingest(&vec![1.0; ps.num_pairs()]);
        m.ingest(&vec![2.0; ps.num_pairs()]);
        assert!(!m.retrain(&ps, &incumbent));
        assert!(m.shadow().is_none());
        m.ingest(&vec![3.0; ps.num_pairs()]);
        assert!(m.retrain(&ps, &incumbent));
        let first_gen = m.shadow().unwrap().generation();
        assert_eq!(first_gen, 1);
        assert_eq!(m.stats().retrains, 1);
        assert!(m.stats().retrain_seconds > 0.0);
        // A challenger with no wins is replaced by the next round...
        assert!(m.retrain(&ps, &incumbent));
        assert_eq!(m.shadow().unwrap().generation(), 2);
        // ...but a winning challenger is left to finish its streak.
        m.shadow_mut().unwrap().record_audit(true);
        assert!(!m.retrain(&ps, &incumbent));
        assert_eq!(m.shadow().unwrap().generation(), 2);
    }
}
