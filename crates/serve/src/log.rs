//! The event/decision log of a serving run.
//!
//! Every controller tick appends one [`TickRecord`].  Records carry only
//! deterministic quantities (actions, MLUs, churn) and derive `PartialEq`,
//! so two runs with the same seed and scenario can be compared field by
//! field — the determinism contract of DESIGN.md §4 extended to serving.
//! Wall-clock decision latencies are collected *next to* the records (they
//! are real measurements, not reproducible values) and summarized as
//! percentiles.

use figret_traffic::{percentile, StreamAnnotation};

/// Which engine produced the candidate configuration of a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// Learned inference (one forward pass of the FIGRET model).
    Model,
    /// Warm-started LP re-solve through the min-MLU template.
    LpWarm,
}

/// Why a decision tick did not deploy its candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldReason {
    /// The predicted regret of keeping the deployed configuration was below
    /// the hysteresis threshold.
    BelowHysteresis,
    /// The sliding-window update budget was exhausted.
    BudgetExhausted,
}

/// What the controller did at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Not enough history yet to form a candidate; the initial
    /// configuration stays deployed.
    Warmup,
    /// A candidate was computed but not deployed.
    Hold(HoldReason),
    /// The candidate was deployed.
    Update,
}

/// A state transition of the degradation-and-recovery ladder
/// (DESIGN.md §9).  Transitions are deterministic events: they are folded
/// into both digests, so a run that degrades, retrains or promotes at a
/// different tick produces a different digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The compiled f32 inference plan was retired; model decisions fall
    /// back to the f64 reference graph (first rung of the ladder).
    PlanRetired,
    /// The model failed `patience` consecutive audits; the controller now
    /// serves warm LP re-solves.
    Degraded,
    /// A retraining round produced a fresh challenger (now in shadow mode).
    RetrainStarted,
    /// A challenger won `promotion_patience` consecutive shadow audits and
    /// became the live model.
    Promoted,
    /// A previously promoted model regressed and the controller returned
    /// to the LP.
    Demoted,
}

/// One recovery-ladder transition, stamped with the decision tick it
/// happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Tick index of the decision that caused the transition.
    pub tick: usize,
    /// What happened.
    pub transition: Transition,
}

/// One tick of the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord {
    /// Tick index (0-based, counting decision ticks).
    pub tick: usize,
    /// What the controller did.
    pub action: Action,
    /// Engine that produced the candidate (`None` during warmup).
    pub source: Option<DecisionSource>,
    /// Predicted MLU of the previously deployed configuration on the
    /// forecast demand (`None` during warmup).
    pub predicted_mlu_deployed: Option<f64>,
    /// Predicted MLU of the candidate configuration (`None` during warmup).
    pub predicted_mlu_candidate: Option<f64>,
    /// Realized MLU of the configuration deployed *after* the decision,
    /// evaluated on the demand that actually arrived.
    pub realized_mlu: f64,
    /// Split-ratio churn paid by this tick (0.0 unless the action was
    /// [`Action::Update`]).
    pub churn: f64,
}

/// The full log of a serving run: deterministic records plus measured
/// per-decision latencies.
#[derive(Debug, Clone, Default)]
pub struct ServeLog {
    /// One record per tick, in tick order.
    pub records: Vec<TickRecord>,
    /// Wall-clock seconds spent in the decision phase of each tick
    /// (parallel array to `records`; excluded from determinism checks).
    pub latencies_seconds: Vec<f64>,
    /// Recovery-ladder transitions in tick order (typically sparse).
    /// Deterministic: folded into both digests.
    pub transitions: Vec<TransitionRecord>,
    /// Active stream episodes (storms, flash crowds, step shifts) per tick,
    /// as reported by the demand generator.  Pure scenario description —
    /// what the *environment* did, not what the controller decided — so
    /// annotations are excluded from the digests: a run must digest
    /// identically whether or not its driver recorded them.
    pub annotations: Vec<(usize, StreamAnnotation)>,
}

impl ServeLog {
    /// An empty log.
    pub fn new() -> ServeLog {
        ServeLog::default()
    }

    /// Appends one tick.
    pub fn push(&mut self, record: TickRecord, latency_seconds: f64) {
        self.records.push(record);
        self.latencies_seconds.push(latency_seconds);
    }

    /// Appends one controller tick outcome: the record, its decision
    /// latency, and any recovery transitions the tick produced (stamped
    /// with the record's tick index).
    pub fn record_outcome(&mut self, outcome: &crate::controller::StepOutcome) {
        let tick = outcome.record.tick;
        for &transition in &outcome.transitions {
            self.transitions.push(TransitionRecord { tick, transition });
        }
        self.push(outcome.record.clone(), outcome.decision_seconds);
    }

    /// Attaches a stream annotation to a tick.  Quiet annotations (no
    /// active episode) are dropped, so the vector stays proportional to
    /// the scenario's event count rather than its length.
    pub fn annotate(&mut self, tick: usize, annotation: StreamAnnotation) {
        if !annotation.is_quiet() {
            self.annotations.push((tick, annotation));
        }
    }

    /// Number of logged transitions of a given kind.
    pub fn transition_count(&self, transition: Transition) -> usize {
        self.transitions.iter().filter(|t| t.transition == transition).count()
    }

    /// Number of ticks logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of deployed updates.
    pub fn update_count(&self) -> usize {
        self.records.iter().filter(|r| r.action == Action::Update).count()
    }

    /// Number of holds for a specific reason.
    pub fn hold_count(&self, reason: HoldReason) -> usize {
        self.records.iter().filter(|r| r.action == Action::Hold(reason)).count()
    }

    /// Total split-ratio churn paid over the run.
    pub fn total_churn(&self) -> f64 {
        self.records.iter().map(|r| r.churn).sum()
    }

    /// Realized MLU series in tick order.
    pub fn realized_mlus(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.realized_mlu).collect()
    }

    /// Decision-latency percentile (`q ∈ [0, 1]`); 0.0 for an empty log.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        if self.latencies_seconds.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_seconds.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        percentile(&sorted, q)
    }

    /// The first tick at which the controller served an LP candidate after
    /// previously serving model candidates (the fallback transition), if any.
    pub fn fallback_tick(&self) -> Option<usize> {
        let mut seen_model = false;
        for r in &self.records {
            match r.source {
                Some(DecisionSource::Model) => seen_model = true,
                Some(DecisionSource::LpWarm) if seen_model => return Some(r.tick),
                _ => {}
            }
        }
        None
    }

    /// The tick of the first [`Transition::Promoted`] at or after the first
    /// degradation ([`Transition::Degraded`] or [`Transition::Demoted`]) —
    /// i.e. when the controller *recovered* learned serving, if it ever
    /// did.  `None` when the run never degraded or never recovered.
    pub fn recovery_tick(&self) -> Option<usize> {
        let degraded_at = self
            .transitions
            .iter()
            .find(|t| matches!(t.transition, Transition::Degraded | Transition::Demoted))?
            .tick;
        self.transitions
            .iter()
            .find(|t| t.transition == Transition::Promoted && t.tick >= degraded_at)
            .map(|t| t.tick)
    }

    /// FNV-1a digest of the deterministic record fields.  Two runs of the
    /// same (seed, scenario, policy) must produce identical digests on any
    /// machine and thread count; CI compares digests across
    /// `RAYON_NUM_THREADS` settings.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for r in &self.records {
            eat(r.tick as u64);
            eat(Self::action_code(r.action));
            eat(Self::source_code(r.source));
            eat(r.predicted_mlu_deployed.map(f64::to_bits).unwrap_or(0));
            eat(r.predicted_mlu_candidate.map(f64::to_bits).unwrap_or(0));
            eat(r.realized_mlu.to_bits());
            eat(r.churn.to_bits());
        }
        for t in &self.transitions {
            eat(t.tick as u64);
            eat(Self::transition_code(t.transition));
        }
        h
    }

    /// FNV-1a digest of the controller's *behavior* only: per tick, the
    /// (tick, action, source) triple — which candidates were deployed, held
    /// or audited into fallback, but no floating-point values.
    ///
    /// Policy decisions compare f64 MLU evaluations of whole configurations,
    /// so they are robust to the f32 inference plan's sub-1e-4 output
    /// perturbations: a plan run and a graph run of the same scenario must
    /// produce *identical* decision digests even though their full
    /// [`ServeLog::digest`]s differ in MLU low bits.  CI diffs this digest
    /// between the two inference paths.
    pub fn decision_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for r in &self.records {
            eat(r.tick as u64);
            eat(Self::action_code(r.action));
            eat(Self::source_code(r.source));
        }
        for t in &self.transitions {
            eat(t.tick as u64);
            eat(Self::transition_code(t.transition));
        }
        h
    }

    fn transition_code(transition: Transition) -> u64 {
        match transition {
            Transition::PlanRetired => 1,
            Transition::Degraded => 2,
            Transition::RetrainStarted => 3,
            Transition::Promoted => 4,
            Transition::Demoted => 5,
        }
    }

    fn action_code(action: Action) -> u64 {
        match action {
            Action::Warmup => 0,
            Action::Hold(HoldReason::BelowHysteresis) => 1,
            Action::Hold(HoldReason::BudgetExhausted) => 2,
            Action::Update => 3,
        }
    }

    fn source_code(source: Option<DecisionSource>) -> u64 {
        match source {
            None => 0,
            Some(DecisionSource::Model) => 1,
            Some(DecisionSource::LpWarm) => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tick: usize, action: Action, churn: f64) -> TickRecord {
        TickRecord {
            tick,
            action,
            source: Some(DecisionSource::LpWarm),
            predicted_mlu_deployed: Some(0.5),
            predicted_mlu_candidate: Some(0.4),
            realized_mlu: 0.45,
            churn,
        }
    }

    #[test]
    fn counters_and_churn() {
        let mut log = ServeLog::new();
        log.push(record(0, Action::Update, 1.5), 1e-4);
        log.push(record(1, Action::Hold(HoldReason::BelowHysteresis), 0.0), 2e-4);
        log.push(record(2, Action::Hold(HoldReason::BudgetExhausted), 0.0), 3e-4);
        log.push(record(3, Action::Update, 0.5), 4e-4);
        assert_eq!(log.len(), 4);
        assert_eq!(log.update_count(), 2);
        assert_eq!(log.hold_count(HoldReason::BudgetExhausted), 1);
        assert!((log.total_churn() - 2.0).abs() < 1e-12);
        assert_eq!(log.realized_mlus().len(), 4);
        assert!(log.latency_percentile(0.5) >= 1e-4);
        assert!(log.latency_percentile(0.99) <= 4e-4 + 1e-12);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = ServeLog::new();
        a.push(record(0, Action::Update, 1.0), 0.1);
        let mut b = ServeLog::new();
        b.push(record(0, Action::Update, 1.0), 0.9); // latency differs: same digest
        assert_eq!(a.digest(), b.digest());
        let mut c = ServeLog::new();
        c.push(record(0, Action::Update, 1.0 + 1e-15), 0.1);
        assert_ne!(a.digest(), c.digest());
        assert!(ServeLog::new().is_empty());
    }

    #[test]
    fn decision_digest_ignores_floats_but_tracks_actions() {
        let mut a = ServeLog::new();
        a.push(record(0, Action::Update, 1.0), 0.1);
        // Same action/source, different MLU/churn values: same decision
        // digest, different full digest.
        let mut b = ServeLog::new();
        let mut r = record(0, Action::Update, 2.0);
        r.realized_mlu = 0.9;
        b.push(r, 0.1);
        assert_eq!(a.decision_digest(), b.decision_digest());
        assert_ne!(a.digest(), b.digest());
        // A flipped decision changes the decision digest.
        let mut c = ServeLog::new();
        c.push(record(0, Action::Hold(HoldReason::BelowHysteresis), 0.0), 0.1);
        assert_ne!(a.decision_digest(), c.decision_digest());
    }

    #[test]
    fn transitions_change_both_digests_and_locate_recovery() {
        let mut a = ServeLog::new();
        a.push(record(0, Action::Update, 1.0), 0.1);
        let mut b = a.clone();
        assert_eq!(a.recovery_tick(), None);
        b.transitions.push(TransitionRecord { tick: 0, transition: Transition::Degraded });
        b.transitions.push(TransitionRecord { tick: 2, transition: Transition::RetrainStarted });
        b.transitions.push(TransitionRecord { tick: 5, transition: Transition::Promoted });
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.decision_digest(), b.decision_digest());
        assert_eq!(b.transition_count(Transition::RetrainStarted), 1);
        assert_eq!(b.recovery_tick(), Some(5));
        // A promotion *before* any degradation is not a recovery.
        let mut c = ServeLog::new();
        c.transitions.push(TransitionRecord { tick: 1, transition: Transition::Promoted });
        assert_eq!(c.recovery_tick(), None);
        // Demotion re-arms: the next promotion at/after it counts.
        c.transitions.push(TransitionRecord { tick: 3, transition: Transition::Demoted });
        assert_eq!(c.recovery_tick(), None);
        c.transitions.push(TransitionRecord { tick: 8, transition: Transition::Promoted });
        assert_eq!(c.recovery_tick(), Some(8));
    }

    #[test]
    fn annotations_skip_quiet_ticks_and_leave_digests_alone() {
        let mut log = ServeLog::new();
        log.push(record(0, Action::Update, 1.0), 0.1);
        let before = log.digest();
        log.annotate(0, StreamAnnotation::default());
        assert!(log.annotations.is_empty(), "quiet annotations are dropped");
        log.annotate(1, StreamAnnotation { storm_victim: Some(3), ..Default::default() });
        assert_eq!(log.annotations.len(), 1);
        assert_eq!(log.digest(), before, "annotations are scenario description, not behavior");
    }

    #[test]
    fn fallback_tick_finds_the_transition() {
        let mut log = ServeLog::new();
        let mut m = record(0, Action::Update, 0.0);
        m.source = Some(DecisionSource::Model);
        log.push(m.clone(), 0.0);
        assert_eq!(log.fallback_tick(), None);
        let mut lp = record(1, Action::Update, 0.0);
        lp.source = Some(DecisionSource::LpWarm);
        log.push(lp, 0.0);
        assert_eq!(log.fallback_tick(), Some(1));
    }
}
