//! The event/decision log of a serving run.
//!
//! Every controller tick appends one [`TickRecord`].  Records carry only
//! deterministic quantities (actions, MLUs, churn) and derive `PartialEq`,
//! so two runs with the same seed and scenario can be compared field by
//! field — the determinism contract of DESIGN.md §4 extended to serving.
//! Wall-clock decision latencies are collected *next to* the records (they
//! are real measurements, not reproducible values) and summarized as
//! percentiles.

use figret_traffic::percentile;

/// Which engine produced the candidate configuration of a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// Learned inference (one forward pass of the FIGRET model).
    Model,
    /// Warm-started LP re-solve through the min-MLU template.
    LpWarm,
}

/// Why a decision tick did not deploy its candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldReason {
    /// The predicted regret of keeping the deployed configuration was below
    /// the hysteresis threshold.
    BelowHysteresis,
    /// The sliding-window update budget was exhausted.
    BudgetExhausted,
}

/// What the controller did at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Not enough history yet to form a candidate; the initial
    /// configuration stays deployed.
    Warmup,
    /// A candidate was computed but not deployed.
    Hold(HoldReason),
    /// The candidate was deployed.
    Update,
}

/// One tick of the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord {
    /// Tick index (0-based, counting decision ticks).
    pub tick: usize,
    /// What the controller did.
    pub action: Action,
    /// Engine that produced the candidate (`None` during warmup).
    pub source: Option<DecisionSource>,
    /// Predicted MLU of the previously deployed configuration on the
    /// forecast demand (`None` during warmup).
    pub predicted_mlu_deployed: Option<f64>,
    /// Predicted MLU of the candidate configuration (`None` during warmup).
    pub predicted_mlu_candidate: Option<f64>,
    /// Realized MLU of the configuration deployed *after* the decision,
    /// evaluated on the demand that actually arrived.
    pub realized_mlu: f64,
    /// Split-ratio churn paid by this tick (0.0 unless the action was
    /// [`Action::Update`]).
    pub churn: f64,
}

/// The full log of a serving run: deterministic records plus measured
/// per-decision latencies.
#[derive(Debug, Clone, Default)]
pub struct ServeLog {
    /// One record per tick, in tick order.
    pub records: Vec<TickRecord>,
    /// Wall-clock seconds spent in the decision phase of each tick
    /// (parallel array to `records`; excluded from determinism checks).
    pub latencies_seconds: Vec<f64>,
}

impl ServeLog {
    /// An empty log.
    pub fn new() -> ServeLog {
        ServeLog::default()
    }

    /// Appends one tick.
    pub fn push(&mut self, record: TickRecord, latency_seconds: f64) {
        self.records.push(record);
        self.latencies_seconds.push(latency_seconds);
    }

    /// Number of ticks logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of deployed updates.
    pub fn update_count(&self) -> usize {
        self.records.iter().filter(|r| r.action == Action::Update).count()
    }

    /// Number of holds for a specific reason.
    pub fn hold_count(&self, reason: HoldReason) -> usize {
        self.records.iter().filter(|r| r.action == Action::Hold(reason)).count()
    }

    /// Total split-ratio churn paid over the run.
    pub fn total_churn(&self) -> f64 {
        self.records.iter().map(|r| r.churn).sum()
    }

    /// Realized MLU series in tick order.
    pub fn realized_mlus(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.realized_mlu).collect()
    }

    /// Decision-latency percentile (`q ∈ [0, 1]`); 0.0 for an empty log.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        if self.latencies_seconds.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_seconds.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        percentile(&sorted, q)
    }

    /// The first tick at which the controller served an LP candidate after
    /// previously serving model candidates (the fallback transition), if any.
    pub fn fallback_tick(&self) -> Option<usize> {
        let mut seen_model = false;
        for r in &self.records {
            match r.source {
                Some(DecisionSource::Model) => seen_model = true,
                Some(DecisionSource::LpWarm) if seen_model => return Some(r.tick),
                _ => {}
            }
        }
        None
    }

    /// FNV-1a digest of the deterministic record fields.  Two runs of the
    /// same (seed, scenario, policy) must produce identical digests on any
    /// machine and thread count; CI compares digests across
    /// `RAYON_NUM_THREADS` settings.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for r in &self.records {
            eat(r.tick as u64);
            eat(Self::action_code(r.action));
            eat(Self::source_code(r.source));
            eat(r.predicted_mlu_deployed.map(f64::to_bits).unwrap_or(0));
            eat(r.predicted_mlu_candidate.map(f64::to_bits).unwrap_or(0));
            eat(r.realized_mlu.to_bits());
            eat(r.churn.to_bits());
        }
        h
    }

    /// FNV-1a digest of the controller's *behavior* only: per tick, the
    /// (tick, action, source) triple — which candidates were deployed, held
    /// or audited into fallback, but no floating-point values.
    ///
    /// Policy decisions compare f64 MLU evaluations of whole configurations,
    /// so they are robust to the f32 inference plan's sub-1e-4 output
    /// perturbations: a plan run and a graph run of the same scenario must
    /// produce *identical* decision digests even though their full
    /// [`ServeLog::digest`]s differ in MLU low bits.  CI diffs this digest
    /// between the two inference paths.
    pub fn decision_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for r in &self.records {
            eat(r.tick as u64);
            eat(Self::action_code(r.action));
            eat(Self::source_code(r.source));
        }
        h
    }

    fn action_code(action: Action) -> u64 {
        match action {
            Action::Warmup => 0,
            Action::Hold(HoldReason::BelowHysteresis) => 1,
            Action::Hold(HoldReason::BudgetExhausted) => 2,
            Action::Update => 3,
        }
    }

    fn source_code(source: Option<DecisionSource>) -> u64 {
        match source {
            None => 0,
            Some(DecisionSource::Model) => 1,
            Some(DecisionSource::LpWarm) => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tick: usize, action: Action, churn: f64) -> TickRecord {
        TickRecord {
            tick,
            action,
            source: Some(DecisionSource::LpWarm),
            predicted_mlu_deployed: Some(0.5),
            predicted_mlu_candidate: Some(0.4),
            realized_mlu: 0.45,
            churn,
        }
    }

    #[test]
    fn counters_and_churn() {
        let mut log = ServeLog::new();
        log.push(record(0, Action::Update, 1.5), 1e-4);
        log.push(record(1, Action::Hold(HoldReason::BelowHysteresis), 0.0), 2e-4);
        log.push(record(2, Action::Hold(HoldReason::BudgetExhausted), 0.0), 3e-4);
        log.push(record(3, Action::Update, 0.5), 4e-4);
        assert_eq!(log.len(), 4);
        assert_eq!(log.update_count(), 2);
        assert_eq!(log.hold_count(HoldReason::BudgetExhausted), 1);
        assert!((log.total_churn() - 2.0).abs() < 1e-12);
        assert_eq!(log.realized_mlus().len(), 4);
        assert!(log.latency_percentile(0.5) >= 1e-4);
        assert!(log.latency_percentile(0.99) <= 4e-4 + 1e-12);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = ServeLog::new();
        a.push(record(0, Action::Update, 1.0), 0.1);
        let mut b = ServeLog::new();
        b.push(record(0, Action::Update, 1.0), 0.9); // latency differs: same digest
        assert_eq!(a.digest(), b.digest());
        let mut c = ServeLog::new();
        c.push(record(0, Action::Update, 1.0 + 1e-15), 0.1);
        assert_ne!(a.digest(), c.digest());
        assert!(ServeLog::new().is_empty());
    }

    #[test]
    fn decision_digest_ignores_floats_but_tracks_actions() {
        let mut a = ServeLog::new();
        a.push(record(0, Action::Update, 1.0), 0.1);
        // Same action/source, different MLU/churn values: same decision
        // digest, different full digest.
        let mut b = ServeLog::new();
        let mut r = record(0, Action::Update, 2.0);
        r.realized_mlu = 0.9;
        b.push(r, 0.1);
        assert_eq!(a.decision_digest(), b.decision_digest());
        assert_ne!(a.digest(), b.digest());
        // A flipped decision changes the decision digest.
        let mut c = ServeLog::new();
        c.push(record(0, Action::Hold(HoldReason::BelowHysteresis), 0.0), 0.1);
        assert_ne!(a.decision_digest(), c.decision_digest());
    }

    #[test]
    fn fallback_tick_finds_the_transition() {
        let mut log = ServeLog::new();
        let mut m = record(0, Action::Update, 0.0);
        m.source = Some(DecisionSource::Model);
        log.push(m.clone(), 0.0);
        assert_eq!(log.fallback_tick(), None);
        let mut lp = record(1, Action::Update, 0.0);
        lp.source = Some(DecisionSource::LpWarm);
        log.push(lp, 0.0);
        assert_eq!(log.fallback_tick(), Some(1));
    }
}
