//! The online TE controller: the event-driven serving loop.
//!
//! A [`ServeController`] owns the deployed configuration and advances one
//! tick per demand arrival ([`ServeController::step`]):
//!
//! 1. **Decide** (timed; this is the serving-latency hot path): forecast the
//!    next demand with the online predictor, compute a candidate
//!    configuration — a learned forward pass when a model is installed, a
//!    warm-started LP re-solve through [`MluTemplate`] otherwise — and run
//!    the [`ReconfigPolicy`] gates (hysteresis on predicted-MLU regret, then
//!    the sliding-window update budget).  Deploying pays the split-ratio
//!    churn ([`figret_te::split_ratio_churn`]).
//! 2. **Ingest**: the realized demand is fed to the predictor and the
//!    history window, and the realized MLU of the (possibly just updated)
//!    deployed configuration is recorded.
//!
//! While serving learned configurations the controller periodically audits
//! them against the LP re-solve and falls back to the LP once the model
//! has degraded for `patience` consecutive audits — the safety valve for
//! traffic that drifted away from the training distribution (§5.4 of the
//! paper measures exactly this failure mode).  Without recovery the
//! fallback is terminal; with [`ServeController::enable_recovery`] it is
//! one state of the self-healing ladder (DESIGN.md §9): a CUSUM drift
//! detector can trip the fallback early, a [`crate::RecoveryManager`]
//! retrains challenger models on the observed-demand window while degraded,
//! and a challenger that beats the LP for `promotion_patience` consecutive
//! shadow audits is promoted back to live serving (with demotion and
//! re-entry on regression).  Every transition is typed, tick-stamped and
//! folded into the log digests.
//!
//! The loop is strictly sequential and every number it consumes is
//! deterministic, so the decision log is bit-identical across runs and
//! thread counts (DESIGN.md §4); only the measured latencies vary.
//!
//! Since PR 8 the tick is split into two phases so a fleet coordinator can
//! interpose between them: [`ServeController::propose`] computes the
//! candidate and its predicted MLUs (parking the candidate in scratch), and
//! [`ServeController::finish_pairs`] applies an externally decided
//! [`Action`] and ingests the realized demand.  [`ServeController::step_pairs`]
//! composes the two with the controller's own policy gates, producing
//! bit-identical records to the pre-split implementation.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use figret::{FigretModel, InferencePlan};
use figret_solvers::{MluTemplate, SeriesStats};
use figret_te::{max_link_utilization_pairs_scratch, split_ratio_churn, PathSet, TeConfig};
use figret_traffic::{ActivePairs, DemandMatrix, SparseDemand};

use figret_telemetry::{Registry, Stopwatch};

use crate::log::{Action, DecisionSource, HoldReason, TickRecord, Transition};
use crate::policy::ReconfigPolicy;
use crate::predictor::OnlinePredictor;
use crate::recovery::{RecoveryConfig, RecoveryManager, RecoveryStats};
use crate::telemetry::ServeTelemetry;

/// The result of one controller tick: the deterministic record plus the
/// measured decision latency.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// The deterministic tick record (see [`crate::log`]).
    pub record: TickRecord,
    /// Wall-clock seconds spent in the decision phase (candidate
    /// computation + policy gates; ingestion and bookkeeping excluded).
    pub decision_seconds: f64,
    /// Recovery-ladder transitions this tick produced (empty on almost
    /// every tick).  [`crate::ServeLog::record_outcome`] stamps them with
    /// the record's tick and folds them into the digests.
    pub transitions: Vec<Transition>,
}

/// One controller's decision bid, produced by [`ServeController::propose`]:
/// the candidate configuration itself stays parked inside the controller;
/// these are the numbers an admission layer needs to rank the bid against
/// other shards (the predicted-MLU regret is `predicted_mlu_deployed -
/// predicted_mlu_candidate`).
#[derive(Debug, Clone, Copy)]
pub struct Proposal {
    /// Engine that produced the parked candidate.
    pub source: DecisionSource,
    /// Predicted MLU of the currently deployed configuration on the
    /// forecast demand.
    pub predicted_mlu_deployed: f64,
    /// Predicted MLU of the parked candidate on the forecast demand.
    pub predicted_mlu_candidate: f64,
}

/// Internal mirror of [`Proposal`] plus the measured propose-phase latency,
/// held between `propose` and `finish_pairs`.
#[derive(Debug, Clone, Copy)]
struct PendingDecision {
    source: DecisionSource,
    deployed_mlu: f64,
    candidate_mlu: f64,
    seconds: f64,
}

/// Reusable per-step buffers: the steady-state decision loop allocates
/// nothing — predictions, MLU edge loads, plan features/outputs and the
/// candidate configuration all live here across ticks.
#[derive(Debug, Default)]
struct StepScratch {
    /// Forecast demands, one per active SD pair (slot order).
    predicted_pairs: Vec<f64>,
    /// Flatten buffer for the dense [`DemandMatrix`] adapter entry points.
    dense_pairs: Vec<f64>,
    /// Edge-load buffer for the scratch MLU evaluator.
    loads: Vec<f64>,
    /// Flattened history window fed to the inference plan.
    features: Vec<f64>,
    /// Raw plan outputs (one per path) before ratio normalization.
    raw: Vec<f64>,
    /// Candidate configuration buffer; swapped with `deployed` on update.
    candidate: TeConfig,
}

/// The online TE controller; see the module docs.
pub struct ServeController {
    paths: PathSet,
    window: usize,
    predictor: Box<dyn OnlinePredictor>,
    model: Option<FigretModel>,
    /// Compiled f32 hot path for the learned candidate; `None` serves the
    /// f64 reference graph.  See [`ServeController::enable_inference_plan`].
    plan: Option<InferencePlan>,
    template: MluTemplate,
    policy: ReconfigPolicy,
    /// The pair universe bound at construction time for the sparse entry
    /// points; `None` until [`ServeController::bind_universe`] is called.
    /// With a bound universe the per-call column check reduces to a
    /// debug-only `Arc` pointer comparison.
    universe: Option<Arc<ActivePairs>>,
    /// Set between [`ServeController::propose`] and
    /// [`ServeController::finish_pairs`].
    pending: Option<PendingDecision>,
    deployed: TeConfig,
    /// Observed demand columns (one `f64` per active pair, slot order),
    /// oldest first.  Columnar on purpose: `O(window · num_pairs)` regardless
    /// of the node count, so a restricted fabric universe costs `O(nnz)`.
    history: VecDeque<Vec<f64>>,
    recent_updates: VecDeque<usize>,
    degraded_streak: usize,
    fell_back: bool,
    decisions: usize,
    tick: usize,
    lp_stats: SeriesStats,
    scratch: StepScratch,
    /// The self-healing state machine; `None` keeps PR 5's terminal
    /// fallback.  See [`ServeController::enable_recovery`].
    recovery: Option<RecoveryManager>,
    /// Whether [`ServeController::enable_inference_plan`] was ever called:
    /// a promoted challenger is recompiled into a fresh plan iff the
    /// operator originally asked for plan serving (even if the ladder has
    /// since retired the old plan).
    plan_was_enabled: bool,
    /// Transitions produced since the last finished tick; drained into the
    /// tick's [`StepOutcome`].
    pending_transitions: Vec<Transition>,
    /// 0 for the originally installed model; the challenger generation
    /// after each promotion.
    model_generation: u64,
    /// Out-of-band metrics (DESIGN.md §10); `None` records nothing and
    /// takes no extra `Instant::now()` on the hot path.  Boxed: the handle
    /// table is cold data, and keeping the controller small matters for
    /// the fleet's shard moves.
    telemetry: Option<Box<ServeTelemetry>>,
}

impl std::fmt::Debug for ServeController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeController")
            .field("window", &self.window)
            .field("predictor", &self.predictor.name())
            .field("learned", &self.model.is_some())
            .field("fell_back", &self.fell_back)
            .field("tick", &self.tick)
            .finish()
    }
}

impl ServeController {
    /// A controller that serves warm-started LP re-solves (no model).
    /// `window` is the number of observed demands required before the first
    /// decision (give the sliding-window predictors a full window).
    pub fn lp(
        paths: &PathSet,
        window: usize,
        predictor: Box<dyn OnlinePredictor>,
        policy: ReconfigPolicy,
    ) -> ServeController {
        ServeController::build(paths, window, predictor, None, policy)
    }

    /// A controller that serves learned configurations (with the LP as the
    /// audit reference and fallback).  The warmup window is the model's
    /// history window `H`.
    pub fn learned(
        paths: &PathSet,
        model: FigretModel,
        predictor: Box<dyn OnlinePredictor>,
        policy: ReconfigPolicy,
    ) -> ServeController {
        let window = model.config().history_window;
        ServeController::build(paths, window, predictor, Some(model), policy)
    }

    fn build(
        paths: &PathSet,
        window: usize,
        predictor: Box<dyn OnlinePredictor>,
        model: Option<FigretModel>,
        policy: ReconfigPolicy,
    ) -> ServeController {
        assert!(window >= 1, "the controller needs at least one observed demand to decide");
        ServeController {
            paths: paths.clone(),
            window,
            predictor,
            model,
            plan: None,
            template: MluTemplate::new(paths),
            policy,
            universe: None,
            pending: None,
            deployed: TeConfig::uniform(paths),
            history: VecDeque::with_capacity(window + 1),
            recent_updates: VecDeque::new(),
            degraded_streak: 0,
            fell_back: false,
            decisions: 0,
            tick: 0,
            lp_stats: SeriesStats::default(),
            scratch: StepScratch::default(),
            recovery: None,
            plan_was_enabled: false,
            pending_transitions: Vec::new(),
            model_generation: 0,
            telemetry: None,
        }
    }

    /// Arms out-of-band telemetry (DESIGN.md §10): decision/predict/
    /// candidate span histograms, action and LP-work counters, and
    /// recovery-ladder metrics.  Metrics are never folded into the
    /// decision digests — a run digests identically armed or disarmed.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::new(ServeTelemetry::new()));
        }
    }

    /// The telemetry registry, when armed.
    pub fn telemetry_registry(&self) -> Option<&Registry> {
        self.telemetry.as_ref().map(|t| t.registry())
    }

    /// A snapshot (clone) of the telemetry registry, when armed.
    pub fn telemetry_snapshot(&self) -> Option<Registry> {
        self.telemetry_registry().cloned()
    }

    /// Compiles the learned model into the allocation-free f32
    /// [`InferencePlan`] and serves it on every subsequent model decision.
    /// The f64 graph stays available as the reference path (and keeps
    /// handling training-time concerns); the plan snapshots the weights at
    /// the moment of this call.
    ///
    /// # Panics
    ///
    /// Panics on an LP-only controller (nothing to compile).
    pub fn enable_inference_plan(&mut self) {
        let model = self.model.as_ref().expect("the inference plan requires a learned controller");
        self.plan = Some(model.compile_plan());
        self.plan_was_enabled = true;
    }

    /// Arms the self-healing state machine (DESIGN.md §9): drift detection
    /// on predicted-vs-realized MLU, online challenger retraining while
    /// degraded, and shadow promotion back to learned serving.  Columns
    /// already in the history window seed the retraining buffer.
    ///
    /// # Panics
    ///
    /// Panics on an LP-only controller (there is no model to heal).
    pub fn enable_recovery(&mut self, config: RecoveryConfig) {
        assert!(self.model.is_some(), "recovery requires a learned controller");
        let mut manager = RecoveryManager::new(config);
        for column in &self.history {
            manager.ingest(column);
        }
        self.recovery = Some(manager);
    }

    /// Whether the self-healing state machine is armed.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    /// Recovery counters (zeroes when recovery is disabled).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery.as_ref().map(|r| r.stats()).unwrap_or_default()
    }

    /// Whether model decisions go through the compiled f32 plan.
    pub fn plan_enabled(&self) -> bool {
        self.plan.is_some()
    }

    /// Binds the controller to a sparse pair universe.  The universe must
    /// have one slot per path-set pair (checked once, here); afterwards the
    /// sparse entry points verify arriving columns with a debug-only `Arc`
    /// identity comparison instead of a per-call universe re-derivation.
    pub fn bind_universe(&mut self, active: &Arc<ActivePairs>) {
        assert_eq!(
            active.len(),
            self.paths.num_pairs(),
            "the bound universe must have one slot per path-set pair"
        );
        self.universe = Some(Arc::clone(active));
    }

    /// The bound sparse universe, if any.
    pub fn universe(&self) -> Option<&Arc<ActivePairs>> {
        self.universe.as_ref()
    }

    /// Checks an arriving sparse column against the controller's universe:
    /// a debug-only pointer comparison once a universe is bound, the full
    /// release-mode length check otherwise.
    #[inline]
    fn check_bound_universe(&self, demand: &SparseDemand) {
        match &self.universe {
            Some(bound) => debug_assert!(
                Arc::ptr_eq(bound, demand.active()) || **demand.active() == **bound,
                "sparse column universe does not match the bound ActivePairs"
            ),
            None => assert_eq!(
                demand.len(),
                self.paths.num_pairs(),
                "one demand value per pair is required"
            ),
        }
    }

    /// Ingests a demand column without a decision tick (controller warmup:
    /// feed the history prefix before serving starts).  One value per active
    /// pair, in the slot order of the controller's path-set universe.
    pub fn observe_pairs(&mut self, demand: &[f64]) {
        assert_eq!(demand.len(), self.paths.num_pairs(), "one demand value per pair is required");
        assert!(self.pending.is_none(), "cannot observe between propose and finish");
        self.ingest(demand);
    }

    /// Dense adapter for [`ServeController::observe_pairs`]: flattens the
    /// matrix into a reused buffer and ingests the column.
    pub fn observe(&mut self, demand: &DemandMatrix) {
        let mut buf = std::mem::take(&mut self.scratch.dense_pairs);
        buf.resize(self.paths.num_pairs(), 0.0);
        demand.flatten_pairs_into(&mut buf);
        self.ingest(&buf);
        self.scratch.dense_pairs = buf;
    }

    /// Sparse counterpart of [`ServeController::observe_pairs`]: the demand
    /// universe must be the controller's pair universe (a debug-only
    /// identity check once [`ServeController::bind_universe`] was called).
    pub fn observe_sparse(&mut self, demand: &SparseDemand) {
        self.check_bound_universe(demand);
        assert!(self.pending.is_none(), "cannot observe between propose and finish");
        self.ingest(demand.values());
    }

    /// Dense adapter for [`ServeController::step_pairs`]: flattens the
    /// matrix into a reused buffer (outside the timed decision phase) and
    /// steps on the column.
    pub fn step(&mut self, realized: &DemandMatrix) -> StepOutcome {
        let mut buf = std::mem::take(&mut self.scratch.dense_pairs);
        buf.resize(self.paths.num_pairs(), 0.0);
        realized.flatten_pairs_into(&mut buf);
        let outcome = self.step_pairs(&buf);
        self.scratch.dense_pairs = buf;
        outcome
    }

    /// Sparse counterpart of [`ServeController::step_pairs`]: the demand
    /// universe must be the controller's pair universe (a debug-only
    /// identity check once [`ServeController::bind_universe`] was called).
    pub fn step_sparse(&mut self, realized: &SparseDemand) -> StepOutcome {
        self.check_bound_universe(realized);
        self.step_inner(realized.values())
    }

    /// Advances the serving loop by one tick; see the module docs.
    /// `realized` is the demand column (one value per active pair, slot
    /// order) that arrives *after* the decision — the controller never sees
    /// it before committing, exactly like a production control loop
    /// operating on stale telemetry.
    pub fn step_pairs(&mut self, realized: &[f64]) -> StepOutcome {
        assert_eq!(realized.len(), self.paths.num_pairs(), "one demand value per pair is required");
        self.step_inner(realized)
    }

    /// `propose` + the controller's own policy gates + `finish`: the
    /// single-controller tick.  Record-for-record identical to the pre-split
    /// monolithic step.
    fn step_inner(&mut self, realized: &[f64]) -> StepOutcome {
        let action = match self.propose() {
            None => Action::Warmup,
            Some(p) => {
                let wants_update = self.policy.hysteresis <= 0.0
                    || p.predicted_mlu_deployed
                        > (1.0 + self.policy.hysteresis) * p.predicted_mlu_candidate;
                if !wants_update {
                    Action::Hold(HoldReason::BelowHysteresis)
                } else if !self.budget_allows(self.tick) {
                    Action::Hold(HoldReason::BudgetExhausted)
                } else {
                    Action::Update
                }
            }
        };
        self.finish_inner(realized, action)
    }

    /// Phase 1 of a two-phase tick (timed; the decision hot path): forecast
    /// the next demand, compute the candidate configuration (parked in
    /// scratch until the finish phase) and evaluate the predicted MLUs of
    /// the deployed and candidate configurations.  Returns `None` while the
    /// history window is still filling (the tick must then finish as
    /// [`Action::Warmup`]).
    ///
    /// A fleet coordinator calls this on every shard, ranks the returned
    /// bids under the shared admission policy, and finishes each shard with
    /// the granted or held action.
    ///
    /// # Panics
    ///
    /// Panics when called again before the pending tick was finished.
    pub fn propose(&mut self) -> Option<Proposal> {
        assert!(self.pending.is_none(), "propose called twice without a finish");
        if self.history.len() < self.window {
            return None;
        }
        let start = Instant::now();
        // Armed-only sub-spans: a disarmed controller takes no stopwatch
        // reads beyond the one `start` above.
        let mut spans = self.telemetry.is_some().then(Stopwatch::start);
        // Detach the scratch arena from `self` for the duration of the
        // phase so its buffers can be borrowed alongside the other fields.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.predicted_pairs.resize(self.paths.num_pairs(), 0.0);
        let have = self.predictor.predict_pairs_into(&mut scratch.predicted_pairs);
        assert!(have, "a filled history window implies at least one observation");
        if let Some(spans) = spans.as_mut() {
            let lap = spans.lap();
            self.telemetry.as_mut().expect("a live stopwatch implies telemetry").on_predict(lap);
        }
        let source = self.candidate_into(&mut scratch);
        if let Some(spans) = spans.as_mut() {
            let lap = spans.lap();
            self.telemetry
                .as_mut()
                .expect("a live stopwatch implies telemetry")
                .on_candidate(source, lap);
        }
        let deployed_mlu = max_link_utilization_pairs_scratch(
            &self.paths,
            &self.deployed,
            &scratch.predicted_pairs,
            &mut scratch.loads,
        );
        let candidate_mlu = max_link_utilization_pairs_scratch(
            &self.paths,
            &scratch.candidate,
            &scratch.predicted_pairs,
            &mut scratch.loads,
        );
        if let Some(spans) = spans.as_mut() {
            let lap = spans.lap();
            self.telemetry.as_mut().expect("a live stopwatch implies telemetry").on_mlu_eval(lap);
        }
        self.scratch = scratch;
        self.decisions += 1;
        let seconds = start.elapsed().as_secs_f64();
        self.pending = Some(PendingDecision { source, deployed_mlu, candidate_mlu, seconds });
        Some(Proposal {
            source,
            predicted_mlu_deployed: deployed_mlu,
            predicted_mlu_candidate: candidate_mlu,
        })
    }

    /// Phase 2 of a two-phase tick: applies an externally decided `action`
    /// (deploying the parked candidate on [`Action::Update`]), ingests the
    /// realized demand and records the realized MLU.  The action must be
    /// [`Action::Warmup`] exactly when the preceding [`ServeController::propose`]
    /// returned `None`.
    pub fn finish_pairs(&mut self, realized: &[f64], action: Action) -> StepOutcome {
        assert_eq!(realized.len(), self.paths.num_pairs(), "one demand value per pair is required");
        self.finish_inner(realized, action)
    }

    fn finish_inner(&mut self, realized: &[f64], action: Action) -> StepOutcome {
        let pending = self.pending.take();
        assert_eq!(
            pending.is_none(),
            action == Action::Warmup,
            "Action::Warmup is required exactly when propose returned None"
        );
        let tick = self.tick;
        let start = Instant::now();
        let finish_watch = self.telemetry.is_some().then(Stopwatch::start);
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut churn = 0.0;
        if action == Action::Update {
            churn = split_ratio_churn(&self.deployed, &scratch.candidate);
            // Deploy by swapping buffers: the old deployed config becomes
            // the next tick's candidate scratch.
            std::mem::swap(&mut self.deployed, &mut scratch.candidate);
            if self.policy.budget.is_some() {
                // Only budgeted controllers track update history; an
                // unbudgeted one would otherwise grow this deque forever on
                // an unbounded stream.  Fleet shards run with `budget: None`
                // — the admission layer owns the joint update history.
                self.recent_updates.push_back(tick);
            }
        }
        let decision_seconds = pending.map_or(0.0, |p| p.seconds) + start.elapsed().as_secs_f64();

        self.ingest(realized);
        let realized_mlu = max_link_utilization_pairs_scratch(
            &self.paths,
            &self.deployed,
            realized,
            &mut scratch.loads,
        );
        self.scratch = scratch;
        self.recovery_after_ingest(tick, realized_mlu, action, pending);
        if let Some(tel) = self.telemetry.as_mut() {
            // Transitions are counted here, *before* the StepOutcome drains
            // them, so the counters cover every ladder move of the tick
            // (including RetrainStarted pushed by recovery above).
            tel.on_tick(action, decision_seconds, pending.is_some(), &self.pending_transitions);
            if let Some(watch) = finish_watch {
                tel.on_finish(watch.peek());
            }
        }
        self.tick += 1;
        StepOutcome {
            record: TickRecord {
                tick,
                action,
                source: pending.map(|p| p.source),
                predicted_mlu_deployed: pending.map(|p| p.deployed_mlu),
                predicted_mlu_candidate: pending.map(|p| p.candidate_mlu),
                realized_mlu,
                churn,
            },
            decision_seconds,
            transitions: std::mem::take(&mut self.pending_transitions),
        }
    }

    /// Recovery bookkeeping of the ingest phase: feed the drift detector
    /// with this tick's relative forecast error (only while the model is
    /// live — degraded ticks serve the LP, whose forecast error is the
    /// predictor's problem, not the model's), and run the tick-scheduled
    /// challenger retraining while degraded.
    fn recovery_after_ingest(
        &mut self,
        tick: usize,
        realized_mlu: f64,
        action: Action,
        pending: Option<PendingDecision>,
    ) {
        if self.recovery.is_none() {
            return;
        }
        if !self.fell_back {
            if let Some(p) = pending {
                let predicted =
                    if action == Action::Update { p.candidate_mlu } else { p.deployed_mlu };
                let error = (realized_mlu - predicted).abs() / realized_mlu.max(1e-9);
                let recovery = self.recovery.as_mut().expect("checked above");
                recovery.observe_error(error);
                let level = recovery.detector_level();
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.set_cusum_level(level);
                }
            }
            return;
        }
        let recovery = self.recovery.as_mut().expect("checked above");
        if recovery.should_retrain(tick) {
            let incumbent = self
                .model
                .as_ref()
                .expect("recovery requires a learned controller")
                .config()
                .clone();
            let seconds_before = recovery.stats().retrain_seconds;
            if recovery.retrain(&self.paths, &incumbent) {
                self.pending_transitions.push(Transition::RetrainStarted);
                let round_seconds = recovery.stats().retrain_seconds - seconds_before;
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.on_retrain(round_seconds);
                }
            }
        }
    }

    /// Computes the candidate configuration for the forecast demand in
    /// `scratch.predicted_pairs`, leaves it in `scratch.candidate` and
    /// applies the learned-mode audit/fallback/recovery logic.
    fn candidate_into(&mut self, scratch: &mut StepScratch) -> DecisionSource {
        if self.model.is_none() {
            scratch.candidate = self.lp_candidate(&scratch.predicted_pairs);
            return DecisionSource::LpWarm;
        }
        if self.fell_back {
            return self.fallback_candidate_into(scratch);
        }
        self.model_candidate_into(scratch);
        let fb = self.policy.fallback;
        let audit = fb.audit_every > 0 && self.decisions.is_multiple_of(fb.audit_every);
        let mut lp_candidate = None;
        if audit {
            let lp = self.lp_candidate(&scratch.predicted_pairs);
            let model_mlu = max_link_utilization_pairs_scratch(
                &self.paths,
                &scratch.candidate,
                &scratch.predicted_pairs,
                &mut scratch.loads,
            );
            let lp_mlu = max_link_utilization_pairs_scratch(
                &self.paths,
                &lp,
                &scratch.predicted_pairs,
                &mut scratch.loads,
            );
            if model_mlu > fb.degradation * lp_mlu {
                self.degraded_streak += 1;
            } else {
                self.degraded_streak = 0;
            }
            lp_candidate = Some(lp);
        }
        let audit_tripped = audit && self.degraded_streak >= fb.patience;
        let drift_tripped = self.recovery.as_mut().is_some_and(|r| r.take_drift_flag());
        if audit_tripped || drift_tripped {
            return self.degrade(scratch, lp_candidate);
        }
        DecisionSource::Model
    }

    /// Steps the degradation ladder down one rung after an audit or drift
    /// trip.  With recovery armed and the f32 plan still active, the first
    /// rung only *retires the plan* — the f64 reference graph gets its own
    /// chance before the model is abandoned.  Otherwise the controller
    /// falls back to the warm LP; with recovery armed the fallback is a
    /// state (retraining begins), without it PR 5's terminal behavior is
    /// preserved bit for bit.
    fn degrade(
        &mut self,
        scratch: &mut StepScratch,
        lp_candidate: Option<TeConfig>,
    ) -> DecisionSource {
        self.degraded_streak = 0;
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.reset_detector();
            if self.plan.is_some() {
                self.plan = None;
                self.pending_transitions.push(Transition::PlanRetired);
                // Keep the graph model's candidate already in scratch.
                return DecisionSource::Model;
            }
        }
        self.fell_back = true;
        self.pending_transitions.push(if self.model_generation > 0 {
            Transition::Demoted
        } else {
            Transition::Degraded
        });
        if self.model_generation > 0 {
            if let Some(recovery) = self.recovery.as_mut() {
                recovery.note_demotion();
            }
        }
        // The audit that tripped already has the better LP candidate in
        // hand; a pure drift trip computes it now.
        scratch.candidate =
            lp_candidate.unwrap_or_else(|| self.lp_candidate(&scratch.predicted_pairs));
        DecisionSource::LpWarm
    }

    /// Fallback-mode decision: serve the warm LP re-solve and — with
    /// recovery armed and a challenger in shadow — audit the challenger
    /// against the LP on the same forecast.  `promotion_patience`
    /// consecutive wins promote the challenger to the live model, ending
    /// the fallback; its winning candidate is served immediately.
    fn fallback_candidate_into(&mut self, scratch: &mut StepScratch) -> DecisionSource {
        let lp = self.lp_candidate(&scratch.predicted_pairs);
        let has_shadow = self.recovery.as_ref().is_some_and(|r| r.shadow().is_some());
        if !has_shadow {
            scratch.candidate = lp;
            return DecisionSource::LpWarm;
        }
        let lp_mlu = max_link_utilization_pairs_scratch(
            &self.paths,
            &lp,
            &scratch.predicted_pairs,
            &mut scratch.loads,
        );
        let audit_watch = self.telemetry.is_some().then(Stopwatch::start);
        let history: &[Vec<f64>] = self.history.make_contiguous();
        let recovery = self.recovery.as_mut().expect("shadow implies recovery");
        let margin = recovery.config().promotion_margin;
        let patience = recovery.config().promotion_patience;
        let shadow = recovery.shadow_mut().expect("shadow presence checked above");
        let challenger = shadow.candidate(&self.paths, history);
        let challenger_mlu = max_link_utilization_pairs_scratch(
            &self.paths,
            &challenger,
            &scratch.predicted_pairs,
            &mut scratch.loads,
        );
        let won = challenger_mlu <= margin * lp_mlu;
        let wins = shadow.record_audit(won);
        if let Some(watch) = audit_watch {
            self.telemetry
                .as_mut()
                .expect("a live stopwatch implies telemetry")
                .on_shadow_audit(won, watch.peek());
        }
        if wins >= patience {
            let shadow = recovery.take_shadow().expect("shadow presence checked above");
            recovery.note_promotion();
            recovery.reset_detector();
            self.model_generation = shadow.generation();
            let model = shadow.into_model();
            if self.plan_was_enabled {
                self.plan = Some(model.compile_plan());
            }
            self.model = Some(model);
            self.fell_back = false;
            self.pending_transitions.push(Transition::Promoted);
            // Serve the winning challenger candidate this very tick (it was
            // computed through the graph; the recompiled plan takes over
            // from the next decision).
            scratch.candidate = challenger;
            return DecisionSource::Model;
        }
        scratch.candidate = lp;
        DecisionSource::LpWarm
    }

    /// Fills `scratch.candidate` with the model's configuration — through
    /// the compiled f32 plan when enabled, else through the f64 reference
    /// graph.  Both consume the same borrowed history window; neither clones
    /// a demand matrix.
    fn model_candidate_into(&mut self, scratch: &mut StepScratch) {
        if let Some(plan) = self.plan.as_mut() {
            let num_pairs = self.paths.num_pairs();
            scratch.features.resize(self.window * num_pairs, 0.0);
            for (i, column) in self.history.iter().enumerate() {
                scratch.features[i * num_pairs..(i + 1) * num_pairs].copy_from_slice(column);
            }
            scratch.raw.resize(self.paths.num_paths(), 0.0);
            plan.forward(&scratch.features, &mut scratch.raw);
            scratch.candidate.assign_from_raw(&self.paths, &scratch.raw);
        } else {
            // Borrow the window in place (no per-tick clone of H columns —
            // this is inside the timed decision phase).
            let history: &[Vec<f64>] = self.history.make_contiguous();
            let model = self.model.as_mut().expect("learned mode checked by the caller");
            scratch.candidate = model.predict_flat(&self.paths, history);
        }
    }

    fn lp_candidate(&mut self, predicted_pairs: &[f64]) -> TeConfig {
        let watch = self.telemetry.is_some().then(Stopwatch::start);
        let (config, stats) = self
            .template
            .solve(&self.paths, predicted_pairs)
            .expect("the serving min-MLU LP must be solvable");
        self.lp_stats.record(&stats);
        if let Some(watch) = watch {
            self.telemetry
                .as_mut()
                .expect("a live stopwatch implies telemetry")
                .on_lp_solve(&stats, watch.peek());
        }
        config
    }

    fn budget_allows(&mut self, tick: usize) -> bool {
        match self.policy.budget {
            None => true,
            Some(budget) => {
                while let Some(&oldest) = self.recent_updates.front() {
                    if oldest + budget.window <= tick {
                        self.recent_updates.pop_front();
                    } else {
                        break;
                    }
                }
                self.recent_updates.len() < budget.max_updates
            }
        }
    }

    fn ingest(&mut self, demand: &[f64]) {
        self.predictor.observe_pairs(demand);
        if let Some(recovery) = self.recovery.as_mut() {
            recovery.ingest(demand);
        }
        if self.history.len() >= self.window {
            // Steady state: recycle the evicted column's allocation instead
            // of cloning the arrival.
            let mut recycled = self.history.pop_front().expect("window length checked above");
            recycled.copy_from_slice(demand);
            self.history.push_back(recycled);
        } else {
            self.history.push_back(demand.to_vec());
        }
    }

    /// The currently deployed configuration.
    pub fn deployed(&self) -> &TeConfig {
        &self.deployed
    }

    /// Edge-load vector of the most recent realized-MLU evaluation (one
    /// entry per edge of the path set's edge universe, which
    /// `PathSet::restrict_to` preserves in full).  A fleet sums these across
    /// shards in stable shard order and folds once
    /// ([`figret_te::max_utilization_of_loads`]) to recover the exact global
    /// MLU.  Valid until the next propose/step call.
    pub fn last_realized_loads(&self) -> &[f64] {
        &self.scratch.loads
    }

    /// Number of SD pairs in the controller's pair universe.
    pub fn num_pairs(&self) -> usize {
        self.paths.num_pairs()
    }

    /// The controller's path set (a fleet checks shards share one edge
    /// universe through this).
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }

    /// The controller's reconfiguration policy.
    pub fn policy(&self) -> &ReconfigPolicy {
        &self.policy
    }

    /// Warmup window length (observed demands required before deciding).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Decision ticks taken so far.
    pub fn ticks(&self) -> usize {
        self.tick
    }

    /// Whether the controller is *currently* fallen back to the LP.
    /// Terminal without recovery; with recovery armed a later promotion
    /// clears it.
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// Whether the controller carries a model (live or degraded).
    pub fn is_learned(&self) -> bool {
        self.model.is_some()
    }

    /// 0 while the originally installed model serves; the promoted
    /// challenger's generation afterwards.
    pub fn model_generation(&self) -> u64 {
        self.model_generation
    }

    /// Accumulated LP solver work (warm-start acceptance, pivots) over every
    /// template re-solve the controller ran.
    pub fn lp_stats(&self) -> &SeriesStats {
        &self.lp_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ServeLog;
    use crate::policy::{FallbackPolicy, UpdateBudget};
    use crate::predictor::{LastValue, PredictorKind};
    use figret::FigretConfig;
    use figret_solvers::{omniscient_config, SolverEngine};
    use figret_te::max_link_utilization;
    use figret_topology::{Topology, TopologySpec};
    use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
    use figret_traffic::TrafficTrace;

    fn pod_setup(snapshots: usize) -> (PathSet, TrafficTrace) {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let trace =
            pod_trace(&g, &PodTrafficConfig { num_snapshots: snapshots, ..Default::default() });
        (ps, trace)
    }

    fn run(controller: &mut ServeController, trace: &TrafficTrace, warmup: usize) -> ServeLog {
        let mut log = ServeLog::new();
        for t in 0..warmup {
            controller.observe(trace.matrix(t));
        }
        for t in warmup..trace.len() {
            let out = controller.step(trace.matrix(t));
            log.push(out.record, out.decision_seconds);
        }
        log
    }

    #[test]
    fn always_update_deploys_every_tick_and_stays_above_omniscient() {
        let (ps, trace) = pod_setup(24);
        let mut c = ServeController::lp(
            &ps,
            2,
            Box::new(LastValue::new()),
            ReconfigPolicy::always_update(),
        );
        let log = run(&mut c, &trace, 2);
        assert_eq!(log.update_count(), log.len());
        assert_eq!(log.fallback_tick(), None);
        // Realized MLU is bounded below by the omniscient optimum per tick.
        for (i, r) in log.records.iter().enumerate() {
            let t = 2 + i;
            let omni = omniscient_config(&ps, trace.matrix(t), SolverEngine::Lp).unwrap();
            let bound = max_link_utilization(&ps, &omni, trace.matrix(t));
            assert!(r.realized_mlu + 1e-9 >= bound, "tick {i}: {} < {bound}", r.realized_mlu);
        }
        // The warm template must actually warm start on a stable trace.
        assert!(c.lp_stats().warm_solves > 0);
        assert_eq!(c.lp_stats().solves, log.len());
    }

    #[test]
    fn hysteresis_holds_when_the_deployed_config_stays_good() {
        let (ps, trace) = pod_setup(24);
        // A huge hysteresis threshold: after the first deployment nothing is
        // ever predicted to be 10x better, so everything else holds.
        let policy =
            ReconfigPolicy { hysteresis: 9.0, budget: None, fallback: FallbackPolicy::disabled() };
        let mut c = ServeController::lp(&ps, 2, Box::new(LastValue::new()), policy);
        let log = run(&mut c, &trace, 2);
        // The initial uniform config may be bad enough to trigger the first
        // update, but after that the gate must hold.
        assert!(log.update_count() <= 1);
        assert!(log.hold_count(HoldReason::BelowHysteresis) >= log.len() - 1);
        assert_eq!(log.hold_count(HoldReason::BudgetExhausted), 0);
    }

    #[test]
    fn update_budget_is_enforced_over_a_sliding_window() {
        let (ps, trace) = pod_setup(30);
        let policy = ReconfigPolicy {
            hysteresis: 0.0, // always wants to update
            budget: Some(UpdateBudget::per_window(1, 4)),
            fallback: FallbackPolicy::disabled(),
        };
        let mut c = ServeController::lp(&ps, 2, Box::new(LastValue::new()), policy);
        let log = run(&mut c, &trace, 2);
        // Exactly one update per 4-tick window: ticks 0, 4, 8, ...
        for r in &log.records {
            if r.tick % 4 == 0 {
                assert_eq!(r.action, Action::Update, "tick {}", r.tick);
                assert!(r.churn >= 0.0);
            } else {
                assert_eq!(r.action, Action::Hold(HoldReason::BudgetExhausted), "tick {}", r.tick);
                assert_eq!(r.churn, 0.0);
            }
        }
        assert_eq!(log.update_count(), log.len().div_ceil(4));
    }

    #[test]
    fn untrained_model_degrades_and_falls_back_to_the_lp() {
        let (ps, trace) = pod_setup(30);
        // An untrained model emits near-arbitrary configurations; with a
        // tight degradation bound and per-tick audits the controller must
        // abandon it quickly.
        let zero_variances = vec![0.0; ps.num_pairs()];
        let model = FigretModel::new(
            &ps,
            &zero_variances,
            FigretConfig { history_window: 2, ..FigretConfig::fast_test() },
        );
        let policy = ReconfigPolicy {
            hysteresis: 0.0,
            budget: None,
            fallback: FallbackPolicy { degradation: 1.01, patience: 2, audit_every: 1 },
        };
        let mut c = ServeController::learned(&ps, model, Box::new(LastValue::new()), policy);
        let log = run(&mut c, &trace, 2);
        assert!(c.fell_back(), "an untrained model must trip the degradation fallback");
        let fb = log.fallback_tick().expect("fallback transition must appear in the log");
        // Before the transition: model candidates; from it on: LP candidates.
        for r in &log.records {
            match r.source {
                Some(DecisionSource::Model) => assert!(r.tick < fb),
                Some(DecisionSource::LpWarm) => assert!(r.tick >= fb),
                None => panic!("no warmup records expected"),
            }
        }
    }

    #[test]
    fn inference_plan_reproduces_graph_decisions() {
        let (ps, trace) = pod_setup(24);
        let zero_variances = vec![0.0; ps.num_pairs()];
        let build = || {
            FigretModel::new(
                &ps,
                &zero_variances,
                FigretConfig { history_window: 2, ..FigretConfig::fast_test() },
            )
        };
        let policy = ReconfigPolicy {
            hysteresis: 0.05,
            budget: Some(UpdateBudget::per_window(3, 8)),
            fallback: FallbackPolicy::disabled(),
        };
        let mut graph_c =
            ServeController::learned(&ps, build(), Box::new(LastValue::new()), policy.clone());
        let mut plan_c = ServeController::learned(&ps, build(), Box::new(LastValue::new()), policy);
        plan_c.enable_inference_plan();
        assert!(plan_c.plan_enabled());
        assert!(!graph_c.plan_enabled());
        let graph_log = run(&mut graph_c, &trace, 2);
        let plan_log = run(&mut plan_c, &trace, 2);
        // Update/hold choices compare f64 MLUs of whole configurations, so
        // the plan's sub-1e-4 output perturbations cannot flip them.
        assert_eq!(graph_log.decision_digest(), plan_log.decision_digest());
        // The realized MLUs differ only in the low bits.
        for (g, p) in graph_log.records.iter().zip(&plan_log.records) {
            assert!(
                (g.realized_mlu - p.realized_mlu).abs() <= 1e-3 * (1.0 + g.realized_mlu),
                "tick {}: graph {} vs plan {}",
                g.tick,
                g.realized_mlu,
                p.realized_mlu
            );
        }
    }

    #[test]
    fn warmup_ticks_are_logged_until_the_window_fills() {
        let (ps, trace) = pod_setup(8);
        let mut c = ServeController::lp(
            &ps,
            3,
            Box::new(LastValue::new()),
            ReconfigPolicy::always_update(),
        );
        // No warmup observations: the first 3 steps cannot decide.
        let log = run(&mut c, &trace, 0);
        assert_eq!(log.records[0].action, Action::Warmup);
        assert_eq!(log.records[2].action, Action::Warmup);
        assert_eq!(log.records[3].action, Action::Update);
        assert!(log.records[0].predicted_mlu_candidate.is_none());
        assert!(log.records[3].predicted_mlu_candidate.is_some());
    }

    #[test]
    fn sparse_columns_reproduce_dense_decisions_bit_for_bit() {
        use figret_traffic::{ActivePairs, SparseDemand};
        let (ps, trace) = pod_setup(20);
        let policy = ReconfigPolicy {
            hysteresis: 0.05,
            budget: Some(UpdateBudget::per_window(3, 8)),
            fallback: FallbackPolicy::disabled(),
        };
        let mut dense = ServeController::lp(&ps, 2, Box::new(LastValue::new()), policy.clone());
        let mut sparse = ServeController::lp(&ps, 2, Box::new(LastValue::new()), policy);
        // ActivePairs::all slot order == flatten_pairs order, so feeding the
        // same demands through the sparse entry points must replay the exact
        // decision sequence: same LP pivots, same MLUs, same churn bits.
        let active = std::sync::Arc::new(ActivePairs::all(trace.num_nodes()));
        let mut dense_log = ServeLog::new();
        let mut sparse_log = ServeLog::new();
        for t in 0..trace.len() {
            let column = SparseDemand::from_matrix(trace.matrix(t), &active);
            if t < 2 {
                dense.observe(trace.matrix(t));
                sparse.observe_sparse(&column);
            } else {
                let d = dense.step(trace.matrix(t));
                let s = sparse.step_sparse(&column);
                assert_eq!(d.record.realized_mlu.to_bits(), s.record.realized_mlu.to_bits());
                assert_eq!(d.record.churn.to_bits(), s.record.churn.to_bits());
                dense_log.push(d.record, d.decision_seconds);
                sparse_log.push(s.record, s.decision_seconds);
            }
        }
        assert!(dense_log.update_count() > 0, "the comparison must exercise real updates");
        assert_eq!(dense_log.decision_digest(), sparse_log.decision_digest());
        assert_eq!(dense.deployed(), sparse.deployed());
    }

    #[test]
    fn predictor_kind_drives_the_controller() {
        let (ps, trace) = pod_setup(16);
        for kind in [
            PredictorKind::LastValue,
            PredictorKind::Ewma(0.4),
            PredictorKind::SlidingMean(3),
            PredictorKind::SlidingMax(3),
        ] {
            let mut c = ServeController::lp(&ps, 3, kind.build(), ReconfigPolicy::always_update());
            let log = run(&mut c, &trace, 3);
            assert_eq!(log.update_count(), log.len());
            assert!(log.records.iter().all(|r| r.realized_mlu.is_finite()));
        }
    }
}
