//! # figret-serve
//!
//! The online serving subsystem of the FIGRET reproduction (DESIGN.md §6):
//! a deterministic, discrete-event TE controller that ingests demands as
//! they arrive, forecasts the next snapshot with an online predictor,
//! and decides *whether* reconfiguring is worth its churn — the production
//! loop the batch replay binaries cannot express.
//!
//! * [`predictor`] — stateful one-step-ahead forecasters (last-value, EWMA,
//!   sliding-window mean/max);
//! * [`policy`] — reconfiguration gates: hysteresis on predicted-MLU
//!   regret, a sliding-window update budget, and the learned→LP degradation
//!   fallback;
//! * [`controller`] — the serving loop itself, pairing learned inference
//!   with a warm-started [`figret_solvers::MluTemplate`] LP re-solve;
//! * [`log`] — the bit-deterministic event/decision log plus measured
//!   per-decision latencies;
//! * [`admission`] — the fleet-wide admission layer: one hysteresis gate and
//!   one sliding-window update budget shared by every shard;
//! * [`fleet`] — the sharded serving fleet: shard controllers stepped
//!   data-parallel under the global admission layer, merged in stable shard
//!   order for bit-determinism at any thread count (DESIGN.md §8);
//! * [`recovery`] — the self-healing state machine: CUSUM drift detection
//!   and deterministic online retraining of challenger models while the
//!   controller is degraded (DESIGN.md §9);
//! * [`shadow`] — shadow-mode challengers audited tick-by-tick against the
//!   warm LP reference and promoted after sustained wins;
//! * [`telemetry`] — out-of-band metrics wiring (DESIGN.md §10):
//!   pre-registered counters, span histograms and gauges for the
//!   controller, LP, recovery ladder and fleet phases, never folded into
//!   the decision digests.
//!
//! Demand arrives through the [`figret_traffic::DemandStream`] trait
//! (trace replay or the unbounded online generators), so serving scenarios
//! are open-ended.  The replay harness and the `serve_sim` report binary
//! live in `figret-eval`.
//!
//! # Example
//!
//! ```
//! use figret_serve::{LastValue, ReconfigPolicy, ServeController};
//! use figret_te::PathSet;
//! use figret_topology::{Topology, TopologySpec};
//! use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
//!
//! let pod = TopologySpec::full_scale(Topology::MetaDbPod).build();
//! let paths = PathSet::k_shortest(&pod, 3);
//! let trace = pod_trace(&pod, &PodTrafficConfig { num_snapshots: 10, ..Default::default() });
//! let mut controller = ServeController::lp(
//!     &paths,
//!     2,
//!     Box::new(LastValue::new()),
//!     ReconfigPolicy::default(),
//! );
//! controller.observe(trace.matrix(0));
//! controller.observe(trace.matrix(1));
//! let outcome = controller.step(trace.matrix(2));
//! assert!(outcome.record.realized_mlu.is_finite());
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod controller;
pub mod fleet;
pub mod log;
pub mod policy;
pub mod predictor;
pub mod recovery;
pub mod shadow;
pub mod telemetry;

pub use admission::{AdmissionStats, GlobalAdmission, ShardBid};
pub use controller::{Proposal, ServeController, StepOutcome};
pub use fleet::{FleetController, FleetTickOutcome};
pub use log::{
    Action, DecisionSource, HoldReason, ServeLog, TickRecord, Transition, TransitionRecord,
};
pub use policy::{FallbackPolicy, ReconfigPolicy, UpdateBudget};
pub use predictor::{Ewma, LastValue, OnlinePredictor, PredictorKind, SlidingMax, SlidingMean};
pub use recovery::{CusumConfig, CusumDetector, RecoveryConfig, RecoveryManager, RecoveryStats};
pub use shadow::ShadowModel;
pub use telemetry::{FleetTelemetry, ServeTelemetry, FLEET_PHASES};
