//! Online demand predictors.
//!
//! A batch predictor ([`figret_solvers::Predictor`]) is handed a complete
//! history window per call; an online predictor instead *ingests* demands
//! one at a time ([`OnlinePredictor::observe`]) and can be asked for a
//! forecast at any tick ([`OnlinePredictor::predict`]).  The sliding-window
//! variants reproduce the batch predictors exactly over the same window, so
//! any LP scheme driven through the serving loop matches its batch
//! evaluation; EWMA has no batch counterpart (its state is unbounded
//! history with geometric decay — only an online formulation makes sense).

use std::collections::VecDeque;

use figret_traffic::DemandMatrix;

/// A stateful one-step-ahead demand forecaster.
pub trait OnlinePredictor: Send {
    /// Ingests the demand matrix realized at the current tick.
    fn observe(&mut self, demand: &DemandMatrix);

    /// Forecast for the next tick, or `None` before the first observation.
    fn predict(&self) -> Option<DemandMatrix>;

    /// Writes the forecast's flattened pair demands into `out` (length
    /// `num_pairs`, [`DemandMatrix::flatten_pairs`] order) and returns `true`,
    /// or returns `false` before the first observation.  The controller's
    /// hot path; implementations should not allocate.  The values must be
    /// bit-identical to flattening [`OnlinePredictor::predict`].
    fn predict_pairs_into(&self, out: &mut [f64]) -> bool {
        match self.predict() {
            Some(m) => {
                m.flatten_pairs_into(out);
                true
            }
            None => false,
        }
    }

    /// Display name used in reports.
    fn name(&self) -> &'static str;
}

/// Predicts the last observed demand (the paper's choice for prediction TE).
#[derive(Debug, Default)]
pub struct LastValue {
    last: Option<DemandMatrix>,
}

impl LastValue {
    /// A predictor with no observations yet.
    pub fn new() -> LastValue {
        LastValue { last: None }
    }
}

impl OnlinePredictor for LastValue {
    fn observe(&mut self, demand: &DemandMatrix) {
        match &mut self.last {
            Some(m) => m.copy_from(demand),
            None => self.last = Some(demand.clone()),
        }
    }

    fn predict(&self) -> Option<DemandMatrix> {
        self.last.clone()
    }

    fn predict_pairs_into(&self, out: &mut [f64]) -> bool {
        match &self.last {
            Some(m) => {
                m.flatten_pairs_into(out);
                true
            }
            None => false,
        }
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Exponentially weighted moving average:
/// `state ← (1 − α)·state + α·demand`.
#[derive(Debug)]
pub struct Ewma {
    alpha: f64,
    state: Option<DemandMatrix>,
}

impl Ewma {
    /// An EWMA predictor with smoothing factor `alpha ∈ (0, 1]` (1.0
    /// degenerates to [`LastValue`]).
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA smoothing factor must be in (0, 1]");
        Ewma { alpha, state: None }
    }
}

impl OnlinePredictor for Ewma {
    fn observe(&mut self, demand: &DemandMatrix) {
        match &mut self.state {
            None => self.state = Some(demand.clone()),
            // Bit-identical to `scaled(1 - α)` + `axpy(α, ·)`, in place.
            Some(s) => s.ewma_blend(self.alpha, demand),
        }
    }

    fn predict(&self) -> Option<DemandMatrix> {
        self.state.clone()
    }

    fn predict_pairs_into(&self, out: &mut [f64]) -> bool {
        match &self.state {
            Some(m) => {
                m.flatten_pairs_into(out);
                true
            }
            None => false,
        }
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Element-wise mean of the last `window` observations (the batch
/// [`figret_solvers::Predictor::WindowMean`], formulated online).
#[derive(Debug)]
pub struct SlidingMean {
    window: usize,
    buffer: VecDeque<DemandMatrix>,
}

impl SlidingMean {
    /// A sliding-mean predictor over `window ≥ 1` observations.
    pub fn new(window: usize) -> SlidingMean {
        assert!(window >= 1, "sliding window must hold at least one observation");
        SlidingMean { window, buffer: VecDeque::new() }
    }
}

impl OnlinePredictor for SlidingMean {
    fn observe(&mut self, demand: &DemandMatrix) {
        observe_window(&mut self.buffer, self.window, demand);
    }

    fn predict(&self) -> Option<DemandMatrix> {
        let first = self.buffer.front()?;
        let mut acc = DemandMatrix::zeros(first.num_nodes());
        for m in &self.buffer {
            acc = acc.axpy(1.0, m);
        }
        Some(acc.scaled(1.0 / self.buffer.len() as f64))
    }

    fn predict_pairs_into(&self, out: &mut [f64]) -> bool {
        if self.buffer.is_empty() {
            return false;
        }
        // Same per-element fold as `predict` (sum clamped at zero, then the
        // scale clamped at zero), restricted to the off-diagonal pairs.
        out.fill(0.0);
        for m in &self.buffer {
            m.accumulate_pairs_into(out);
        }
        let inv = 1.0 / self.buffer.len() as f64;
        for v in out {
            *v = (*v * inv).max(0.0);
        }
        true
    }

    fn name(&self) -> &'static str {
        "sliding-mean"
    }
}

/// Element-wise maximum of the last `window` observations (the peak matrix
/// desensitization-based TE hedges against, formulated online).
#[derive(Debug)]
pub struct SlidingMax {
    window: usize,
    buffer: VecDeque<DemandMatrix>,
}

impl SlidingMax {
    /// A sliding-peak predictor over `window ≥ 1` observations.
    pub fn new(window: usize) -> SlidingMax {
        assert!(window >= 1, "sliding window must hold at least one observation");
        SlidingMax { window, buffer: VecDeque::new() }
    }
}

impl OnlinePredictor for SlidingMax {
    fn observe(&mut self, demand: &DemandMatrix) {
        observe_window(&mut self.buffer, self.window, demand);
    }

    fn predict(&self) -> Option<DemandMatrix> {
        let mut it = self.buffer.iter();
        let mut acc = it.next()?.clone();
        for m in it {
            acc = acc.element_max(m);
        }
        Some(acc)
    }

    fn predict_pairs_into(&self, out: &mut [f64]) -> bool {
        let mut it = self.buffer.iter();
        let Some(first) = it.next() else {
            return false;
        };
        first.flatten_pairs_into(out);
        for m in it {
            m.max_pairs_into(out);
        }
        true
    }

    fn name(&self) -> &'static str {
        "sliding-max"
    }
}

/// Pushes `demand` into a bounded sliding window, recycling the evicted
/// matrix's allocation once the window is full (the steady state allocates
/// nothing).
fn observe_window(buffer: &mut VecDeque<DemandMatrix>, window: usize, demand: &DemandMatrix) {
    if buffer.len() >= window {
        let mut recycled = buffer.pop_front().expect("window length checked above");
        recycled.copy_from(demand);
        buffer.push_back(recycled);
    } else {
        buffer.push_back(demand.clone());
    }
}

/// Predictor selection, buildable from CLI flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorKind {
    /// [`LastValue`].
    LastValue,
    /// [`Ewma`] with the given smoothing factor.
    Ewma(f64),
    /// [`SlidingMean`] over the given window.
    SlidingMean(usize),
    /// [`SlidingMax`] over the given window.
    SlidingMax(usize),
}

impl PredictorKind {
    /// Instantiates the predictor.
    pub fn build(&self) -> Box<dyn OnlinePredictor> {
        match *self {
            PredictorKind::LastValue => Box::new(LastValue::new()),
            PredictorKind::Ewma(alpha) => Box::new(Ewma::new(alpha)),
            PredictorKind::SlidingMean(w) => Box::new(SlidingMean::new(w)),
            PredictorKind::SlidingMax(w) => Box::new(SlidingMax::new(w)),
        }
    }

    /// Parses a CLI spelling: `last`, `ewma` / `ewma:0.3`, `mean` /
    /// `mean:8`, `max` / `max:8` (window defaults to `default_window`).
    pub fn parse(spec: &str, default_window: usize) -> Result<PredictorKind, String> {
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        match head {
            "last" | "last-value" => Ok(PredictorKind::LastValue),
            "ewma" => {
                let alpha = match arg {
                    Some(a) => {
                        a.parse::<f64>().map_err(|_| format!("invalid EWMA factor '{a}'"))?
                    }
                    None => 0.3,
                };
                Ok(PredictorKind::Ewma(alpha))
            }
            "mean" | "sliding-mean" => {
                let w = match arg {
                    Some(a) => a.parse::<usize>().map_err(|_| format!("invalid window '{a}'"))?,
                    None => default_window,
                };
                Ok(PredictorKind::SlidingMean(w))
            }
            "max" | "sliding-max" | "peak" => {
                let w = match arg {
                    Some(a) => a.parse::<usize>().map_err(|_| format!("invalid window '{a}'"))?,
                    None => default_window,
                };
                Ok(PredictorKind::SlidingMax(w))
            }
            other => Err(format!(
                "unknown predictor '{other}' (expected last | ewma[:a] | mean[:w] | max[:w])"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(pairs: &[f64]) -> DemandMatrix {
        DemandMatrix::from_pairs(2, pairs).unwrap()
    }

    #[test]
    fn last_value_tracks_the_latest_observation() {
        let mut p = LastValue::new();
        assert_eq!(p.predict(), None);
        p.observe(&dm(&[1.0, 2.0]));
        p.observe(&dm(&[3.0, 4.0]));
        assert_eq!(p.predict().unwrap(), dm(&[3.0, 4.0]));
    }

    #[test]
    fn ewma_blends_geometrically() {
        let mut p = Ewma::new(0.5);
        p.observe(&dm(&[4.0, 0.0]));
        p.observe(&dm(&[0.0, 8.0]));
        // state = 0.5*[4,0] + 0.5*[0,8] = [2,4]
        assert_eq!(p.predict().unwrap(), dm(&[2.0, 4.0]));
        let mut one = Ewma::new(1.0);
        one.observe(&dm(&[4.0, 0.0]));
        one.observe(&dm(&[0.0, 8.0]));
        assert_eq!(one.predict().unwrap(), dm(&[0.0, 8.0]));
    }

    #[test]
    fn sliding_predictors_match_their_batch_counterparts() {
        use figret_solvers::{predict, Predictor};
        let history = vec![dm(&[1.0, 10.0]), dm(&[3.0, 6.0]), dm(&[2.0, 8.0]), dm(&[4.0, 2.0])];
        let mut mean = SlidingMean::new(3);
        let mut max = SlidingMax::new(3);
        for m in &history {
            mean.observe(m);
            max.observe(m);
        }
        let tail = &history[1..];
        assert_eq!(mean.predict().unwrap(), predict(tail, Predictor::WindowMean));
        assert_eq!(max.predict().unwrap(), predict(tail, Predictor::WindowPeak));
    }

    #[test]
    fn window_eviction_forgets_old_observations() {
        let mut p = SlidingMax::new(2);
        p.observe(&dm(&[9.0, 0.0]));
        p.observe(&dm(&[1.0, 1.0]));
        p.observe(&dm(&[1.0, 2.0]));
        assert_eq!(p.predict().unwrap(), dm(&[1.0, 2.0]));
    }

    #[test]
    fn predict_pairs_into_matches_the_allocating_predict() {
        let history = vec![dm(&[1.0, 10.0]), dm(&[3.0, 6.0]), dm(&[2.0, 8.0]), dm(&[4.0, 2.0])];
        let kinds = [
            PredictorKind::LastValue,
            PredictorKind::Ewma(0.3),
            PredictorKind::SlidingMean(3),
            PredictorKind::SlidingMax(3),
        ];
        for kind in kinds {
            let mut p = kind.build();
            let mut out = vec![0.0; 2];
            assert!(!p.predict_pairs_into(&mut out), "{}: empty predictor must refuse", p.name());
            for m in &history {
                p.observe(m);
                assert!(p.predict_pairs_into(&mut out));
                let reference = p.predict().unwrap().flatten_pairs();
                for (a, b) in out.iter().zip(&reference) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{}: hot path must be bit-identical",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn kind_parse_round_trips() {
        assert_eq!(PredictorKind::parse("last", 8).unwrap(), PredictorKind::LastValue);
        assert_eq!(PredictorKind::parse("ewma:0.25", 8).unwrap(), PredictorKind::Ewma(0.25));
        assert_eq!(PredictorKind::parse("mean", 8).unwrap(), PredictorKind::SlidingMean(8));
        assert_eq!(PredictorKind::parse("max:4", 8).unwrap(), PredictorKind::SlidingMax(4));
        assert!(PredictorKind::parse("oracle", 8).is_err());
        assert!(PredictorKind::parse("ewma:x", 8).is_err());
        assert_eq!(PredictorKind::Ewma(0.25).build().name(), "ewma");
    }
}
