//! Online demand predictors.
//!
//! A batch predictor ([`figret_solvers::Predictor`]) is handed a complete
//! history window per call; an online predictor instead *ingests* demands
//! one at a time ([`OnlinePredictor::observe_pairs`]) and can be asked for
//! a forecast at any tick ([`OnlinePredictor::predict_pairs_into`]).
//!
//! Predictors operate on **pair columns**: flat `f64` vectors with one slot
//! per active SD pair, in the shared slot order of the serving universe
//! (for a dense universe that is `DemandMatrix::flatten_pairs` order; for a
//! fabric it is the slot order of the stream's
//! [`figret_traffic::ActivePairs`] index).  State is `O(window · nnz)` —
//! predictors never materialize an `N×N` matrix, which is what lets the
//! serving loop scale to multi-thousand-ToR fabrics.  The element-wise
//! update rules go through the same [`figret_traffic::ops`] kernels the
//! dense [`figret_traffic::DemandMatrix`] uses, so forecasts are
//! bit-identical to the historical matrix-based formulation on a dense
//! universe.  The sliding-window variants reproduce the batch predictors
//! exactly over the same window; EWMA has no batch counterpart (its state
//! is unbounded history with geometric decay — only an online formulation
//! makes sense).

use std::collections::VecDeque;

use figret_traffic::{ops, DemandMatrix};

/// A stateful one-step-ahead demand forecaster over pair columns.
pub trait OnlinePredictor: Send {
    /// Ingests the demand column realized at the current tick (one value
    /// per active pair, slot order).  Every observation of a predictor's
    /// lifetime must have the same length.
    fn observe_pairs(&mut self, demand: &[f64]);

    /// Writes the forecast column into `out` (same length and slot order as
    /// the observations) and returns `true`, or returns `false` before the
    /// first observation.  The controller's hot path; implementations do
    /// not allocate.
    fn predict_pairs_into(&self, out: &mut [f64]) -> bool;

    /// Display name used in reports.
    fn name(&self) -> &'static str;

    /// Dense adapter for [`OnlinePredictor::observe_pairs`]: flattens the
    /// matrix (allocating) and ingests the column.  Convenience for tests
    /// and small-WAN callers; the serving loop flattens once into a reused
    /// buffer instead.
    fn observe(&mut self, demand: &DemandMatrix) {
        self.observe_pairs(&demand.flatten_pairs());
    }
}

/// Predicts the last observed demand (the paper's choice for prediction TE).
#[derive(Debug, Default)]
pub struct LastValue {
    last: Option<Vec<f64>>,
}

impl LastValue {
    /// A predictor with no observations yet.
    pub fn new() -> LastValue {
        LastValue { last: None }
    }
}

impl OnlinePredictor for LastValue {
    fn observe_pairs(&mut self, demand: &[f64]) {
        match &mut self.last {
            Some(v) => v.copy_from_slice(demand),
            None => self.last = Some(demand.to_vec()),
        }
    }

    fn predict_pairs_into(&self, out: &mut [f64]) -> bool {
        match &self.last {
            Some(v) => {
                out.copy_from_slice(v);
                true
            }
            None => false,
        }
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Exponentially weighted moving average:
/// `state ← (1 − α)·state + α·demand`.
#[derive(Debug)]
pub struct Ewma {
    alpha: f64,
    state: Option<Vec<f64>>,
}

impl Ewma {
    /// An EWMA predictor with smoothing factor `alpha ∈ (0, 1]` (1.0
    /// degenerates to [`LastValue`]).
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA smoothing factor must be in (0, 1]");
        Ewma { alpha, state: None }
    }
}

impl OnlinePredictor for Ewma {
    fn observe_pairs(&mut self, demand: &[f64]) {
        match &mut self.state {
            None => self.state = Some(demand.to_vec()),
            // The same kernel `DemandMatrix::ewma_blend` uses — bit-identical
            // to the historical matrix-based state.
            Some(s) => ops::ewma_blend(s, self.alpha, demand),
        }
    }

    fn predict_pairs_into(&self, out: &mut [f64]) -> bool {
        match &self.state {
            Some(s) => {
                out.copy_from_slice(s);
                true
            }
            None => false,
        }
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Element-wise mean of the last `window` observations (the batch
/// [`figret_solvers::Predictor::WindowMean`], formulated online).
#[derive(Debug)]
pub struct SlidingMean {
    window: usize,
    buffer: VecDeque<Vec<f64>>,
}

impl SlidingMean {
    /// A sliding-mean predictor over `window ≥ 1` observations.
    pub fn new(window: usize) -> SlidingMean {
        assert!(window >= 1, "sliding window must hold at least one observation");
        SlidingMean { window, buffer: VecDeque::new() }
    }
}

impl OnlinePredictor for SlidingMean {
    fn observe_pairs(&mut self, demand: &[f64]) {
        observe_window(&mut self.buffer, self.window, demand);
    }

    fn predict_pairs_into(&self, out: &mut [f64]) -> bool {
        if self.buffer.is_empty() {
            return false;
        }
        // Sum clamped at zero per element, then the scale clamped at zero —
        // the fold `axpy(1.0, ·)` + `scaled(1/len)` performs.
        out.fill(0.0);
        for row in &self.buffer {
            ops::accumulate_clamped(out, row);
        }
        let inv = 1.0 / self.buffer.len() as f64;
        ops::scale_clamped_in_place(out, inv);
        true
    }

    fn name(&self) -> &'static str {
        "sliding-mean"
    }
}

/// Element-wise maximum of the last `window` observations (the peak matrix
/// desensitization-based TE hedges against, formulated online).
#[derive(Debug)]
pub struct SlidingMax {
    window: usize,
    buffer: VecDeque<Vec<f64>>,
}

impl SlidingMax {
    /// A sliding-peak predictor over `window ≥ 1` observations.
    pub fn new(window: usize) -> SlidingMax {
        assert!(window >= 1, "sliding window must hold at least one observation");
        SlidingMax { window, buffer: VecDeque::new() }
    }
}

impl OnlinePredictor for SlidingMax {
    fn observe_pairs(&mut self, demand: &[f64]) {
        observe_window(&mut self.buffer, self.window, demand);
    }

    fn predict_pairs_into(&self, out: &mut [f64]) -> bool {
        let mut it = self.buffer.iter();
        let Some(first) = it.next() else {
            return false;
        };
        out.copy_from_slice(first);
        for row in it {
            ops::max_assign(out, row);
        }
        true
    }

    fn name(&self) -> &'static str {
        "sliding-max"
    }
}

/// Pushes `demand` into a bounded sliding window, recycling the evicted
/// column's allocation once the window is full (the steady state allocates
/// nothing).
fn observe_window(buffer: &mut VecDeque<Vec<f64>>, window: usize, demand: &[f64]) {
    if buffer.len() >= window {
        let mut recycled = buffer.pop_front().expect("window length checked above");
        recycled.copy_from_slice(demand);
        buffer.push_back(recycled);
    } else {
        buffer.push_back(demand.to_vec());
    }
}

/// Predictor selection, buildable from CLI flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorKind {
    /// [`LastValue`].
    LastValue,
    /// [`Ewma`] with the given smoothing factor.
    Ewma(f64),
    /// [`SlidingMean`] over the given window.
    SlidingMean(usize),
    /// [`SlidingMax`] over the given window.
    SlidingMax(usize),
}

impl PredictorKind {
    /// Instantiates the predictor.
    pub fn build(&self) -> Box<dyn OnlinePredictor> {
        match *self {
            PredictorKind::LastValue => Box::new(LastValue::new()),
            PredictorKind::Ewma(alpha) => Box::new(Ewma::new(alpha)),
            PredictorKind::SlidingMean(w) => Box::new(SlidingMean::new(w)),
            PredictorKind::SlidingMax(w) => Box::new(SlidingMax::new(w)),
        }
    }

    /// Parses a CLI spelling: `last`, `ewma` / `ewma:0.3`, `mean` /
    /// `mean:8`, `max` / `max:8` (window defaults to `default_window`).
    pub fn parse(spec: &str, default_window: usize) -> Result<PredictorKind, String> {
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        match head {
            "last" | "last-value" => Ok(PredictorKind::LastValue),
            "ewma" => {
                let alpha = match arg {
                    Some(a) => {
                        a.parse::<f64>().map_err(|_| format!("invalid EWMA factor '{a}'"))?
                    }
                    None => 0.3,
                };
                Ok(PredictorKind::Ewma(alpha))
            }
            "mean" | "sliding-mean" => {
                let w = match arg {
                    Some(a) => a.parse::<usize>().map_err(|_| format!("invalid window '{a}'"))?,
                    None => default_window,
                };
                Ok(PredictorKind::SlidingMean(w))
            }
            "max" | "sliding-max" | "peak" => {
                let w = match arg {
                    Some(a) => a.parse::<usize>().map_err(|_| format!("invalid window '{a}'"))?,
                    None => default_window,
                };
                Ok(PredictorKind::SlidingMax(w))
            }
            other => Err(format!(
                "unknown predictor '{other}' (expected last | ewma[:a] | mean[:w] | max[:w])"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(pairs: &[f64]) -> DemandMatrix {
        DemandMatrix::from_pairs(2, pairs).unwrap()
    }

    fn forecast(p: &dyn OnlinePredictor, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        assert!(p.predict_pairs_into(&mut out));
        out
    }

    #[test]
    fn last_value_tracks_the_latest_observation() {
        let mut p = LastValue::new();
        assert!(!p.predict_pairs_into(&mut [0.0, 0.0]));
        p.observe_pairs(&[1.0, 2.0]);
        p.observe_pairs(&[3.0, 4.0]);
        assert_eq!(forecast(&p, 2), vec![3.0, 4.0]);
    }

    #[test]
    fn ewma_blends_geometrically() {
        let mut p = Ewma::new(0.5);
        p.observe_pairs(&[4.0, 0.0]);
        p.observe_pairs(&[0.0, 8.0]);
        // state = 0.5*[4,0] + 0.5*[0,8] = [2,4]
        assert_eq!(forecast(&p, 2), vec![2.0, 4.0]);
        let mut one = Ewma::new(1.0);
        one.observe_pairs(&[4.0, 0.0]);
        one.observe_pairs(&[0.0, 8.0]);
        assert_eq!(forecast(&one, 2), vec![0.0, 8.0]);
    }

    #[test]
    fn sliding_predictors_match_their_batch_counterparts() {
        use figret_solvers::{predict, Predictor};
        let history = vec![dm(&[1.0, 10.0]), dm(&[3.0, 6.0]), dm(&[2.0, 8.0]), dm(&[4.0, 2.0])];
        let mut mean = SlidingMean::new(3);
        let mut max = SlidingMax::new(3);
        for m in &history {
            mean.observe(m);
            max.observe(m);
        }
        let tail = &history[1..];
        assert_eq!(forecast(&mean, 2), predict(tail, Predictor::WindowMean).flatten_pairs());
        assert_eq!(forecast(&max, 2), predict(tail, Predictor::WindowPeak).flatten_pairs());
    }

    #[test]
    fn window_eviction_forgets_old_observations() {
        let mut p = SlidingMax::new(2);
        p.observe_pairs(&[9.0, 0.0]);
        p.observe_pairs(&[1.0, 1.0]);
        p.observe_pairs(&[1.0, 2.0]);
        assert_eq!(forecast(&p, 2), vec![1.0, 2.0]);
    }

    #[test]
    fn column_forecasts_are_bit_identical_to_the_matrix_formulation() {
        // The historical predictors held DemandMatrix state and flattened on
        // prediction; the columnar reimplementation must reproduce those
        // forecasts bit for bit on a dense universe.
        let history = vec![dm(&[1.0, 10.0]), dm(&[3.0, 6.0]), dm(&[2.0, 8.0]), dm(&[4.0, 2.0])];
        let kinds = [
            PredictorKind::LastValue,
            PredictorKind::Ewma(0.3),
            PredictorKind::SlidingMean(3),
            PredictorKind::SlidingMax(3),
        ];
        for kind in kinds {
            let mut p = kind.build();
            let mut out = vec![0.0; 2];
            assert!(!p.predict_pairs_into(&mut out), "{}: empty predictor must refuse", p.name());
            // Matrix-state reference: fold with DemandMatrix ops, flatten last.
            let mut ewma_state: Option<DemandMatrix> = None;
            let mut window: VecDeque<DemandMatrix> = VecDeque::new();
            for m in &history {
                p.observe(m);
                assert!(p.predict_pairs_into(&mut out));
                match &mut ewma_state {
                    Some(s) => s.ewma_blend(0.3, m),
                    None => ewma_state = Some(m.clone()),
                }
                window.push_back(m.clone());
                if window.len() > 3 {
                    window.pop_front();
                }
                let reference = match kind {
                    PredictorKind::LastValue => m.flatten_pairs(),
                    PredictorKind::Ewma(_) => {
                        ewma_state.as_ref().expect("state set above").flatten_pairs()
                    }
                    PredictorKind::SlidingMean(_) => {
                        let mut acc = DemandMatrix::zeros(2);
                        for w in &window {
                            acc = acc.axpy(1.0, w);
                        }
                        acc.scaled(1.0 / window.len() as f64).flatten_pairs()
                    }
                    PredictorKind::SlidingMax(_) => {
                        let mut it = window.iter();
                        let mut acc = it.next().expect("window is non-empty").clone();
                        for w in it {
                            acc = acc.element_max(w);
                        }
                        acc.flatten_pairs()
                    }
                };
                for (a, b) in out.iter().zip(&reference) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{}: column forecast must be bit-identical",
                        p.name()
                    );
                }
            }
        }
    }

    #[test]
    fn kind_parse_round_trips() {
        assert_eq!(PredictorKind::parse("last", 8).unwrap(), PredictorKind::LastValue);
        assert_eq!(PredictorKind::parse("ewma:0.25", 8).unwrap(), PredictorKind::Ewma(0.25));
        assert_eq!(PredictorKind::parse("mean", 8).unwrap(), PredictorKind::SlidingMean(8));
        assert_eq!(PredictorKind::parse("max:4", 8).unwrap(), PredictorKind::SlidingMax(4));
        assert!(PredictorKind::parse("oracle", 8).is_err());
        assert!(PredictorKind::parse("ewma:x", 8).is_err());
        assert_eq!(PredictorKind::Ewma(0.25).build().name(), "ewma");
    }
}
