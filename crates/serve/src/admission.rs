//! Global admission: one update budget and one hysteresis policy shared by
//! every shard of a serving fleet (DESIGN.md §8).
//!
//! Each tick, shards that completed a [`crate::ServeController::propose`]
//! submit a [`ShardBid`] carrying their predicted MLUs.  The admission layer
//! applies the fleet-wide hysteresis gate to every bid, ranks the shards
//! that want to reconfigure by predicted-MLU regret (deterministically:
//! regret descending, shard index ascending on exact ties) and grants
//! updates until the *joint* sliding-window budget is spent.  This closes
//! the per-controller-budget gap: `N` shards under one
//! `UpdateBudget::per_window(m, w)` deploy at most `m` updates per `w`
//! ticks *in total*, exactly like a single controller would.
//!
//! Determinism: the ranking is a total order over bids (ties broken by the
//! unique shard index), so the granted set is invariant to the order bids
//! are submitted in — shard iteration order, thread interleavings and
//! fleet-internal scheduling cannot change the outcome.
//!
//! With one shard the layer reproduces the unsharded controller's gate
//! sequence bit for bit: the hysteresis formula, the eviction rule
//! (`oldest + window <= tick`) and the grant condition (`granted < max`)
//! are copied from [`crate::ServeController`]'s internal gates.

use std::collections::VecDeque;

use crate::controller::Proposal;
use crate::log::{Action, HoldReason};
use crate::policy::{ReconfigPolicy, UpdateBudget};

/// One shard's request to reconfigure at a fleet tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardBid {
    /// Stable shard index within the fleet (the tie-breaking key).
    pub shard: usize,
    /// Predicted MLU of the shard's deployed configuration on its forecast.
    pub predicted_mlu_deployed: f64,
    /// Predicted MLU of the shard's parked candidate on its forecast.
    pub predicted_mlu_candidate: f64,
}

impl ShardBid {
    /// Packages a controller's [`Proposal`] as a bid for shard `shard`.
    pub fn from_proposal(shard: usize, proposal: &Proposal) -> ShardBid {
        ShardBid {
            shard,
            predicted_mlu_deployed: proposal.predicted_mlu_deployed,
            predicted_mlu_candidate: proposal.predicted_mlu_candidate,
        }
    }

    /// Predicted-MLU regret of keeping the deployed configuration: the
    /// quantity bids are ranked by.
    pub fn regret(&self) -> f64 {
        self.predicted_mlu_deployed - self.predicted_mlu_candidate
    }
}

/// Aggregate admission counters over a fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Fleet ticks adjudicated.
    pub ticks: usize,
    /// Bids submitted (shards past warmup).
    pub bids: usize,
    /// Bids that passed the hysteresis gate.
    pub wants: usize,
    /// Updates granted.
    pub grants: usize,
    /// Bids held below the hysteresis threshold.
    pub holds_hysteresis: usize,
    /// Wanting bids held because the joint budget was spent.
    pub holds_budget: usize,
}

/// The fleet-wide admission state: shared hysteresis plus the joint
/// sliding-window update history.
#[derive(Debug, Clone)]
pub struct GlobalAdmission {
    hysteresis: f64,
    budget: Option<UpdateBudget>,
    /// Fleet ticks of granted updates inside the current window, oldest
    /// first (one entry per grant; only maintained under a budget).
    granted: VecDeque<usize>,
    stats: AdmissionStats,
}

impl GlobalAdmission {
    /// An admission layer with an explicit hysteresis threshold and joint
    /// budget (`None` = unlimited).
    pub fn new(hysteresis: f64, budget: Option<UpdateBudget>) -> GlobalAdmission {
        GlobalAdmission {
            hysteresis,
            budget,
            granted: VecDeque::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// Lifts the hysteresis and budget out of a single-controller policy
    /// (the fallback part stays with each shard).
    pub fn from_policy(policy: &ReconfigPolicy) -> GlobalAdmission {
        GlobalAdmission::new(policy.hysteresis, policy.budget)
    }

    /// Adjudicates one fleet tick.  `bids` may arrive in any order and must
    /// reference distinct shards; `actions` must hold one slot per fleet
    /// shard, prefilled with [`Action::Warmup`] (slots without a bid — still
    /// warming up — are left untouched).  Deterministic: the outcome depends
    /// only on the bid *set*, never on its order.
    pub fn admit(&mut self, tick: usize, bids: &[ShardBid], actions: &mut [Action]) {
        self.stats.ticks += 1;
        self.stats.bids += bids.len();
        // Evict grants that slid out of the window (same rule as the
        // unsharded controller's budget gate).
        if let Some(budget) = self.budget {
            while let Some(&oldest) = self.granted.front() {
                if oldest + budget.window <= tick {
                    self.granted.pop_front();
                } else {
                    break;
                }
            }
        }
        let mut wanting: Vec<&ShardBid> = Vec::with_capacity(bids.len());
        let mut seen = vec![false; actions.len()];
        for bid in bids {
            assert!(bid.shard < actions.len(), "bid for shard {} of {}", bid.shard, actions.len());
            assert!(!seen[bid.shard], "duplicate bid for shard {}", bid.shard);
            seen[bid.shard] = true;
            assert_eq!(
                actions[bid.shard],
                Action::Warmup,
                "shard {} already holds a non-warmup action",
                bid.shard
            );
            let wants = self.hysteresis <= 0.0
                || bid.predicted_mlu_deployed
                    > (1.0 + self.hysteresis) * bid.predicted_mlu_candidate;
            if wants {
                wanting.push(bid);
            } else {
                actions[bid.shard] = Action::Hold(HoldReason::BelowHysteresis);
                self.stats.holds_hysteresis += 1;
            }
        }
        self.stats.wants += wanting.len();
        // Total order: regret descending, shard index ascending on exact
        // (bit-equal) ties — invariant to submission order.
        wanting
            .sort_unstable_by(|a, b| b.regret().total_cmp(&a.regret()).then(a.shard.cmp(&b.shard)));
        let capacity =
            self.budget.map_or(usize::MAX, |b| b.max_updates.saturating_sub(self.granted.len()));
        for (rank, bid) in wanting.iter().enumerate() {
            if rank < capacity {
                actions[bid.shard] = Action::Update;
                if self.budget.is_some() {
                    self.granted.push_back(tick);
                }
                self.stats.grants += 1;
            } else {
                actions[bid.shard] = Action::Hold(HoldReason::BudgetExhausted);
                self.stats.holds_budget += 1;
            }
        }
    }

    /// Grants still inside the current sliding window (0 without a budget).
    pub fn granted_in_window(&self) -> usize {
        self.granted.len()
    }

    /// The joint budget, if any.
    pub fn budget(&self) -> Option<UpdateBudget> {
        self.budget
    }

    /// The shared hysteresis threshold.
    pub fn hysteresis(&self) -> f64 {
        self.hysteresis
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(shard: usize, deployed: f64, candidate: f64) -> ShardBid {
        ShardBid { shard, predicted_mlu_deployed: deployed, predicted_mlu_candidate: candidate }
    }

    #[test]
    fn ranks_by_regret_and_respects_the_joint_budget() {
        let mut adm = GlobalAdmission::new(0.0, Some(UpdateBudget::per_window(2, 8)));
        let bids = vec![bid(0, 0.5, 0.45), bid(1, 0.9, 0.5), bid(2, 0.8, 0.5)];
        let mut actions = vec![Action::Warmup; 3];
        adm.admit(0, &bids, &mut actions);
        // Regrets: shard1 0.4 > shard2 0.3 > shard0 0.05; budget 2.
        assert_eq!(actions[1], Action::Update);
        assert_eq!(actions[2], Action::Update);
        assert_eq!(actions[0], Action::Hold(HoldReason::BudgetExhausted));
        assert_eq!(adm.granted_in_window(), 2);
        let stats = adm.stats();
        assert_eq!((stats.bids, stats.wants, stats.grants, stats.holds_budget), (3, 3, 2, 1));
    }

    #[test]
    fn outcome_is_invariant_to_bid_order() {
        let bids = [bid(0, 0.7, 0.5), bid(1, 0.7, 0.5), bid(2, 0.9, 0.5), bid(3, 0.5, 0.5)];
        let mut reference: Option<Vec<Action>> = None;
        // All 4! = 24 permutations must produce the same per-shard actions.
        let mut order = vec![0, 1, 2, 3];
        for p in 0..24 {
            order.sort_unstable();
            for _ in 0..p {
                next_permutation(&mut order);
            }
            let permuted: Vec<ShardBid> = order.iter().map(|&i| bids[i]).collect();
            let mut adm = GlobalAdmission::new(0.01, Some(UpdateBudget::per_window(2, 4)));
            let mut actions = vec![Action::Warmup; 4];
            adm.admit(0, &permuted, &mut actions);
            match &reference {
                None => reference = Some(actions),
                Some(r) => assert_eq!(&actions, r, "permutation {order:?} diverged"),
            }
        }
        // Exact-tie regrets (shards 0 and 1) broke toward the lower index.
        let actions = reference.unwrap();
        assert_eq!(actions[2], Action::Update, "highest regret wins a slot");
        assert_eq!(actions[0], Action::Update, "tie broken toward the lower shard index");
        assert_eq!(actions[1], Action::Hold(HoldReason::BudgetExhausted));
        assert_eq!(actions[3], Action::Hold(HoldReason::BelowHysteresis));
    }

    fn next_permutation(v: &mut [usize]) {
        let n = v.len();
        if n < 2 {
            return;
        }
        let Some(i) = (0..n - 1).rev().find(|&i| v[i] < v[i + 1]) else {
            v.reverse();
            return;
        };
        let j = (i + 1..n).rev().find(|&j| v[j] > v[i]).unwrap();
        v.swap(i, j);
        v[i + 1..].reverse();
    }

    #[test]
    fn grants_slide_out_of_the_window() {
        let mut adm = GlobalAdmission::new(0.0, Some(UpdateBudget::per_window(1, 4)));
        for tick in 0..10 {
            let mut actions = vec![Action::Warmup; 1];
            adm.admit(tick, &[bid(0, 1.0, 0.5)], &mut actions);
            // One grant per 4-tick window: ticks 0, 4, 8 — the exact pattern
            // the unsharded controller's budget test asserts.
            if tick % 4 == 0 {
                assert_eq!(actions[0], Action::Update, "tick {tick}");
            } else {
                assert_eq!(actions[0], Action::Hold(HoldReason::BudgetExhausted), "tick {tick}");
            }
        }
    }

    #[test]
    fn hysteresis_holds_quiet_shards_without_spending_budget() {
        let mut adm = GlobalAdmission::new(0.5, Some(UpdateBudget::per_window(4, 4)));
        let mut actions = vec![Action::Warmup; 2];
        adm.admit(0, &[bid(0, 0.6, 0.5), bid(1, 0.9, 0.5)], &mut actions);
        assert_eq!(actions[0], Action::Hold(HoldReason::BelowHysteresis));
        assert_eq!(actions[1], Action::Update);
        assert_eq!(adm.granted_in_window(), 1);
    }

    #[test]
    fn shards_without_bids_stay_in_warmup() {
        let mut adm = GlobalAdmission::new(0.0, None);
        let mut actions = vec![Action::Warmup; 3];
        adm.admit(0, &[bid(1, 1.0, 0.5)], &mut actions);
        assert_eq!(actions[0], Action::Warmup);
        assert_eq!(actions[1], Action::Update);
        assert_eq!(actions[2], Action::Warmup);
    }

    #[test]
    #[should_panic(expected = "duplicate bid")]
    fn duplicate_bids_are_rejected() {
        let mut adm = GlobalAdmission::new(0.0, None);
        let mut actions = vec![Action::Warmup; 2];
        adm.admit(0, &[bid(1, 1.0, 0.5), bid(1, 1.0, 0.5)], &mut actions);
    }
}
