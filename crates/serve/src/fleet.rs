//! The sharded serving fleet: pod-partitioned controllers under one global
//! budget (DESIGN.md §8).
//!
//! A [`FleetController`] owns one [`ServeController`] per shard of a
//! [`figret_traffic::ShardPlan`].  Each fleet tick:
//!
//! 1. **Scatter**: the parent demand column is gathered into per-shard
//!    sub-columns along each shard's `parent_slots` map.
//! 2. **Propose** (data-parallel): every shard forecasts its sub-demand and
//!    computes a candidate configuration ([`ServeController::propose`]),
//!    returning a predicted-MLU bid.  Shards are moved through an owning
//!    `into_par_iter`, so each runs on its own thread with its own scratch —
//!    steady-state allocation-free, no shared mutable state.
//! 3. **Admit** (sequential): the [`GlobalAdmission`] layer ranks the bids
//!    and grants updates under the *joint* hysteresis + sliding-window
//!    budget (shard controllers run with `budget: None`; the fleet owns the
//!    update history).
//! 4. **Finish** (data-parallel): every shard applies its granted or held
//!    action and ingests its realized sub-demand
//!    ([`ServeController::finish_pairs`]).
//! 5. **Merge** (sequential, stable shard order): per-shard records append
//!    to per-shard logs, and the per-shard edge-load vectors — every
//!    restricted path set preserves the full edge universe — are summed in
//!    shard order and folded once into the exact global realized MLU.
//!
//! Determinism: shards are independent and individually deterministic, the
//! parallel phases preserve order, admission is invariant to bid order, and
//! the merge walks shards in stable plan order — so fleet logs and digests
//! are bit-identical at any `RAYON_NUM_THREADS`.  A single-shard fleet
//! replays the unsharded [`ServeController`] record for record.

use rayon::prelude::*;

use figret_solvers::SeriesStats;
use figret_te::{max_utilization_of_loads, PathSet};
use figret_telemetry::{Registry, Stopwatch};
use figret_traffic::{ShardPlan, ShardUniverse, SparseDemand};

use crate::admission::{AdmissionStats, GlobalAdmission, ShardBid};
use crate::controller::{Proposal, ServeController, StepOutcome};
use crate::log::{Action, ServeLog};
use crate::policy::ReconfigPolicy;
use crate::predictor::PredictorKind;
use crate::telemetry::FleetTelemetry;

/// One shard of the fleet: a controller over a restricted pair universe plus
/// the gather scratch for its sub-columns.
#[derive(Debug)]
struct FleetShard {
    controller: ServeController,
    universe: ShardUniverse,
    /// Gathered sub-column (one value per shard pair), reused every tick.
    column: Vec<f64>,
}

/// The merged result of one fleet tick.
#[derive(Debug, Clone)]
pub struct FleetTickOutcome {
    /// Fleet tick index (every shard ticks once per fleet tick).
    pub tick: usize,
    /// Exact global realized MLU: per-shard edge loads summed in stable
    /// shard order over the shared edge universe, folded once.
    pub global_mlu: f64,
    /// Action taken by each shard, in stable shard order.
    pub actions: Vec<Action>,
    /// Decision-phase wall-clock seconds of each shard (propose + apply),
    /// in stable shard order.
    pub decision_seconds: Vec<f64>,
}

/// A pod-partitioned serving fleet under one global admission policy; see
/// the module docs.
pub struct FleetController {
    shards: Vec<FleetShard>,
    /// Per-shard decision logs, parallel to `shards`.
    logs: Vec<ServeLog>,
    admission: GlobalAdmission,
    edge_capacities: Vec<f64>,
    /// Summed per-shard edge loads, reused every tick.
    global_loads: Vec<f64>,
    parent_pairs: usize,
    tick: usize,
    /// Fleet-level phase spans (DESIGN.md §10); `None` records nothing.
    /// Shard controllers carry their own registries — a snapshot merges
    /// them in stable shard order.
    telemetry: Option<FleetTelemetry>,
}

impl std::fmt::Debug for FleetController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetController")
            .field("shards", &self.shards.len())
            .field("parent_pairs", &self.parent_pairs)
            .field("tick", &self.tick)
            .finish()
    }
}

impl FleetController {
    /// A fleet of warm-started-LP controllers, one per shard of `plan`.
    /// Each shard gets the restriction of `paths` to its pair universe (its
    /// own LP template and basis), a fresh `predictor` instance, and a copy
    /// of `policy` with the budget stripped — the hysteresis and budget of
    /// `policy` move into the shared [`GlobalAdmission`] layer.
    pub fn lp(
        plan: &ShardPlan,
        paths: &PathSet,
        window: usize,
        predictor: PredictorKind,
        policy: &ReconfigPolicy,
    ) -> FleetController {
        let controllers = plan
            .shards()
            .iter()
            .map(|shard| {
                let (restricted, _) = paths.restrict_to(shard.active());
                let mut c = ServeController::lp(
                    &restricted,
                    window,
                    predictor.build(),
                    ReconfigPolicy { budget: None, ..policy.clone() },
                );
                c.bind_universe(shard.active());
                c
            })
            .collect();
        FleetController::from_controllers(plan, controllers, policy)
    }

    /// A fleet over pre-built shard controllers (learned shards, custom
    /// predictors), in plan order.  Each controller must cover exactly its
    /// shard's pair universe and must carry no local update budget — the
    /// joint budget and hysteresis of `policy` live in the admission layer.
    pub fn from_controllers(
        plan: &ShardPlan,
        controllers: Vec<ServeController>,
        policy: &ReconfigPolicy,
    ) -> FleetController {
        assert_eq!(
            controllers.len(),
            plan.num_shards(),
            "one controller per plan shard is required"
        );
        assert!(!controllers.is_empty(), "a fleet needs at least one shard");
        let mut shards = Vec::with_capacity(controllers.len());
        let mut edge_capacities: Vec<f64> = Vec::new();
        for (controller, universe) in controllers.into_iter().zip(plan.shards()) {
            assert_eq!(
                controller.num_pairs(),
                universe.len(),
                "shard '{}': controller must cover its pair universe",
                universe.label()
            );
            assert!(
                controller.policy().budget.is_none(),
                "shard '{}': fleet shards must not carry a local update budget",
                universe.label()
            );
            let capacities = controller.paths().edge_capacities();
            if edge_capacities.is_empty() {
                edge_capacities = capacities.to_vec();
            } else {
                assert_eq!(
                    edge_capacities,
                    capacities,
                    "shard '{}': every shard must share the edge universe",
                    universe.label()
                );
            }
            let column = Vec::with_capacity(universe.len());
            shards.push(FleetShard { controller, universe: universe.clone(), column });
        }
        let num_edges = edge_capacities.len();
        FleetController {
            logs: vec![ServeLog::new(); shards.len()],
            shards,
            admission: GlobalAdmission::from_policy(policy),
            edge_capacities,
            global_loads: vec![0.0; num_edges],
            parent_pairs: plan.parent().len(),
            tick: 0,
            telemetry: None,
        }
    }

    /// Arms out-of-band telemetry on the fleet *and* on every shard
    /// controller: the fleet records its five tick-phase spans, shards
    /// record the full serving taxonomy.  Metrics are never folded into the
    /// fleet digests — an armed run digests identically to a disarmed one.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(FleetTelemetry::new());
        }
        for s in &mut self.shards {
            s.controller.enable_telemetry();
        }
    }

    /// A merged snapshot of the fleet registry plus every shard registry,
    /// merged in stable shard order (bit-identical at any thread count),
    /// when telemetry is armed.
    pub fn telemetry_snapshot(&self) -> Option<Registry> {
        let mut merged = self.telemetry.as_ref()?.registry().clone();
        for s in &self.shards {
            let shard = s.controller.telemetry_registry().expect("arming covers every shard");
            merged.merge_from(shard);
        }
        Some(merged)
    }

    /// Ingests a parent demand column (one value per parent pair, slot
    /// order) into every shard without a decision tick — fleet warmup.
    pub fn observe_column(&mut self, parent_column: &[f64]) {
        assert_eq!(
            parent_column.len(),
            self.parent_pairs,
            "one demand value per parent pair is required"
        );
        for s in &mut self.shards {
            let mut column = std::mem::take(&mut s.column);
            s.universe.gather_into(parent_column, &mut column);
            s.controller.observe_pairs(&column);
            s.column = column;
        }
    }

    /// Sparse adapter for [`FleetController::observe_column`]: the demand
    /// must live on the plan's parent universe.
    pub fn observe_sparse(&mut self, demand: &SparseDemand) {
        self.observe_column(demand.values());
    }

    /// Advances every shard by one tick; see the module docs.  `parent_column`
    /// is the realized demand over the parent universe, arriving *after* the
    /// decisions, exactly as in [`ServeController::step_pairs`].
    pub fn step_column(&mut self, parent_column: &[f64]) -> FleetTickOutcome {
        assert_eq!(
            parent_column.len(),
            self.parent_pairs,
            "one demand value per parent pair is required"
        );
        let tick = self.tick;
        // Armed-only phase spans, indexing FLEET_PHASES in execution order;
        // a disarmed fleet takes no stopwatch reads at all.
        let mut phase_watch = self.telemetry.is_some().then(Stopwatch::start);
        let mut phase = 0;
        let mut lap = |tel: &mut Option<FleetTelemetry>, watch: &mut Option<Stopwatch>| {
            if let Some(watch) = watch.as_mut() {
                let seconds = watch.lap();
                tel.as_mut().expect("a live stopwatch implies telemetry").on_phase(phase, seconds);
            }
            phase += 1;
        };
        // Scatter: gather each shard's sub-column from the parent column.
        for s in &mut self.shards {
            let mut column = std::mem::take(&mut s.column);
            s.universe.gather_into(parent_column, &mut column);
            s.column = column;
        }
        lap(&mut self.telemetry, &mut phase_watch);
        // Propose (data-parallel): shards move onto worker threads and come
        // back in stable order with their bids.
        let shards = std::mem::take(&mut self.shards);
        let proposed: Vec<(FleetShard, Option<Proposal>)> = shards
            .into_par_iter()
            .map(|mut s| {
                let proposal = s.controller.propose();
                (s, proposal)
            })
            .collect();
        lap(&mut self.telemetry, &mut phase_watch);
        // Admit (sequential): rank the bids under the joint policy.
        let mut bids = Vec::with_capacity(proposed.len());
        for (shard, (_, proposal)) in proposed.iter().enumerate() {
            if let Some(p) = proposal {
                bids.push(ShardBid::from_proposal(shard, p));
            }
        }
        let mut actions = vec![Action::Warmup; proposed.len()];
        self.admission.admit(tick, &bids, &mut actions);
        lap(&mut self.telemetry, &mut phase_watch);
        // Finish (data-parallel): apply the granted/held actions and ingest
        // the realized sub-demands.
        let work: Vec<(FleetShard, Action)> =
            proposed.into_iter().zip(&actions).map(|((s, _), &action)| (s, action)).collect();
        let finished: Vec<(FleetShard, StepOutcome)> = work
            .into_par_iter()
            .map(|(mut s, action)| {
                let outcome = s.controller.finish_pairs(&s.column, action);
                (s, outcome)
            })
            .collect();
        lap(&mut self.telemetry, &mut phase_watch);
        // Merge in stable shard order: logs, latencies, and the global MLU
        // from summed per-shard edge loads.
        self.global_loads.clear();
        self.global_loads.resize(self.edge_capacities.len(), 0.0);
        let mut decision_seconds = Vec::with_capacity(finished.len());
        for ((s, outcome), log) in finished.into_iter().zip(&mut self.logs) {
            for (g, l) in self.global_loads.iter_mut().zip(s.controller.last_realized_loads()) {
                *g += l;
            }
            decision_seconds.push(outcome.decision_seconds);
            log.record_outcome(&outcome);
            self.shards.push(s);
        }
        let global_mlu = max_utilization_of_loads(&self.global_loads, &self.edge_capacities);
        lap(&mut self.telemetry, &mut phase_watch);
        if let Some(tel) = self.telemetry.as_mut() {
            tel.on_tick();
        }
        self.tick += 1;
        FleetTickOutcome { tick, global_mlu, actions, decision_seconds }
    }

    /// Sparse adapter for [`FleetController::step_column`]: the demand must
    /// live on the plan's parent universe.
    pub fn step_sparse(&mut self, realized: &SparseDemand) -> FleetTickOutcome {
        self.step_column(realized.values())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of pairs in the parent universe (the per-tick decision count).
    pub fn total_pairs(&self) -> usize {
        self.parent_pairs
    }

    /// Pairs owned by each shard, in stable shard order.
    pub fn shard_pairs(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.universe.len()).collect()
    }

    /// Shard labels, in stable shard order.
    pub fn shard_labels(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.universe.label()).collect()
    }

    /// Fleet ticks taken so far.
    pub fn ticks(&self) -> usize {
        self.tick
    }

    /// Per-shard decision logs, in stable shard order.
    pub fn logs(&self) -> &[ServeLog] {
        &self.logs
    }

    /// Consumes the fleet and hands over the per-shard logs, in stable
    /// shard order (harnesses keep the logs past the fleet's lifetime).
    pub fn into_logs(self) -> Vec<ServeLog> {
        self.logs
    }

    /// Aggregate admission counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// The shared admission layer.
    pub fn admission(&self) -> &GlobalAdmission {
        &self.admission
    }

    /// LP solver work summed over every shard.
    pub fn lp_stats(&self) -> SeriesStats {
        let mut merged = SeriesStats::default();
        for s in &self.shards {
            merged.merge(s.controller.lp_stats());
        }
        merged
    }

    /// How many shards are currently fallen back to the LP (terminal
    /// without recovery; shards with recovery armed can promote their way
    /// back out).
    pub fn fell_back_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.controller.fell_back()).count()
    }

    /// How many shards serve a promoted challenger (model generation > 0).
    pub fn promoted_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.controller.model_generation() > 0).count()
    }

    /// Recovery counters summed over every shard.
    pub fn recovery_stats(&self) -> crate::recovery::RecoveryStats {
        let mut total = crate::recovery::RecoveryStats::default();
        for s in &self.shards {
            let stats = s.controller.recovery_stats();
            total.retrains += stats.retrains;
            total.retrain_seconds += stats.retrain_seconds;
            total.retrain_samples += stats.retrain_samples;
            total.promotions += stats.promotions;
            total.demotions += stats.demotions;
            total.detector_trips += stats.detector_trips;
        }
        total
    }

    /// Deployed updates summed over every shard log.
    pub fn update_count(&self) -> usize {
        self.logs.iter().map(ServeLog::update_count).sum()
    }

    /// Fleet digest: for a single shard, exactly the shard log's digest (a
    /// one-shard fleet *is* the unsharded controller, and CI compares the
    /// two directly); for several shards, an FNV-1a fold of the per-shard
    /// digests in stable shard order.
    pub fn digest(&self) -> u64 {
        FleetController::fold(self.logs.iter().map(ServeLog::digest))
    }

    /// Decision-only fleet digest (same structure as
    /// [`FleetController::digest`] over [`ServeLog::decision_digest`]).
    pub fn decision_digest(&self) -> u64 {
        FleetController::fold(self.logs.iter().map(ServeLog::decision_digest))
    }

    fn fold(mut parts: impl ExactSizeIterator<Item = u64>) -> u64 {
        if parts.len() == 1 {
            return parts.next().expect("length checked above");
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for part in parts {
            for b in part.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FallbackPolicy, UpdateBudget};
    use crate::predictor::LastValue;
    use figret_topology::{Topology, TopologySpec};
    use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
    use figret_traffic::{ActivePairs, TrafficTrace};
    use std::sync::Arc;

    fn pod_setup(snapshots: usize) -> (PathSet, TrafficTrace, Arc<ActivePairs>) {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let trace =
            pod_trace(&g, &PodTrafficConfig { num_snapshots: snapshots, ..Default::default() });
        let active = Arc::new(ActivePairs::all(g.num_nodes()));
        (ps, trace, active)
    }

    fn policy() -> ReconfigPolicy {
        ReconfigPolicy {
            hysteresis: 0.05,
            budget: Some(UpdateBudget::per_window(2, 6)),
            fallback: FallbackPolicy::disabled(),
        }
    }

    #[test]
    fn single_shard_fleet_replays_the_unsharded_controller() {
        let (ps, trace, active) = pod_setup(20);
        let plan = ShardPlan::single(&active);
        let mut fleet = FleetController::lp(&plan, &ps, 2, PredictorKind::LastValue, &policy());
        let mut solo = ServeController::lp(&ps, 2, Box::new(LastValue::new()), policy());
        let mut solo_log = ServeLog::new();
        for t in 0..trace.len() {
            let column = trace.matrix(t).flatten_pairs();
            if t < 2 {
                fleet.observe_column(&column);
                solo.observe_pairs(&column);
            } else {
                fleet.step_column(&column);
                let out = solo.step_pairs(&column);
                solo_log.push(out.record, out.decision_seconds);
            }
        }
        assert!(solo_log.update_count() > 0, "the comparison must exercise real updates");
        assert_eq!(fleet.logs()[0].records, solo_log.records);
        assert_eq!(fleet.digest(), solo_log.digest());
        assert_eq!(fleet.decision_digest(), solo_log.decision_digest());
    }

    #[test]
    fn fleet_respects_the_joint_budget_and_merges_deterministically() {
        let (ps, trace, active) = pod_setup(24);
        let plan = ShardPlan::source_blocks(&active, trace.num_nodes(), 2);
        assert_eq!(plan.num_shards(), 2);
        let run = || {
            let mut fleet = FleetController::lp(&plan, &ps, 2, PredictorKind::LastValue, &policy());
            for t in 0..trace.len() {
                let column = trace.matrix(t).flatten_pairs();
                if t < 2 {
                    fleet.observe_column(&column);
                } else {
                    let out = fleet.step_column(&column);
                    assert!(out.global_mlu.is_finite() && out.global_mlu > 0.0);
                    assert_eq!(out.actions.len(), 2);
                }
            }
            fleet
        };
        let fleet = run();
        assert!(fleet.update_count() > 0, "the run must exercise real updates");
        // Joint budget: across both shards, every 6-tick window holds at
        // most 2 updates.
        let budget = policy().budget.unwrap();
        let ticks = fleet.ticks();
        for start in 0..ticks {
            let in_window: usize = fleet
                .logs()
                .iter()
                .flat_map(|log| &log.records)
                .filter(|r| {
                    r.action == Action::Update && r.tick >= start && r.tick < start + budget.window
                })
                .count();
            assert!(
                in_window <= budget.max_updates,
                "window [{start}, {}) holds {in_window} updates",
                start + budget.window
            );
        }
        // Bit-identical replay.
        let again = run();
        assert_eq!(fleet.digest(), again.digest());
        assert_eq!(fleet.admission_stats(), again.admission_stats());
    }

    #[test]
    fn global_mlu_merges_shard_loads_exactly() {
        let (ps, trace, active) = pod_setup(16);
        let plan = ShardPlan::source_blocks(&active, trace.num_nodes(), 3);
        let always = ReconfigPolicy::always_update();
        let mut fleet = FleetController::lp(&plan, &ps, 2, PredictorKind::LastValue, &always);
        let single = ShardPlan::single(&active);
        let mut solo = FleetController::lp(&single, &ps, 2, PredictorKind::LastValue, &always);
        for t in 0..trace.len() {
            let column = trace.matrix(t).flatten_pairs();
            if t < 2 {
                fleet.observe_column(&column);
                solo.observe_column(&column);
            } else {
                let out = fleet.step_column(&column);
                assert!(out.global_mlu.is_finite() && out.global_mlu > 0.0);
                // One shard: the merged global MLU is the realized MLU of
                // the single controller, bit for bit (same loads, same fold).
                let s = solo.step_column(&column);
                let record_mlu = solo.logs()[0].records.last().unwrap().realized_mlu;
                assert_eq!(s.global_mlu.to_bits(), record_mlu.to_bits());
                // Per-shard LPs can beat or trail the joint LP on individual
                // links, but both serve the same total demand on the same
                // edge universe — only sanity bounds relate the two.
                assert!(out.global_mlu <= 10.0 * s.global_mlu + 1.0);
            }
        }
    }
}
