//! Shadow-mode challengers: retrained models auditioning for promotion.
//!
//! While a [`crate::ServeController`] is degraded (serving warm LP
//! re-solves), its [`crate::RecoveryManager`] trains challenger models on
//! the observed-demand window.  A challenger never serves traffic directly:
//! it runs in *shadow mode*, producing a candidate on every fallback tick
//! that is evaluated against the same forecast as the live LP candidate.
//! Each audit the challenger's predicted MLU stays within the promotion
//! margin of the LP's counts as a win; `promotion_patience` consecutive
//! wins promote it to the live model (and reset the degradation state), a
//! single loss resets the streak.  Promotion therefore requires sustained
//! evidence, mirroring how the fallback itself required `patience`
//! consecutive degraded audits.

use figret::FigretModel;
use figret_te::{PathSet, TeConfig};

/// A challenger model plus its audit streak; see the module docs.
#[derive(Debug)]
pub struct ShadowModel {
    model: FigretModel,
    wins: usize,
    generation: u64,
}

impl ShadowModel {
    /// Wraps a freshly trained challenger.  `generation` identifies the
    /// retraining round that produced it (monotone per controller).
    pub fn new(model: FigretModel, generation: u64) -> ShadowModel {
        ShadowModel { model, wins: 0, generation }
    }

    /// Consecutive audit wins so far.
    pub fn wins(&self) -> usize {
        self.wins
    }

    /// The retraining round that produced this challenger.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The challenger's configuration for the given history window (the
    /// shadow forward pass, through the f64 reference graph).
    pub fn candidate(&mut self, paths: &PathSet, history: &[Vec<f64>]) -> TeConfig {
        self.model.predict_flat(paths, history)
    }

    /// Records one audit outcome: a win extends the streak, a loss resets
    /// it.  Returns the updated streak.
    pub fn record_audit(&mut self, won: bool) -> usize {
        self.wins = if won { self.wins + 1 } else { 0 };
        self.wins
    }

    /// Unwraps the trained model (on promotion).
    pub fn into_model(self) -> FigretModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret::FigretConfig;
    use figret_topology::{Topology, TopologySpec};

    #[test]
    fn audit_streak_resets_on_a_loss() {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let config = FigretConfig { history_window: 2, ..FigretConfig::fast_test() };
        let model = FigretModel::new(&ps, &vec![0.0; ps.num_pairs()], config);
        let mut shadow = ShadowModel::new(model, 7);
        assert_eq!(shadow.generation(), 7);
        assert_eq!(shadow.record_audit(true), 1);
        assert_eq!(shadow.record_audit(true), 2);
        assert_eq!(shadow.record_audit(false), 0);
        assert_eq!(shadow.record_audit(true), 1);
        let history = vec![vec![1.0; ps.num_pairs()]; 2];
        let cfg = shadow.candidate(&ps, &history);
        assert!(cfg.is_valid(&ps));
        let _model = shadow.into_model();
    }
}
