//! Serving-side telemetry wiring (DESIGN.md §10): pre-registered metric
//! handles for the controller and fleet hot paths.
//!
//! All names are registered once when telemetry is armed
//! ([`crate::ServeController::enable_telemetry`]); every per-tick
//! recording is an index operation on the [`Registry`] — no hashing, no
//! allocation, in keeping with the decision loop's zero-alloc steady
//! state.  Telemetry is strictly out-of-band: nothing recorded here is
//! folded into the decision digests, and a disarmed controller takes no
//! extra `Instant::now()` call on the hot path.

use figret_lp::SolveStats;
use figret_telemetry::{CounterId, GaugeId, HistogramId, Registry};

use crate::log::{Action, HoldReason, Transition};

/// The fleet's five tick phases, in execution order (DESIGN.md §8).
pub const FLEET_PHASES: [&str; 5] = ["scatter", "propose", "admission", "finish", "merge"];

/// Pre-registered metric handles for one [`crate::ServeController`].
#[derive(Debug)]
pub struct ServeTelemetry {
    registry: Registry,
    // Tick outcome counters.
    ticks: CounterId,
    updates: CounterId,
    holds_hysteresis: CounterId,
    holds_budget: CounterId,
    warmups: CounterId,
    // Decision-phase spans.
    decision_seconds: HistogramId,
    predict_seconds: HistogramId,
    candidate_model_seconds: HistogramId,
    candidate_lp_seconds: HistogramId,
    mlu_eval_seconds: HistogramId,
    finish_seconds: HistogramId,
    // LP solver work (per template re-solve).
    lp_solves: CounterId,
    lp_warm_solves: CounterId,
    lp_phase1_pivots: CounterId,
    lp_phase2_pivots: CounterId,
    lp_reinversions: CounterId,
    lp_solve_seconds: HistogramId,
    lp_phase1_seconds: HistogramId,
    lp_phase2_seconds: HistogramId,
    lp_factor_seconds: HistogramId,
    // Recovery ladder.
    transition_plan_retired: CounterId,
    transition_degraded: CounterId,
    transition_retrain_started: CounterId,
    transition_promoted: CounterId,
    transition_demoted: CounterId,
    retrains: CounterId,
    retrain_seconds: HistogramId,
    shadow_wins: CounterId,
    shadow_losses: CounterId,
    shadow_audit_seconds: HistogramId,
    cusum_level: GaugeId,
}

impl ServeTelemetry {
    /// Registers the full serving metric taxonomy.
    pub fn new() -> ServeTelemetry {
        let mut r = Registry::new();
        ServeTelemetry {
            ticks: r.counter("figret_serve_ticks_total"),
            updates: r.counter("figret_serve_updates_total"),
            holds_hysteresis: r.counter("figret_serve_holds_total{reason=\"hysteresis\"}"),
            holds_budget: r.counter("figret_serve_holds_total{reason=\"budget\"}"),
            warmups: r.counter("figret_serve_warmup_ticks_total"),
            decision_seconds: r.histogram("figret_serve_decision_seconds"),
            predict_seconds: r.histogram("figret_serve_predict_seconds"),
            candidate_model_seconds: r
                .histogram("figret_serve_candidate_seconds{engine=\"model\"}"),
            candidate_lp_seconds: r.histogram("figret_serve_candidate_seconds{engine=\"lp\"}"),
            mlu_eval_seconds: r.histogram("figret_serve_mlu_eval_seconds"),
            finish_seconds: r.histogram("figret_serve_finish_seconds"),
            lp_solves: r.counter("figret_lp_solves_total"),
            lp_warm_solves: r.counter("figret_lp_warm_solves_total"),
            lp_phase1_pivots: r.counter("figret_lp_phase1_pivots_total"),
            lp_phase2_pivots: r.counter("figret_lp_phase2_pivots_total"),
            lp_reinversions: r.counter("figret_lp_reinversions_total"),
            lp_solve_seconds: r.histogram("figret_lp_solve_seconds"),
            lp_phase1_seconds: r.histogram("figret_lp_phase1_seconds"),
            lp_phase2_seconds: r.histogram("figret_lp_phase2_seconds"),
            lp_factor_seconds: r.histogram("figret_lp_factor_seconds"),
            transition_plan_retired: r
                .counter("figret_recovery_transitions_total{kind=\"plan_retired\"}"),
            transition_degraded: r.counter("figret_recovery_transitions_total{kind=\"degraded\"}"),
            transition_retrain_started: r
                .counter("figret_recovery_transitions_total{kind=\"retrain_started\"}"),
            transition_promoted: r.counter("figret_recovery_transitions_total{kind=\"promoted\"}"),
            transition_demoted: r.counter("figret_recovery_transitions_total{kind=\"demoted\"}"),
            retrains: r.counter("figret_recovery_retrains_total"),
            retrain_seconds: r.histogram("figret_recovery_retrain_seconds"),
            shadow_wins: r.counter("figret_recovery_shadow_audits_total{result=\"win\"}"),
            shadow_losses: r.counter("figret_recovery_shadow_audits_total{result=\"loss\"}"),
            shadow_audit_seconds: r.histogram("figret_recovery_shadow_audit_seconds"),
            cusum_level: r.gauge("figret_recovery_cusum_level"),
            registry: r,
        }
    }

    /// The backing registry (for snapshots, sinks and merging).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records the predictor span of a propose phase.
    pub fn on_predict(&mut self, seconds: f64) {
        self.registry.observe(self.predict_seconds, seconds);
    }

    /// Records the candidate-computation span, attributed to the engine
    /// that produced it (the LP sub-span is additionally broken out by
    /// [`ServeTelemetry::on_lp_solve`]).
    pub fn on_candidate(&mut self, source: crate::log::DecisionSource, seconds: f64) {
        let id = match source {
            crate::log::DecisionSource::Model => self.candidate_model_seconds,
            crate::log::DecisionSource::LpWarm => self.candidate_lp_seconds,
        };
        self.registry.observe(id, seconds);
    }

    /// Records the predicted-MLU evaluation span of a propose phase.
    pub fn on_mlu_eval(&mut self, seconds: f64) {
        self.registry.observe(self.mlu_eval_seconds, seconds);
    }

    /// Records one finished tick: the action outcome, the measured decision
    /// latency (decided ticks only) and any ladder transitions it produced.
    pub fn on_tick(
        &mut self,
        action: Action,
        decision_seconds: f64,
        decided: bool,
        transitions: &[Transition],
    ) {
        self.registry.inc(self.ticks);
        let counter = match action {
            Action::Warmup => self.warmups,
            Action::Hold(HoldReason::BelowHysteresis) => self.holds_hysteresis,
            Action::Hold(HoldReason::BudgetExhausted) => self.holds_budget,
            Action::Update => self.updates,
        };
        self.registry.inc(counter);
        if decided {
            self.registry.observe(self.decision_seconds, decision_seconds);
        }
        for &t in transitions {
            let counter = match t {
                Transition::PlanRetired => self.transition_plan_retired,
                Transition::Degraded => self.transition_degraded,
                Transition::RetrainStarted => self.transition_retrain_started,
                Transition::Promoted => self.transition_promoted,
                Transition::Demoted => self.transition_demoted,
            };
            self.registry.inc(counter);
        }
    }

    /// Records the apply/ingest span of a finish phase.
    pub fn on_finish(&mut self, seconds: f64) {
        self.registry.observe(self.finish_seconds, seconds);
    }

    /// Records one LP template re-solve: the measured wall time plus the
    /// solver's own counters and phase spans.
    pub fn on_lp_solve(&mut self, stats: &SolveStats, seconds: f64) {
        self.registry.inc(self.lp_solves);
        if stats.warm_started {
            self.registry.inc(self.lp_warm_solves);
        }
        self.registry.add(self.lp_phase1_pivots, stats.phase1_iterations as u64);
        self.registry.add(self.lp_phase2_pivots, stats.phase2_iterations as u64);
        self.registry.add(self.lp_reinversions, stats.refactorizations as u64);
        self.registry.observe(self.lp_solve_seconds, seconds);
        self.registry.observe(self.lp_phase1_seconds, stats.phase1_seconds);
        self.registry.observe(self.lp_phase2_seconds, stats.phase2_seconds);
        self.registry.observe(self.lp_factor_seconds, stats.factor_seconds);
    }

    /// Records one challenger retraining round.
    pub fn on_retrain(&mut self, seconds: f64) {
        self.registry.inc(self.retrains);
        self.registry.observe(self.retrain_seconds, seconds);
    }

    /// Records one shadow audit (challenger vs. warm LP).
    pub fn on_shadow_audit(&mut self, won: bool, seconds: f64) {
        self.registry.inc(if won { self.shadow_wins } else { self.shadow_losses });
        self.registry.observe(self.shadow_audit_seconds, seconds);
    }

    /// Publishes the CUSUM drift statistic after an error observation.
    pub fn set_cusum_level(&mut self, level: f64) {
        self.registry.set(self.cusum_level, level);
    }
}

impl Default for ServeTelemetry {
    fn default() -> Self {
        ServeTelemetry::new()
    }
}

/// Pre-registered metric handles for one [`crate::FleetController`]: the
/// five tick-phase spans plus the fleet tick counter.  Shard controllers
/// carry their own [`ServeTelemetry`]; a snapshot merges them in stable
/// shard order.
#[derive(Debug)]
pub struct FleetTelemetry {
    registry: Registry,
    ticks: CounterId,
    phases: [HistogramId; 5],
}

impl FleetTelemetry {
    /// Registers the fleet metric taxonomy.
    pub fn new() -> FleetTelemetry {
        let mut r = Registry::new();
        let ticks = r.counter("figret_fleet_ticks_total");
        let phases = FLEET_PHASES
            .map(|phase| r.histogram(&format!("figret_fleet_phase_seconds{{phase=\"{phase}\"}}")));
        FleetTelemetry { registry: r, ticks, phases }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one phase span; `phase` indexes [`FLEET_PHASES`].
    pub fn on_phase(&mut self, phase: usize, seconds: f64) {
        self.registry.observe(self.phases[phase], seconds);
    }

    /// Counts one fleet tick.
    pub fn on_tick(&mut self) {
        self.registry.inc(self.ticks);
    }
}

impl Default for FleetTelemetry {
    fn default() -> Self {
        FleetTelemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_taxonomy_registers_and_records() {
        let mut t = ServeTelemetry::new();
        t.on_predict(1e-6);
        t.on_candidate(crate::log::DecisionSource::Model, 2e-6);
        t.on_candidate(crate::log::DecisionSource::LpWarm, 4e-5);
        t.on_mlu_eval(3e-6);
        t.on_tick(Action::Update, 1e-5, true, &[Transition::Degraded]);
        t.on_tick(Action::Warmup, 0.0, false, &[]);
        t.on_lp_solve(&SolveStats { warm_started: true, ..Default::default() }, 5e-5);
        t.on_retrain(0.2);
        t.on_shadow_audit(true, 1e-4);
        t.set_cusum_level(0.125);
        let r = t.registry();
        assert_eq!(r.counter_by_name("figret_serve_ticks_total"), Some(2));
        assert_eq!(r.counter_by_name("figret_serve_updates_total"), Some(1));
        assert_eq!(r.counter_by_name("figret_serve_warmup_ticks_total"), Some(1));
        assert_eq!(r.counter_by_name("figret_lp_warm_solves_total"), Some(1));
        assert_eq!(
            r.counter_by_name("figret_recovery_transitions_total{kind=\"degraded\"}"),
            Some(1)
        );
        assert_eq!(r.gauge_by_name("figret_recovery_cusum_level"), Some(0.125));
        assert_eq!(r.histogram_by_name("figret_serve_decision_seconds").unwrap().count(), 1);
        // Warmup ticks do not pollute the decision latency histogram.
        let text = figret_telemetry::exposition(r);
        figret_telemetry::lint_exposition(&text).expect("serve taxonomy lints clean");
    }

    #[test]
    fn fleet_taxonomy_covers_every_phase() {
        let mut t = FleetTelemetry::new();
        t.on_tick();
        for phase in 0..FLEET_PHASES.len() {
            t.on_phase(phase, 1e-4);
        }
        for phase in FLEET_PHASES {
            let name = format!("figret_fleet_phase_seconds{{phase=\"{phase}\"}}");
            assert_eq!(t.registry().histogram_by_name(&name).unwrap().count(), 1, "{phase}");
        }
        let text = figret_telemetry::exposition(t.registry());
        figret_telemetry::lint_exposition(&text).expect("fleet taxonomy lints clean");
    }
}
