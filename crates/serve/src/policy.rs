//! Reconfiguration policies: when is pushing a new configuration worth it?
//!
//! Production TE controllers do not redeploy on every snapshot: each update
//! costs switch-table churn and risks transient loops, so updates are rate
//! limited and gated on expected benefit (cf. *Adaptive Robust Traffic
//! Engineering in SDN*, which studies exactly this reconfigure-vs-stability
//! trade-off).  [`ReconfigPolicy`] bundles the three gates the
//! [`crate::ServeController`] applies, in order:
//!
//! 1. **Hysteresis** on predicted-MLU regret — hold unless the deployed
//!    configuration is predicted to be at least `1 + hysteresis` times worse
//!    than the fresh candidate;
//! 2. **Update budget** — at most `max_updates` deployments within any
//!    sliding window of `window` ticks;
//! 3. **Fallback** — while serving learned configurations, periodically
//!    audit them against a warm-started LP re-solve and permanently fall
//!    back to the LP when the model has degraded for `patience` consecutive
//!    audits (traffic drifted away from the training distribution).

/// Sliding-window update budget: at most `max_updates` reconfigurations
/// within any window of `window` consecutive ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateBudget {
    /// Window length in ticks.
    pub window: usize,
    /// Maximum number of updates inside one window.
    pub max_updates: usize,
}

impl UpdateBudget {
    /// A budget of `max_updates` updates per `window` ticks.
    pub fn per_window(max_updates: usize, window: usize) -> UpdateBudget {
        assert!(window >= 1, "budget window must span at least one tick");
        UpdateBudget { window, max_updates }
    }
}

/// When (and how) to abandon learned inference for the warm-started LP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallbackPolicy {
    /// A learned candidate counts as degraded when its predicted MLU exceeds
    /// `degradation ×` the LP candidate's predicted MLU.
    pub degradation: f64,
    /// Consecutive degraded audits before the controller falls back.
    pub patience: usize,
    /// Audit every `audit_every`-th decision (0 disables auditing, and with
    /// it the fallback path).
    pub audit_every: usize,
}

impl Default for FallbackPolicy {
    fn default() -> Self {
        FallbackPolicy { degradation: 1.15, patience: 3, audit_every: 4 }
    }
}

impl FallbackPolicy {
    /// A policy that never audits (learned mode runs unsupervised).
    pub fn disabled() -> FallbackPolicy {
        FallbackPolicy { audit_every: 0, ..Default::default() }
    }
}

/// The full reconfiguration policy of a controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigPolicy {
    /// Hysteresis on predicted-MLU regret: reconfigure only when
    /// `M(deployed, predicted) > (1 + hysteresis) · M(candidate, predicted)`.
    /// `0.0` (or negative) disables the gate — every tick reconfigures,
    /// which reproduces the batch per-snapshot evaluation exactly.
    pub hysteresis: f64,
    /// Optional update budget (`None` = unlimited).
    pub budget: Option<UpdateBudget>,
    /// Learned-mode degradation fallback.
    pub fallback: FallbackPolicy,
}

impl Default for ReconfigPolicy {
    fn default() -> Self {
        ReconfigPolicy {
            hysteresis: 0.05,
            budget: Some(UpdateBudget::per_window(4, 16)),
            fallback: FallbackPolicy::default(),
        }
    }
}

impl ReconfigPolicy {
    /// The policy the batch-equivalence contract runs under: reconfigure on
    /// every tick, no budget, no audits.  Driving the LP engine with the
    /// last-value predictor under this policy reproduces the batch
    /// `run_scheme` prediction series bit for bit.
    pub fn always_update() -> ReconfigPolicy {
        ReconfigPolicy { hysteresis: 0.0, budget: None, fallback: FallbackPolicy::disabled() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = ReconfigPolicy::default();
        assert!(p.hysteresis > 0.0);
        let b = p.budget.unwrap();
        assert!(b.max_updates < b.window);
        assert!(p.fallback.degradation > 1.0);
        assert!(p.fallback.audit_every > 0);
    }

    #[test]
    fn always_update_disables_every_gate() {
        let p = ReconfigPolicy::always_update();
        assert_eq!(p.hysteresis, 0.0);
        assert!(p.budget.is_none());
        assert_eq!(p.fallback.audit_every, 0);
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_window_budget_is_rejected() {
        UpdateBudget::per_window(1, 0);
    }
}
