//! End-to-end self-healing contract (ISSUE 9, DESIGN.md §9): on a seeded
//! online stream with a sustained step shift, a learned controller must
//! trip its fallback, retrain a challenger on the observed post-shift
//! window, promote it after consecutive shadow-audit wins, and re-enter
//! learned serving with post-promotion regret comparable to the pre-drift
//! window.  A proptest additionally pins the whole loop — detection,
//! retraining (rayon-parallel gradients included) and promotion — to
//! bit-identical logs across runs; CI replays the same scenario through
//! `serve_sim` under different `RAYON_NUM_THREADS` settings and diffs the
//! printed digests across processes.

use std::sync::Arc;

use figret::{FigretConfig, FigretModel};
use figret_serve::{
    CusumConfig, DecisionSource, FallbackPolicy, FleetController, PredictorKind, ReconfigPolicy,
    RecoveryConfig, ServeController, ServeLog, Transition, UpdateBudget,
};
use figret_solvers::MluTemplate;
use figret_te::{max_link_utilization_pairs, PathSet};
use figret_topology::{Graph, Topology, TopologySpec};
use figret_traffic::{
    ActivePairs, FlatWindowDataset, OnlineStream, OnlineStreamConfig, ShardPlan,
    SparseDemandStream, StepShiftConfig,
};
use proptest::prelude::*;

fn pod() -> (Graph, PathSet) {
    let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
    let ps = PathSet::k_shortest(&g, 3);
    (g, ps)
}

/// A low-noise stream whose only event is a permanent step shift at
/// `shift_tick`: even slots scale by `factor`, odd slots by `1/factor`,
/// so the *shape* of the matrix changes while the total stays comparable —
/// exactly the sustained distribution shift recovery exists for.
fn quiet_shifted_stream(g: &Graph, seed: u64, shift_tick: usize, factor: f64) -> OnlineStream {
    OnlineStream::from_graph(
        g,
        0.25,
        OnlineStreamConfig {
            diurnal_amplitude: 0.05,
            noise: 0.02,
            drift: None,
            flash_crowds: None,
            failure_storms: None,
            shift: Some(StepShiftConfig { at_tick: shift_tick, factor }),
            seed,
            ..Default::default()
        },
    )
}

#[test]
fn controller_recovers_from_a_step_shift() {
    let (g, ps) = pod();
    let h = 2;
    let shift_tick = 60;
    let total_ticks = 220;
    // The stream is near-static, so enough epochs push the model within a
    // few percent of the per-tick LP optimum (~1.02x measured) — the regime
    // the audit margins below assume.
    let config = FigretConfig { history_window: h, epochs: 150, ..FigretConfig::fast_test() };

    // Train the incumbent on pre-shift columns (through the same flat path
    // the online retrainer uses).
    let mut stream = quiet_shifted_stream(&g, 97, shift_tick, 4.0);
    let train_columns: Vec<Vec<f64>> =
        (0..40).map(|_| stream.next_column().expect("endless").values().to_vec()).collect();
    let dataset = FlatWindowDataset::from_columns(h, train_columns);
    let variances = dataset.per_slot_variance();
    let mut model = FigretModel::new(&ps, &variances, config);
    let report = model.train_flat(&dataset);
    assert!(report.final_loss().is_some());

    // Serve the *same* stream from the start: a fresh instance replays the
    // training window bit for bit, then shifts at `shift_tick`.
    let mut stream = quiet_shifted_stream(&g, 97, shift_tick, 4.0);
    let policy = ReconfigPolicy {
        hysteresis: 0.0,
        budget: None,
        fallback: FallbackPolicy { degradation: 1.2, patience: 2, audit_every: 1 },
    };
    let mut controller =
        ServeController::learned(&ps, model, PredictorKind::LastValue.build(), policy);
    controller.enable_recovery(RecoveryConfig {
        retrain_window: 24,
        retrain_every: 4,
        promotion_patience: 2,
        promotion_margin: 1.1,
        retrain_epochs: 150,
        ..Default::default()
    });

    let mut log = ServeLog::new();
    let mut realized_columns: Vec<Vec<f64>> = Vec::new();
    for t in 0..total_ticks {
        let column = stream.next_column().expect("endless");
        if t < h {
            controller.observe_pairs(column.values());
            continue;
        }
        let outcome = controller.step_pairs(column.values());
        log.record_outcome(&outcome);
        log.annotate(outcome.record.tick, stream.annotation());
        realized_columns.push(column.values().to_vec());
    }

    // The ladder ran end to end: degraded, retrained, promoted.
    assert!(log.transition_count(Transition::Degraded) >= 1, "the shift must trip the fallback");
    assert!(log.transition_count(Transition::RetrainStarted) >= 1, "degradation must retrain");
    assert!(log.transition_count(Transition::Promoted) >= 1, "a challenger must promote");
    let degraded_at = log.transitions[0].tick;
    let recovered_at = log.recovery_tick().expect("the run must recover");
    assert!(degraded_at >= shift_tick - h - 2, "no degradation before the shift");
    assert!(recovered_at > degraded_at);
    assert!(controller.model_generation() > 0, "a promoted challenger must be live");
    assert!(!controller.fell_back(), "the controller must have exited fallback");
    let stats = controller.recovery_stats();
    assert_eq!(stats.promotions, log.transition_count(Transition::Promoted));
    assert!(stats.retrains >= 1 && stats.retrain_seconds > 0.0);
    // The shift is visible as an annotation from the moment it lands.
    assert!(log.annotations.iter().any(|(_, a)| a.shifted));

    // Post-promotion the model serves again...
    let post: Vec<_> = log.records.iter().filter(|r| r.tick > recovered_at).collect();
    assert!(post.len() >= 20, "need a window after recovery to judge regret");
    assert!(
        post.iter().filter(|r| r.source == Some(DecisionSource::Model)).count() * 2 > post.len(),
        "most post-recovery decisions must come from the model"
    );

    // ...and its regret vs the omniscient per-tick optimum is within 10%
    // of the pre-drift window's (the acceptance bound of ISSUE 9).
    let mut template = MluTemplate::new(&ps);
    let mut regret = |records: &[&figret_serve::TickRecord]| -> f64 {
        let mut total = 0.0;
        for r in records {
            let column = &realized_columns[r.tick];
            let (cfg, _) = template.solve(&ps, column).expect("omniscient LP solvable");
            let omni = max_link_utilization_pairs(&ps, &cfg, column);
            total += r.realized_mlu / omni.max(1e-12);
        }
        total / records.len() as f64
    };
    let pre: Vec<_> = log.records.iter().filter(|r| r.tick + h < shift_tick).collect();
    let pre_regret = regret(&pre);
    let post_regret = regret(&post);
    assert!(
        post_regret <= 1.1 * pre_regret,
        "post-recovery regret {post_regret:.4} must be within 10% of pre-drift {pre_regret:.4}"
    );
}

/// Per-shard self-healing under one global admission budget: every shard
/// trains its incumbent *and* its challengers on its own restricted pair
/// universe (the `train_flat` path — no dense matrices exist there),
/// degrades when the shift lands, and promotes its way back independently.
#[test]
fn fleet_shards_recover_independently_under_the_joint_budget() {
    let (g, ps) = pod();
    let h = 2;
    let shift_tick = 40;
    let total_ticks = 170;
    let active = Arc::new(ActivePairs::all(g.num_nodes()));
    let plan = ShardPlan::source_blocks(&active, g.num_nodes(), 2);
    assert_eq!(plan.num_shards(), 2);
    let policy = ReconfigPolicy {
        hysteresis: 0.0,
        budget: Some(UpdateBudget::per_window(2, 2)),
        fallback: FallbackPolicy { degradation: 1.2, patience: 2, audit_every: 1 },
    };

    // Pre-shift parent columns for incumbent training.
    let mut stream = quiet_shifted_stream(&g, 131, shift_tick, 4.0);
    let parent_columns: Vec<Vec<f64>> =
        (0..30).map(|_| stream.next_column().expect("endless").values().to_vec()).collect();

    let run = || {
        let controllers: Vec<ServeController> = plan
            .shards()
            .iter()
            .map(|shard| {
                let (restricted, _) = ps.restrict_to(shard.active());
                let mut column = Vec::new();
                let shard_columns: Vec<Vec<f64>> = parent_columns
                    .iter()
                    .map(|parent| {
                        shard.gather_into(parent, &mut column);
                        column.clone()
                    })
                    .collect();
                let dataset = FlatWindowDataset::from_columns(h, shard_columns);
                let variances = dataset.per_slot_variance();
                let config =
                    FigretConfig { history_window: h, epochs: 150, ..FigretConfig::fast_test() };
                let mut model = FigretModel::new(&restricted, &variances, config);
                model.train_flat(&dataset);
                let mut c = ServeController::learned(
                    &restricted,
                    model,
                    PredictorKind::LastValue.build(),
                    ReconfigPolicy { budget: None, ..policy.clone() },
                );
                c.enable_recovery(RecoveryConfig {
                    retrain_window: 24,
                    retrain_every: 4,
                    promotion_patience: 2,
                    promotion_margin: 1.1,
                    retrain_epochs: 150,
                    ..Default::default()
                });
                c.bind_universe(shard.active());
                c
            })
            .collect();
        let mut fleet = FleetController::from_controllers(&plan, controllers, &policy);
        let mut stream = quiet_shifted_stream(&g, 131, shift_tick, 4.0);
        for t in 0..total_ticks {
            let column = stream.next_column().expect("endless");
            if t < h {
                fleet.observe_sparse(&column);
            } else {
                fleet.step_sparse(&column);
            }
        }
        fleet
    };

    let fleet = run();
    assert_eq!(fleet.promoted_shards(), 2, "every shard must promote a challenger");
    assert_eq!(fleet.fell_back_shards(), 0, "every shard must exit fallback");
    let stats = fleet.recovery_stats();
    assert!(stats.promotions >= 2 && stats.retrains >= 2);
    for log in fleet.logs() {
        assert!(log.transition_count(Transition::Degraded) >= 1);
        assert!(log.transition_count(Transition::Promoted) >= 1);
        assert!(log.recovery_tick().is_some(), "each shard log must show its own recovery");
    }
    // The whole ladder — training, degradation, retraining, promotion —
    // replays bit-identically.
    let again = run();
    assert_eq!(fleet.digest(), again.digest());
    assert_eq!(fleet.decision_digest(), again.decision_digest());
}

/// One full recovery loop for the determinism proptest: an *untrained*
/// incumbent degrades within a few audits, then the (detector, cadence,
/// patience) parameters drive retraining and possibly promotion.
fn run_recovery_loop(
    seed: u64,
    slack: f64,
    threshold: f64,
    retrain_every: usize,
    promotion_patience: usize,
    ticks: usize,
) -> ServeLog {
    let (g, ps) = pod();
    let config = FigretConfig { history_window: 2, ..FigretConfig::fast_test() };
    let model = FigretModel::new(&ps, &vec![0.0; ps.num_pairs()], config);
    let policy = ReconfigPolicy {
        hysteresis: 0.0,
        budget: None,
        fallback: FallbackPolicy { degradation: 1.05, patience: 1, audit_every: 1 },
    };
    let mut controller =
        ServeController::learned(&ps, model, PredictorKind::LastValue.build(), policy);
    controller.enable_recovery(RecoveryConfig {
        retrain_window: 12,
        retrain_every,
        promotion_patience,
        promotion_margin: 1.15,
        retrain_epochs: 2,
        detector: CusumConfig { slack, threshold },
    });
    let mut stream = quiet_shifted_stream(&g, seed, ticks / 2, 3.0);
    let mut log = ServeLog::new();
    for t in 0..ticks {
        let column = stream.next_column().expect("endless");
        if t < 2 {
            controller.observe_pairs(column.values());
        } else {
            let outcome = controller.step_pairs(column.values());
            log.record_outcome(&outcome);
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random (seed, detector, retrain cadence, patience) recovery loops —
    /// including the rayon-parallel retraining — replay bit-identically:
    /// same records, same transitions, same digest.  CI repeats the check
    /// across `RAYON_NUM_THREADS=1` and `4` as separate processes.
    #[test]
    fn recovery_loop_is_bit_deterministic(
        seed in 0u64..10_000,
        slack in 0.01f64..0.2,
        threshold in 0.1f64..1.0,
        retrain_every in 2usize..6,
        promotion_patience in 1usize..4,
    ) {
        let a = run_recovery_loop(seed, slack, threshold, retrain_every, promotion_patience, 30);
        let b = run_recovery_loop(seed, slack, threshold, retrain_every, promotion_patience, 30);
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(&a.transitions, &b.transitions);
        prop_assert_eq!(a.digest(), b.digest());
        // The untrained incumbent must degrade and start retraining.
        prop_assert!(a.transition_count(Transition::Degraded) >= 1);
        prop_assert!(a.transition_count(Transition::RetrainStarted) >= 1);
    }
}
