//! Telemetry is strictly out-of-band (DESIGN.md §10): arming it must not
//! perturb a single decision — records and digests are bit-identical with
//! telemetry on and off — while the armed registry's deterministic facts
//! (counters, gauges, histogram counts) are themselves reproducible across
//! runs.  Only histogram *latency values* may differ between runs; they
//! never reach a digest.

use std::sync::Arc;

use figret_serve::{
    FallbackPolicy, FleetController, PredictorKind, ReconfigPolicy, ServeController, ServeLog,
    UpdateBudget,
};
use figret_te::PathSet;
use figret_telemetry::Registry;
use figret_topology::{Graph, Topology, TopologySpec};
use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
use figret_traffic::{
    ActivePairs, DemandStream, OnlineStream, OnlineStreamConfig, ShardPlan, TrafficTrace,
};

const WINDOW: usize = 2;

fn pod() -> (Graph, PathSet) {
    let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
    let ps = PathSet::k_shortest(&g, 3);
    (g, ps)
}

fn policy() -> ReconfigPolicy {
    ReconfigPolicy {
        hysteresis: 0.02,
        budget: Some(UpdateBudget::per_window(2, 6)),
        fallback: FallbackPolicy::disabled(),
    }
}

/// One LP serving run over the online generator; returns the log and the
/// final registry snapshot (when armed).
fn run_lp(seed: u64, ticks: usize, armed: bool) -> (ServeLog, Option<Registry>) {
    let (g, ps) = pod();
    let mut controller =
        ServeController::lp(&ps, WINDOW, PredictorKind::LastValue.build(), policy());
    if armed {
        controller.enable_telemetry();
    }
    let mut stream =
        OnlineStream::from_graph(&g, 0.25, OnlineStreamConfig { seed, ..Default::default() });
    let mut log = ServeLog::new();
    for _ in 0..WINDOW {
        controller.observe(&stream.next_demand().expect("online streams never end"));
    }
    for _ in 0..ticks {
        let demand = stream.next_demand().expect("online streams never end");
        let outcome = controller.step(&demand);
        log.push(outcome.record, outcome.decision_seconds);
    }
    (log, controller.telemetry_snapshot())
}

/// Counter values, gauge names and histogram sample counts — the
/// deterministic projection of a registry (sums are wall-clock).
type DeterministicView = (Vec<(String, u64)>, Vec<String>, Vec<(String, u64)>);

fn deterministic_view(registry: &Registry) -> DeterministicView {
    let counters = registry.counters().iter().map(|(n, v)| (n.to_string(), *v)).collect();
    let gauges = registry.gauges().iter().map(|(n, _)| n.to_string()).collect();
    let hists = registry.histograms().iter().map(|(n, h)| (n.to_string(), h.count())).collect();
    (counters, gauges, hists)
}

#[test]
fn arming_telemetry_never_perturbs_the_decision_log() {
    let (off, no_registry) = run_lp(7, 12, false);
    let (on, registry) = run_lp(7, 12, true);
    assert!(no_registry.is_none(), "a disarmed controller must carry no registry");
    let registry = registry.expect("an armed controller must snapshot its registry");

    assert_eq!(off.records, on.records, "telemetry must be out-of-band");
    assert_eq!(off.digest(), on.digest());
    assert_eq!(off.decision_digest(), on.decision_digest());

    // The registry covers the run: one tick and one decision latency per
    // step, and every span histogram the decision path crosses has samples.
    assert_eq!(registry.counter_by_name("figret_serve_ticks_total"), Some(12));
    let decisions =
        registry.histogram_by_name("figret_serve_decision_seconds").expect("decision span");
    assert_eq!(decisions.count(), 12);
    for span in ["figret_serve_predict_seconds", "figret_serve_finish_seconds"] {
        let hist = registry.histogram_by_name(span).expect("span histogram");
        assert_eq!(hist.count(), 12, "{span} must sample every tick");
    }
    let updates = registry.counter_by_name("figret_serve_updates_total").expect("updates");
    let holds: u64 = registry
        .counters()
        .iter()
        .filter(|(n, _)| n.starts_with("figret_serve_holds_total"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(updates + holds, 12, "every tick is an update or a hold");
}

#[test]
fn armed_registry_is_deterministic_across_runs() {
    let (log_a, a) = run_lp(11, 10, true);
    let (log_b, b) = run_lp(11, 10, true);
    assert_eq!(log_a.digest(), log_b.digest());
    let a = a.expect("armed");
    let b = b.expect("armed");
    assert_eq!(deterministic_view(&a), deterministic_view(&b));
}

fn run_fleet(
    trace: &TrafficTrace,
    shards: usize,
    armed: bool,
) -> (FleetController, Option<Registry>) {
    let (_, ps) = pod();
    let active = Arc::new(ActivePairs::all(trace.num_nodes()));
    let plan = ShardPlan::source_blocks(&active, trace.num_nodes(), shards);
    let mut fleet = FleetController::lp(&plan, &ps, WINDOW, PredictorKind::LastValue, &policy());
    if armed {
        fleet.enable_telemetry();
    }
    for t in 0..trace.len() {
        let column = trace.matrix(t).flatten_pairs();
        if t < WINDOW {
            fleet.observe_column(&column);
        } else {
            fleet.step_column(&column);
        }
    }
    let snapshot = fleet.telemetry_snapshot();
    (fleet, snapshot)
}

#[test]
fn fleet_telemetry_is_out_of_band_and_merges_in_stable_order() {
    let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
    let trace = pod_trace(&g, &PodTrafficConfig { num_snapshots: 10, ..Default::default() });
    let (off, no_registry) = run_fleet(&trace, 3, false);
    let (on, registry) = run_fleet(&trace, 3, true);
    assert!(no_registry.is_none());
    let registry = registry.expect("armed fleet must snapshot");

    assert_eq!(off.digest(), on.digest(), "fleet telemetry must be out-of-band");
    assert_eq!(off.decision_digest(), on.decision_digest());

    let ticks = (trace.len() - WINDOW) as u64;
    assert_eq!(registry.counter_by_name("figret_fleet_ticks_total"), Some(ticks));
    for phase in ["scatter", "propose", "admission", "finish", "merge"] {
        let name = format!("figret_fleet_phase_seconds{{phase=\"{phase}\"}}");
        let hist = registry.histogram_by_name(&name).expect("fleet phase histogram");
        assert_eq!(hist.count(), ticks, "phase '{phase}' must sample every tick");
    }
    // Shard-local spans survive the merge: 3 shards × ticks decisions.
    let decisions =
        registry.histogram_by_name("figret_serve_decision_seconds").expect("merged spans");
    assert_eq!(decisions.count(), 3 * ticks);

    // The merged snapshot is reproducible (stable shard order).
    let (_, again) = run_fleet(&trace, 3, true);
    assert_eq!(
        deterministic_view(&registry),
        deterministic_view(&again.expect("armed")),
        "merged fleet registries must agree across identical runs"
    );
}
