//! Fleet determinism and global-budget contracts (DESIGN.md §8).
//!
//! * **Serial-oracle equivalence**: the data-parallel fleet tick must equal
//!   a strictly sequential re-implementation of the same protocol (gather →
//!   propose per shard in order → admit → finish per shard in order).  The
//!   parallel phases only move independent shards onto threads and collect
//!   them back in stable order, so the logs must be bit-identical — this is
//!   the in-process form of the `RAYON_NUM_THREADS=1` vs `=4` CI diff (the
//!   vendored rayon caches its thread count per process, so CI varies it
//!   across processes while this test pins the semantics).
//! * **Proptest determinism**: over random (traffic seed, shard count,
//!   joint budget, hysteresis), replaying the same fleet twice is
//!   bit-identical, a one-shard fleet reproduces the unsharded
//!   [`ServeController`] exactly, and the merged logs never exceed the
//!   joint budget in any sliding window.

use std::sync::Arc;

use figret_serve::{
    Action, FleetController, GlobalAdmission, LastValue, PredictorKind, ReconfigPolicy,
    ServeController, ServeLog, ShardBid, UpdateBudget,
};
use figret_te::PathSet;
use figret_topology::{Topology, TopologySpec};
use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
use figret_traffic::{ActivePairs, ShardPlan, TrafficTrace};
use proptest::prelude::*;

const WINDOW: usize = 2;

fn setup(snapshots: usize, seed: u64) -> (PathSet, TrafficTrace, Arc<ActivePairs>) {
    let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
    let paths = PathSet::k_shortest(&g, 3);
    let trace =
        pod_trace(&g, &PodTrafficConfig { num_snapshots: snapshots, seed, ..Default::default() });
    let active = Arc::new(ActivePairs::all(g.num_nodes()));
    (paths, trace, active)
}

fn drive_fleet(fleet: &mut FleetController, trace: &TrafficTrace) {
    for t in 0..trace.len() {
        let column = trace.matrix(t).flatten_pairs();
        if t < WINDOW {
            fleet.observe_column(&column);
        } else {
            fleet.step_column(&column);
        }
    }
}

/// A strictly sequential re-implementation of the fleet tick protocol:
/// the oracle the parallel [`FleetController`] must match bit for bit.
fn serial_oracle(
    plan: &ShardPlan,
    paths: &PathSet,
    policy: &ReconfigPolicy,
    trace: &TrafficTrace,
) -> Vec<ServeLog> {
    let mut controllers: Vec<ServeController> = plan
        .shards()
        .iter()
        .map(|shard| {
            let (restricted, _) = paths.restrict_to(shard.active());
            let mut c = ServeController::lp(
                &restricted,
                WINDOW,
                Box::new(LastValue::new()),
                ReconfigPolicy { budget: None, ..policy.clone() },
            );
            c.bind_universe(shard.active());
            c
        })
        .collect();
    let mut admission = GlobalAdmission::from_policy(policy);
    let mut logs = vec![ServeLog::new(); controllers.len()];
    let mut column = Vec::new();
    let mut tick = 0;
    for t in 0..trace.len() {
        let parent = trace.matrix(t).flatten_pairs();
        if t < WINDOW {
            for (shard, c) in plan.shards().iter().zip(&mut controllers) {
                shard.gather_into(&parent, &mut column);
                c.observe_pairs(&column);
            }
            continue;
        }
        let mut bids = Vec::new();
        let mut proposals = Vec::with_capacity(controllers.len());
        for (i, (shard, c)) in plan.shards().iter().zip(&mut controllers).enumerate() {
            shard.gather_into(&parent, &mut column);
            let proposal = c.propose();
            if let Some(p) = &proposal {
                bids.push(ShardBid::from_proposal(i, p));
            }
            proposals.push(proposal);
        }
        let mut actions = vec![Action::Warmup; controllers.len()];
        admission.admit(tick, &bids, &mut actions);
        for (i, (shard, c)) in plan.shards().iter().zip(&mut controllers).enumerate() {
            shard.gather_into(&parent, &mut column);
            let outcome = c.finish_pairs(&column, actions[i]);
            logs[i].push(outcome.record, outcome.decision_seconds);
        }
        tick += 1;
    }
    logs
}

#[test]
fn parallel_fleet_matches_the_serial_oracle() {
    let (paths, trace, active) = setup(18, 7);
    let policy = ReconfigPolicy {
        hysteresis: 0.02,
        budget: Some(UpdateBudget::per_window(2, 5)),
        ..ReconfigPolicy::always_update()
    };
    for shards in [1, 2, 3] {
        let plan = ShardPlan::source_blocks(&active, trace.num_nodes(), shards);
        let mut fleet =
            FleetController::lp(&plan, &paths, WINDOW, PredictorKind::LastValue, &policy);
        drive_fleet(&mut fleet, &trace);
        let oracle = serial_oracle(&plan, &paths, &policy, &trace);
        assert_eq!(fleet.logs().len(), oracle.len());
        for (parallel, serial) in fleet.logs().iter().zip(&oracle) {
            assert_eq!(parallel.records, serial.records, "{shards}-shard fleet diverged");
        }
        assert!(fleet.update_count() > 0, "the comparison must exercise real updates");
    }
}

fn window_update_counts(logs: &[ServeLog], window: usize, ticks: usize) -> Vec<usize> {
    (0..ticks)
        .map(|start| {
            logs.iter()
                .flat_map(|log| &log.records)
                .filter(|r| {
                    r.action == Action::Update && r.tick >= start && r.tick < start + window
                })
                .count()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn fleet_digests_are_deterministic_and_budget_bounded(
        seed in 0u64..1000,
        shards in 1usize..5,
        max_updates in 1usize..3,
        budget_window in 3usize..7,
        hyst_step in 0usize..2,
    ) {
        let hysteresis = 0.05 * hyst_step as f64;
        let (paths, trace, active) = setup(12, seed);
        let policy = ReconfigPolicy {
            hysteresis,
            budget: Some(UpdateBudget::per_window(max_updates, budget_window)),
            ..ReconfigPolicy::always_update()
        };
        let plan = ShardPlan::source_blocks(&active, trace.num_nodes(), shards);
        let run = || {
            let mut fleet =
                FleetController::lp(&plan, &paths, WINDOW, PredictorKind::LastValue, &policy);
            drive_fleet(&mut fleet, &trace);
            fleet
        };
        let fleet = run();
        let again = run();
        // Bit-identical replay: digests, admission counters, merged records.
        prop_assert_eq!(fleet.digest(), again.digest());
        prop_assert_eq!(fleet.decision_digest(), again.decision_digest());
        prop_assert_eq!(fleet.admission_stats(), again.admission_stats());
        // Joint budget: no sliding window across ALL shards exceeds it.
        let ticks = fleet.ticks();
        for (start, count) in
            window_update_counts(fleet.logs(), budget_window, ticks).iter().enumerate()
        {
            prop_assert!(
                *count <= max_updates,
                "window [{}, {}) holds {} updates (budget {})",
                start, start + budget_window, count, max_updates
            );
        }
        // A one-shard fleet is the unsharded controller, record for record.
        if shards == 1 {
            let mut solo = ServeController::lp(
                &paths,
                WINDOW,
                Box::new(LastValue::new()),
                policy.clone(),
            );
            let mut log = ServeLog::new();
            for t in 0..trace.len() {
                let column = trace.matrix(t).flatten_pairs();
                if t < WINDOW {
                    solo.observe_pairs(&column);
                } else {
                    let out = solo.step_pairs(&column);
                    log.push(out.record, out.decision_seconds);
                }
            }
            prop_assert_eq!(&fleet.logs()[0].records, &log.records);
            prop_assert_eq!(fleet.digest(), log.digest());
            prop_assert_eq!(fleet.decision_digest(), log.decision_digest());
        }
    }
}
