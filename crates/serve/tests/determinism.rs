//! Determinism contract of the serving loop (PR 1 contract, DESIGN.md §4):
//! the same seed and scenario produce a bit-identical event/decision log —
//! every action, MLU and churn value — independent of rayon thread count.
//! The loop is sequential by construction and the vendored rayon reduces in
//! item order, so two in-process runs must agree exactly; CI additionally
//! replays `serve_sim` under different `RAYON_NUM_THREADS` settings and
//! diffs the printed log digests across processes.

use figret::{FigretConfig, FigretModel};
use figret_serve::{
    FallbackPolicy, OnlinePredictor, PredictorKind, ReconfigPolicy, ServeController, ServeLog,
    UpdateBudget,
};
use figret_te::PathSet;
use figret_topology::{Graph, Topology, TopologySpec};
use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
use figret_traffic::{
    per_pair_variance_range, DemandStream, OnlineStream, OnlineStreamConfig, WindowDataset,
};
use proptest::prelude::*;

fn pod() -> (Graph, PathSet) {
    let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
    let ps = PathSet::k_shortest(&g, 3);
    (g, ps)
}

fn predictor_of(kind: usize, window: usize) -> Box<dyn OnlinePredictor> {
    match kind % 4 {
        0 => PredictorKind::LastValue,
        1 => PredictorKind::Ewma(0.3),
        2 => PredictorKind::SlidingMean(window),
        _ => PredictorKind::SlidingMax(window),
    }
    .build()
}

/// One full serving run over the online generator: LP engine, `ticks`
/// decisions after a 2-observation warmup.
fn run_lp_loop(
    seed: u64,
    hysteresis: f64,
    budget: (usize, usize),
    predictor_kind: usize,
    ticks: usize,
) -> ServeLog {
    let (g, ps) = pod();
    let policy = ReconfigPolicy {
        hysteresis,
        budget: Some(UpdateBudget::per_window(budget.0, budget.1)),
        fallback: FallbackPolicy::disabled(),
    };
    let mut controller = ServeController::lp(&ps, 2, predictor_of(predictor_kind, 2), policy);
    let mut stream =
        OnlineStream::from_graph(&g, 0.25, OnlineStreamConfig { seed, ..Default::default() });
    let mut log = ServeLog::new();
    for _ in 0..2 {
        controller.observe(&stream.next_demand().expect("online streams never end"));
    }
    for _ in 0..ticks {
        let demand = stream.next_demand().expect("online streams never end");
        let outcome = controller.step(&demand);
        log.push(outcome.record, outcome.decision_seconds);
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same (seed, scenario, policy) ⇒ identical decision log, down to the
    /// float bits — across runs, predictors, budgets and event injection.
    #[test]
    fn serving_loop_is_bit_deterministic(
        seed in 0u64..10_000,
        hysteresis in 0.0f64..0.4,
        max_updates in 1usize..4,
        budget_window in 2usize..8,
        predictor_kind in 0usize..4,
    ) {
        let a = run_lp_loop(seed, hysteresis, (max_updates, budget_window), predictor_kind, 10);
        let b = run_lp_loop(seed, hysteresis, (max_updates, budget_window), predictor_kind, 10);
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(a.digest(), b.digest());
        // The log is complete and every recorded value is finite.
        prop_assert_eq!(a.records.len(), 10);
        prop_assert!(a.records.iter().all(|r| r.realized_mlu.is_finite() && r.churn >= 0.0));
    }
}

/// The learned path exercises the rayon-parallel training reduction too:
/// two independently trained models (same seed) must drive byte-identical
/// serving decisions — the end-to-end extension of the PR 1 contract.
#[test]
fn learned_serving_is_deterministic_including_training() {
    let (g, ps) = pod();
    let trace = pod_trace(&g, &PodTrafficConfig { num_snapshots: 40, ..Default::default() });
    let run = || {
        let cfg = FigretConfig { history_window: 2, epochs: 2, ..FigretConfig::fast_test() };
        let variances = per_pair_variance_range(&trace, 0..30);
        let dataset = WindowDataset::from_trace(&trace, 2, 0..30);
        let mut model = FigretModel::new(&ps, &variances, cfg);
        model.train(&dataset);
        let policy = ReconfigPolicy {
            hysteresis: 0.0,
            budget: None,
            fallback: FallbackPolicy { degradation: 1.1, patience: 2, audit_every: 2 },
        };
        let mut controller =
            ServeController::learned(&ps, model, PredictorKind::LastValue.build(), policy);
        let mut log = ServeLog::new();
        for t in 28..30 {
            controller.observe(trace.matrix(t));
        }
        for t in 30..40 {
            let outcome = controller.step(trace.matrix(t));
            log.push(outcome.record, outcome.decision_seconds);
        }
        log
    };
    let a = run();
    let b = run();
    assert_eq!(a.records, b.records);
    assert_eq!(a.digest(), b.digest());
}
