//! Sharded-fleet serving harness and report (`serve_sim --shards N`;
//! DESIGN.md §8).
//!
//! Drives a [`figret_serve::FleetController`] over the exact same scenario
//! setup as the single-controller path — same pair universe, path set,
//! trace, warmup and tick schedule — so a one-shard fleet replays the
//! unsharded run bit for bit (CI diffs the digests).  Shards are balanced
//! contiguous source blocks ([`figret_traffic::ShardPlan::source_blocks`]);
//! the engine is always the warm-started LP, like the unsharded fabric
//! path.
//!
//! The report answers the fleet-scaling questions: aggregate decisions/sec
//! and wall-clock ticks/sec, per-shard decision-latency percentiles, and
//! the shared admission layer's grant/hold statistics under the joint
//! update budget.

use std::sync::Arc;

use figret_serve::{AdmissionStats, FleetController, HoldReason, ServeLog};
use figret_solvers::SeriesStats;
use figret_telemetry::Registry;
use figret_topology::{FabricSpec, Topology};
use figret_traffic::{ActivePairs, ShardPlan};

use crate::profile::print_profile_report;
use crate::report::{
    latency_histogram, latency_us, lp_work_columns, lp_work_header, print_csv_series, print_table,
};
use crate::scenario::Scenario;
use crate::serving::{
    print_fabric_memory, FabricMemory, FabricServeSetup, MetricsStream, ServeSimOptions,
    ServeTopology,
};

/// The result of one sharded fleet serving run.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Display name (topology, shard count, predictor).
    pub name: String,
    /// Shard labels, in stable shard order.
    pub shard_labels: Vec<String>,
    /// Pairs owned by each shard, in stable shard order.
    pub shard_pairs: Vec<usize>,
    /// Per-shard decision logs, in stable shard order.
    pub logs: Vec<ServeLog>,
    /// Exact global realized MLU per fleet tick (merged shard loads).
    pub global_mlus: Vec<f64>,
    /// Aggregate admission counters of the joint budget/hysteresis layer.
    pub admission: AdmissionStats,
    /// LP solver work summed over all shards.
    pub lp_stats: SeriesStats,
    /// Wall-clock seconds of the serving loop end to end.
    pub serve_seconds: f64,
    /// Pairs decided per fleet tick (the parent-universe size).
    pub total_pairs: usize,
    /// Fleet log digest ([`FleetController::digest`]): equals the unsharded
    /// log digest for a one-shard fleet.
    pub digest: u64,
    /// Fleet decision digest ([`FleetController::decision_digest`]).
    pub decision_digest: u64,
    /// Fabric runs only: demand-storage accounting.
    pub memory: Option<FabricMemory>,
    /// Final merged telemetry snapshot (fleet phases + every shard's
    /// registry, merged in stable shard order), when the run was armed.
    pub telemetry: Option<Registry>,
}

impl FleetRun {
    /// Fleet ticks served (every shard ticks once per fleet tick).
    pub fn ticks(&self) -> usize {
        self.logs.first().map_or(0, ServeLog::len)
    }

    /// Wall-clock fleet ticks per second.
    pub fn ticks_per_second(&self) -> f64 {
        self.ticks() as f64 / self.serve_seconds.max(1e-12)
    }

    /// Aggregate per-pair routing decisions per second: each fleet tick
    /// decides a split ratio for every active pair.
    pub fn decisions_per_second(&self) -> f64 {
        self.ticks() as f64 * self.total_pairs as f64 / self.serve_seconds.max(1e-12)
    }

    /// Deployed updates summed over all shards.
    pub fn update_count(&self) -> usize {
        self.logs.iter().map(ServeLog::update_count).sum()
    }
}

/// Runs a sharded fleet over the options' topology; see the module docs.
pub fn serve_fleet(options: &ServeSimOptions, shards: usize) -> FleetRun {
    assert!(shards >= 1, "a fleet needs at least one shard");
    match options.topology {
        ServeTopology::Fabric(spec) => serve_fleet_fabric(&spec, shards, options),
        ServeTopology::Table1(topology) => serve_fleet_replay(topology, shards, options),
    }
}

fn finish_run(
    fleet: FleetController,
    name: String,
    global_mlus: Vec<f64>,
    serve_seconds: f64,
    memory: Option<FabricMemory>,
) -> FleetRun {
    FleetRun {
        name,
        shard_labels: fleet.shard_labels().into_iter().map(str::to_string).collect(),
        shard_pairs: fleet.shard_pairs(),
        global_mlus,
        admission: fleet.admission_stats(),
        lp_stats: fleet.lp_stats(),
        serve_seconds,
        total_pairs: fleet.total_pairs(),
        digest: fleet.digest(),
        decision_digest: fleet.decision_digest(),
        memory,
        telemetry: fleet.telemetry_snapshot(),
        logs: fleet.into_logs(),
    }
}

/// Streams fleet metrics after one fleet tick: LP shards raise no recovery
/// transitions, so the stream is periodic merged-registry snapshots (the
/// snapshot covers every fleet phase span and every shard's counters).
fn fleet_metrics_tick(metrics: &mut Option<MetricsStream>, tick: usize, fleet: &FleetController) {
    if let Some(m) = metrics.as_mut() {
        m.on_tick_lazy(tick, || fleet.telemetry_snapshot().expect("armed run"));
    }
}

/// Sharded counterpart of [`crate::serving::serve_fabric`]: the shared
/// [`FabricServeSetup`] guarantees the one-shard fleet sees the identical
/// scenario.
fn serve_fleet_fabric(spec: &FabricSpec, shards: usize, options: &ServeSimOptions) -> FleetRun {
    let setup = FabricServeSetup::build(spec, options);
    let plan = ShardPlan::source_blocks(&setup.active, setup.fabric.num_tors, shards);
    let mut fleet = FleetController::lp(
        &plan,
        &setup.paths,
        options.experiment.window,
        options.predictor,
        &options.policy,
    );
    let mut metrics = MetricsStream::create(options);
    if metrics.is_some() {
        fleet.enable_telemetry();
    }
    let serve_start = std::time::Instant::now();
    for t in 0..setup.warmup {
        fleet.observe_sparse(setup.trace.snapshot(t));
    }
    let mut global_mlus = Vec::with_capacity(setup.ticks.len());
    for &t in &setup.ticks {
        let out = fleet.step_sparse(setup.trace.snapshot(t));
        fleet_metrics_tick(&mut metrics, out.tick, &fleet);
        global_mlus.push(out.global_mlu);
    }
    let serve_seconds = serve_start.elapsed().as_secs_f64();
    if let Some(m) = metrics.as_mut() {
        m.finish(&fleet.telemetry_snapshot().expect("armed run"));
    }
    let name = format!(
        "{} ({} ToRs, fleet, {} shards, lp, {} predictor, sparse demands)",
        setup.fabric.graph.name(),
        setup.fabric.num_tors,
        fleet.num_shards(),
        options.predictor.build().name()
    );
    let memory = Some(setup.memory());
    finish_run(fleet, name, global_mlus, serve_seconds, memory)
}

/// Sharded counterpart of [`crate::serving::serve_replay`] for the Table 1
/// networks (LP engine, dense pair universe split into source blocks): the
/// same warmup prefix and test-split tick schedule, so a one-shard fleet
/// reproduces the unsharded replay digests.
fn serve_fleet_replay(topology: Topology, shards: usize, options: &ServeSimOptions) -> FleetRun {
    let scenario = Scenario::build(topology, &options.experiment.scenario_options());
    let window = options.experiment.window;
    let warmup = window;
    let first = scenario.split.test.start.max(warmup);
    let mut indices: Vec<usize> = (first..scenario.trace.len()).collect();
    if let Some(cap) = options.max_ticks {
        indices.truncate(cap);
    }
    let n = scenario.trace.num_nodes();
    let active = Arc::new(ActivePairs::all(n));
    let plan = ShardPlan::source_blocks(&active, n, shards);
    let mut fleet =
        FleetController::lp(&plan, &scenario.paths, window, options.predictor, &options.policy);
    let mut metrics = MetricsStream::create(options);
    if metrics.is_some() {
        fleet.enable_telemetry();
    }
    let mut column = vec![0.0; active.len()];
    let serve_start = std::time::Instant::now();
    for t in first - warmup..first {
        scenario.trace.matrix(t).flatten_pairs_into(&mut column);
        fleet.observe_column(&column);
    }
    let mut global_mlus = Vec::with_capacity(indices.len());
    for &t in &indices {
        scenario.trace.matrix(t).flatten_pairs_into(&mut column);
        let out = fleet.step_column(&column);
        fleet_metrics_tick(&mut metrics, out.tick, &fleet);
        global_mlus.push(out.global_mlu);
    }
    let serve_seconds = serve_start.elapsed().as_secs_f64();
    if let Some(m) = metrics.as_mut() {
        m.finish(&fleet.telemetry_snapshot().expect("armed run"));
    }
    let name = format!(
        "{} (replay, fleet, {} shards, lp, {} predictor)",
        scenario.name,
        fleet.num_shards(),
        options.predictor.build().name()
    );
    finish_run(fleet, name, global_mlus, serve_seconds, None)
}

/// Prints the fleet report: aggregate throughput, admission statistics,
/// per-shard latency percentiles, the global-MLU series and the fleet
/// digests (key-compatible with the unsharded report for CI diffs).
pub fn print_fleet_report(run: &FleetRun) {
    println!("\n# serve_sim — {}", run.name);
    let ticks = run.ticks();
    let updates = run.update_count();
    let adm = run.admission;
    let global_max = run.global_mlus.iter().copied().fold(0.0f64, f64::max);
    let global_mean = if run.global_mlus.is_empty() {
        0.0
    } else {
        run.global_mlus.iter().sum::<f64>() / run.global_mlus.len() as f64
    };
    let rows = vec![
        vec!["shards".to_string(), format!("{}", run.logs.len())],
        vec!["active pairs (total)".to_string(), format!("{}", run.total_pairs)],
        vec!["fleet ticks".to_string(), format!("{ticks}")],
        vec!["ticks/sec (wall clock)".to_string(), format!("{:.1}", run.ticks_per_second())],
        vec![
            "aggregate decisions/sec".to_string(),
            format!("{:.0} ({} pairs/tick)", run.decisions_per_second(), run.total_pairs),
        ],
        vec!["updates deployed".to_string(), format!("{updates}")],
        vec![
            "admission bids/wants/grants".to_string(),
            format!("{} / {} / {}", adm.bids, adm.wants, adm.grants),
        ],
        vec![
            "admission holds hysteresis/budget".to_string(),
            format!("{} / {}", adm.holds_hysteresis, adm.holds_budget),
        ],
        vec!["global MLU mean/max".to_string(), format!("{global_mean:.4} / {global_max:.4}")],
    ];
    print_table("fleet summary", &["metric", "value"], &rows);

    let shard_rows: Vec<Vec<String>> = run
        .logs
        .iter()
        .enumerate()
        .map(|(i, log)| {
            let lat = latency_histogram(&log.latencies_seconds);
            vec![
                run.shard_labels[i].clone(),
                format!("{}", run.shard_pairs[i]),
                format!("{}", log.update_count()),
                format!("{}", log.hold_count(HoldReason::BelowHysteresis)),
                format!("{}", log.hold_count(HoldReason::BudgetExhausted)),
                latency_us(&lat, 0.5),
                latency_us(&lat, 0.99),
            ]
        })
        .collect();
    print_table(
        "per-shard serving",
        &["shard", "pairs", "updates", "holds hys", "holds budget", "lat p50", "lat p99"],
        &shard_rows,
    );

    let mut work_header = vec!["engine"];
    work_header.extend(lp_work_header());
    let mut work_row = vec!["fleet LP (all shards)".to_string()];
    work_row.extend(lp_work_columns(&run.lp_stats));
    print_table("LP solver work (shard re-solves)", &work_header, &[work_row]);

    if let Some(mem) = &run.memory {
        print_fabric_memory(mem);
    }

    if let Some(registry) = &run.telemetry {
        print_profile_report(registry, run.serve_seconds);
    }

    print_csv_series("global_mlu", &run.global_mlus);
    // Same keys as the unsharded report: for `--shards 1` both digests must
    // equal the single-controller run's, and CI diffs the lines directly.
    println!("decision_log_digest,{:#018x}", run.digest);
    println!("decision_digest,{:#018x}", run.decision_digest);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExperimentOptions;
    use crate::serving::serve_fabric;
    use figret_serve::ReconfigPolicy;

    fn fabric_options(spec: FabricSpec) -> ServeSimOptions {
        let experiment =
            ExperimentOptions { fast: true, snapshots: 10, window: 2, ..Default::default() };
        ServeSimOptions {
            engine: crate::serving::ServeEngine::Lp,
            policy: ReconfigPolicy::default(),
            max_ticks: Some(5),
            topology: ServeTopology::Fabric(spec),
            ..ServeSimOptions::new(experiment)
        }
    }

    #[test]
    fn one_shard_fabric_fleet_matches_the_unsharded_run() {
        let spec = FabricSpec::jellyfish(48);
        let options = fabric_options(spec);
        let solo = serve_fabric(&spec, &options);
        let fleet = serve_fleet(&options, 1);
        assert_eq!(fleet.logs.len(), 1);
        assert_eq!(fleet.logs[0].records, solo.log.records);
        assert_eq!(fleet.digest, solo.log.digest());
        assert_eq!(fleet.decision_digest, solo.log.decision_digest());
        // The merged global MLU of one shard is the shard's realized MLU.
        for (g, r) in fleet.global_mlus.iter().zip(&solo.log.records) {
            assert_eq!(g.to_bits(), r.realized_mlu.to_bits());
        }
        print_fleet_report(&fleet); // must not panic
    }

    #[test]
    fn multi_shard_fleet_partitions_and_reports() {
        let spec = FabricSpec::jellyfish(48);
        let options = fabric_options(spec);
        let fleet = serve_fleet(&options, 4);
        assert_eq!(fleet.logs.len(), 4);
        assert_eq!(fleet.shard_pairs.iter().sum::<usize>(), fleet.total_pairs);
        assert_eq!(fleet.ticks(), 5);
        assert!(fleet.global_mlus.iter().all(|m| m.is_finite() && *m > 0.0));
        assert_eq!(fleet.admission.ticks, 5);
        assert!(fleet.serve_seconds > 0.0);
        assert!(fleet.decisions_per_second() > 0.0);
        print_fleet_report(&fleet); // must not panic
    }

    #[test]
    fn table1_fleet_replay_runs_on_source_blocks() {
        let experiment = ExperimentOptions {
            fast: true,
            snapshots: 60,
            window: 4,
            max_eval: 8,
            ..Default::default()
        };
        let options = ServeSimOptions {
            engine: crate::serving::ServeEngine::Lp,
            policy: ReconfigPolicy::always_update(),
            max_ticks: Some(4),
            topology: ServeTopology::Table1(figret_topology::Topology::MetaDbPod),
            ..ServeSimOptions::new(experiment)
        };
        let fleet = serve_fleet(&options, 2);
        assert_eq!(fleet.logs.len(), 2);
        assert_eq!(fleet.ticks(), 4);
        assert_eq!(fleet.update_count(), 2 * 4, "always-update deploys every shard every tick");
    }
}
