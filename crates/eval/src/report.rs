//! Plain-text reporting helpers: aligned tables, CSV lines and ASCII box
//! plots, so every experiment binary prints the same rows/series the paper's
//! tables and figures report.

use figret_solvers::SeriesStats;
use figret_te::SchemeQuality;
use figret_telemetry::Histogram;
use figret_traffic::DistributionSummary;

/// Folds measured decision latencies into a shared telemetry histogram —
/// the single percentile implementation every serving report prints from
/// (previously each report sorted its own copy of the sample vector).
/// Quantiles come back as fixed-log-bucket upper bounds, within one bucket
/// width of the exact order statistic.
pub fn latency_histogram(samples_seconds: &[f64]) -> Histogram {
    Histogram::from_samples(samples_seconds)
}

/// Formats a latency quantile in microseconds (reports print `p50 / p99`).
pub fn latency_us(hist: &Histogram, q: f64) -> String {
    format!("{:.1} µs", 1e6 * hist.quantile(q))
}

/// Prints a table with a header row and aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len()))
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints a series as CSV (`label,v0,v1,...`), the machine-readable output of
/// the time-series figures.
pub fn print_csv_series(label: &str, values: &[f64]) {
    let joined: Vec<String> = values.iter().map(|v| format!("{v:.6}")).collect();
    println!("{label},{}", joined.join(","));
}

/// Formats a distribution summary as the columns used by the quality tables.
pub fn summary_columns(s: &DistributionSummary) -> Vec<String> {
    vec![
        format!("{:.3}", s.mean),
        format!("{:.3}", s.p25),
        format!("{:.3}", s.median),
        format!("{:.3}", s.p75),
        format!("{:.3}", s.p99),
        format!("{:.3}", s.max),
    ]
}

/// Header matching [`summary_columns`].
pub fn summary_header() -> Vec<&'static str> {
    vec!["mean", "p25", "median", "p75", "p99", "max"]
}

/// Formats a series' accumulated LP solver work as table columns; pairs with
/// [`lp_work_header`].  `warm` counts solves seeded from the previous
/// snapshot's basis (vs. cold two-phase solves).
pub fn lp_work_columns(stats: &SeriesStats) -> Vec<String> {
    vec![
        format!("{}", stats.solves),
        format!("{}/{}", stats.warm_solves, stats.solves),
        format!("{}", stats.totals.phase1_iterations),
        format!("{}", stats.totals.phase2_iterations),
        format!("{}", stats.totals.refactorizations),
    ]
}

/// Header matching [`lp_work_columns`].
pub fn lp_work_header() -> Vec<&'static str> {
    vec!["solves", "warm", "ph1 pivots", "ph2 pivots", "reinversions"]
}

/// Prints the per-scheme quality rows of a Figure 5-style panel.
pub fn print_quality_panel(title: &str, qualities: &[SchemeQuality]) {
    let mut rows = Vec::new();
    for q in qualities {
        let mut row = vec![q.scheme.clone()];
        row.extend(summary_columns(&q.normalized_mlu));
        row.push(format!("{:.1}%", q.congestion_rate * 100.0));
        rows.push(row);
    }
    let mut header = vec!["scheme"];
    header.extend(summary_header());
    header.push("cong.>2x");
    print_table(title, &header, &rows);
}

/// Renders an ASCII box plot of a distribution on a `[lo, hi]` axis of `width`
/// characters (used to visualize the candlesticks of Figure 4 in the logs).
pub fn ascii_box(summary: &DistributionSummary, lo: f64, hi: f64, width: usize) -> String {
    assert!(hi > lo, "axis must be non-degenerate");
    assert!(width >= 10, "width too small");
    let clamp = |v: f64| ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    let pos = |v: f64| (clamp(v) * (width - 1) as f64).round() as usize;
    let mut chars: Vec<char> = vec![' '; width];
    let (w_lo, b_lo, med, b_hi, w_hi) = (
        pos(summary.min),
        pos(summary.p25),
        pos(summary.median),
        pos(summary.p75),
        pos(summary.max),
    );
    for c in chars.iter_mut().take(w_hi + 1).skip(w_lo) {
        *c = '-';
    }
    for c in chars.iter_mut().take(b_hi + 1).skip(b_lo) {
        *c = '=';
    }
    chars[med] = '|';
    chars.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_box_orders_markers() {
        let s = DistributionSummary::from_samples(&[0.1, 0.2, 0.4, 0.5, 0.9]);
        let b = ascii_box(&s, 0.0, 1.0, 40);
        assert_eq!(b.len(), 40);
        let first_dash = b.find('-').unwrap();
        let median = b.find('|').unwrap();
        let last_dash = b.rfind('-').unwrap_or(b.rfind('=').unwrap());
        assert!(first_dash <= median);
        assert!(median <= last_dash.max(median));
        assert!(b.contains('='));
    }

    #[test]
    fn summary_columns_match_header() {
        let s = DistributionSummary::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(summary_columns(&s).len(), summary_header().len());
    }

    #[test]
    fn printing_does_not_panic() {
        print_table("demo", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        print_csv_series("series", &[1.0, 2.0]);
        let q = SchemeQuality::from_normalized("X", &[1.0, 1.5, 2.5]);
        print_quality_panel("panel", &[q]);
    }

    #[test]
    fn lp_work_columns_match_header() {
        let stats = SeriesStats::default();
        assert_eq!(lp_work_columns(&stats).len(), lp_work_header().len());
        assert_eq!(lp_work_columns(&stats)[1], "0/0");
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn ascii_box_rejects_bad_axis() {
        let s = DistributionSummary::from_samples(&[1.0]);
        ascii_box(&s, 1.0, 1.0, 20);
    }
}
