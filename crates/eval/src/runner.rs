//! Scheme runners: evaluate every TE scheme over the test split of a scenario
//! and collect per-snapshot MLUs plus timing, the raw material of every table
//! and figure.

use std::time::Instant;

use figret::{FigretConfig, FigretModel, TealLikeModel};
use figret_solvers::{
    cope_config, desensitization_config, fault_aware_desensitization_config,
    heuristic_fine_grained_config, omniscient_config, prediction_config, CopeSettings,
    CuttingPlaneSettings, DesensitizationSettings, HeuristicBound, HoseModel, MluProblem,
    Predictor, SolverEngine,
};
use figret_te::{
    available_paths, max_link_utilization, normalize_by, reroute_around_failures, SchemeQuality,
    TeConfig,
};
use figret_topology::FailureScenario;
use figret_traffic::{per_pair_variance_range, DemandMatrix, WindowDataset};

use crate::scenario::Scenario;

/// The TE schemes of the paper's evaluation (§5.1).
#[derive(Debug, Clone)]
pub enum Scheme {
    /// FIGRET (the paper's contribution).
    Figret(FigretConfig),
    /// DOTE: FIGRET's architecture without the robustness term.
    Dote(FigretConfig),
    /// TEAL-like amortized per-demand optimizer.
    TealLike(FigretConfig),
    /// Desensitization-based TE (Google Jupiter hedging).
    Desensitization(DesensitizationSettings),
    /// Fault-aware Desensitization-based TE (knows future failures).
    FaultAwareDesensitization(DesensitizationSettings),
    /// Demand-prediction-based TE.
    Prediction(Predictor),
    /// Demand-oblivious TE over a hose uncertainty set.
    Oblivious,
    /// COPE over a hose uncertainty set.
    Cope,
    /// Appendix C heuristic fine-grained desensitization.
    HeuristicFineGrained(HeuristicBound),
}

impl Scheme {
    /// Display name used in tables and figures.
    pub fn name(&self) -> String {
        match self {
            Scheme::Figret(_) => "FIGRET".to_string(),
            Scheme::Dote(_) => "DOTE".to_string(),
            Scheme::TealLike(_) => "TEAL-like".to_string(),
            Scheme::Desensitization(_) => "Des TE".to_string(),
            Scheme::FaultAwareDesensitization(_) => "FA Des TE".to_string(),
            Scheme::Prediction(_) => "Pred TE".to_string(),
            Scheme::Oblivious => "Oblivious".to_string(),
            Scheme::Cope => "COPE".to_string(),
            Scheme::HeuristicFineGrained(_) => "Heuristic FG".to_string(),
        }
    }

    /// The default comparison set of Figure 5 for small topologies.
    pub fn default_suite(fast: bool) -> Vec<Scheme> {
        let learn = if fast { FigretConfig::fast_test() } else { FigretConfig::default() };
        vec![
            Scheme::Figret(learn.clone()),
            Scheme::Dote(FigretConfig { robustness_weight: 0.0, ..learn.clone() }),
            Scheme::Desensitization(DesensitizationSettings::default()),
            Scheme::Prediction(Predictor::LastSnapshot),
            Scheme::TealLike(learn),
        ]
    }
}

/// Evaluation options shared by all runners.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// History window `H` used for learning-based schemes and for the peak /
    /// prediction windows of the LP-based schemes.
    pub window: usize,
    /// Evaluate at most this many test snapshots (uniformly subsampled); keeps
    /// the LP-heavy schemes tractable on larger topologies.
    pub max_eval_snapshots: Option<usize>,
    /// Engine used by LP-based schemes.
    pub engine: SolverEngine,
    /// Optional link-failure scenario (Figures 7, 14, 15): configurations are
    /// rerouted around the failed links before evaluation.
    pub failure: Option<FailureScenario>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { window: 12, max_eval_snapshots: Some(60), engine: SolverEngine::Auto, failure: None }
    }
}

impl EvalOptions {
    /// The snapshot indices actually evaluated for a scenario.
    pub fn eval_indices(&self, scenario: &Scenario) -> Vec<usize> {
        let all = scenario.test_indices(self.window);
        match self.max_eval_snapshots {
            Some(limit) if all.len() > limit && limit > 0 => {
                let stride = all.len() as f64 / limit as f64;
                (0..limit).map(|i| all[(i as f64 * stride) as usize]).collect()
            }
            _ => all,
        }
    }
}

/// The result of running one scheme over one scenario.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// Scheme display name.
    pub scheme: String,
    /// Snapshot indices evaluated.
    pub indices: Vec<usize>,
    /// Absolute MLU per evaluated snapshot.
    pub mlus: Vec<f64>,
    /// One-off precomputation time (training / cutting plane), seconds.
    pub precompute_seconds: f64,
    /// Mean per-snapshot solution time (NN forward pass or LP solve), seconds.
    pub mean_solve_seconds: f64,
}

impl SchemeRun {
    /// Normalizes the MLUs by a baseline series (usually the omniscient one)
    /// and summarizes them.
    pub fn quality(&self, baseline: &[f64]) -> SchemeQuality {
        let normalized = normalize_by(&self.mlus, baseline);
        SchemeQuality::from_normalized(&self.scheme, &normalized)
    }
}

fn history_window(scenario: &Scenario, t: usize, window: usize) -> Vec<DemandMatrix> {
    (t - window..t).map(|h| scenario.trace.matrix(h).clone()).collect()
}

fn apply_failure(
    scenario: &Scenario,
    config: &TeConfig,
    failure: &Option<FailureScenario>,
) -> TeConfig {
    match failure {
        Some(f) => reroute_around_failures(&scenario.paths, config, f),
        None => config.clone(),
    }
}

/// The omniscient (oracle) MLU series over the evaluated snapshots.  With a
/// failure scenario, the oracle also knows the failures and optimizes only
/// over the surviving paths.
pub fn omniscient_series(scenario: &Scenario, options: &EvalOptions) -> Vec<f64> {
    let indices = options.eval_indices(scenario);
    let mut out = Vec::with_capacity(indices.len());
    for &t in &indices {
        let demand = scenario.trace.matrix(t);
        let config = match &options.failure {
            None => omniscient_config(&scenario.paths, demand, options.engine)
                .expect("omniscient LP must be solvable"),
            Some(f) => {
                let problem = MluProblem::new(&scenario.paths, demand.flatten_pairs())
                    .with_available(available_paths(&scenario.paths, f));
                figret_solvers::solve_min_mlu(&problem, options.engine)
                    .expect("fault-aware omniscient LP must be solvable")
            }
        };
        out.push(max_link_utilization(&scenario.paths, &config, demand));
    }
    out
}

/// Runs a scheme over the evaluated snapshots of a scenario.
pub fn run_scheme(scenario: &Scenario, scheme: &Scheme, options: &EvalOptions) -> SchemeRun {
    let indices = options.eval_indices(scenario);
    let window = options.window;
    let mut mlus = Vec::with_capacity(indices.len());
    let mut solve_seconds = 0.0;
    let mut precompute_seconds = 0.0;
    let train_variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());

    match scheme {
        Scheme::Figret(cfg) | Scheme::Dote(cfg) => {
            let mut cfg = cfg.clone();
            cfg.history_window = window;
            if matches!(scheme, Scheme::Dote(_)) {
                cfg.robustness_weight = 0.0;
            }
            let dataset =
                WindowDataset::from_trace(&scenario.trace, window, scenario.split.train.clone());
            let mut model = FigretModel::new(&scenario.paths, &train_variances, cfg);
            let start = Instant::now();
            model.train(&dataset);
            precompute_seconds = start.elapsed().as_secs_f64();
            for &t in &indices {
                let history = history_window(scenario, t, window);
                let start = Instant::now();
                let config = model.predict(&scenario.paths, &history);
                solve_seconds += start.elapsed().as_secs_f64();
                let config = apply_failure(scenario, &config, &options.failure);
                mlus.push(max_link_utilization(&scenario.paths, &config, scenario.trace.matrix(t)));
            }
        }
        Scheme::TealLike(cfg) => {
            let mut cfg = cfg.clone();
            cfg.history_window = window;
            let dataset =
                WindowDataset::from_trace(&scenario.trace, window, scenario.split.train.clone());
            let mut model = TealLikeModel::new(&scenario.paths, cfg);
            let start = Instant::now();
            model.train(&dataset);
            precompute_seconds = start.elapsed().as_secs_f64();
            for &t in &indices {
                let previous = scenario.trace.matrix(t - 1);
                let start = Instant::now();
                let config = model.predict(&scenario.paths, previous);
                solve_seconds += start.elapsed().as_secs_f64();
                let config = apply_failure(scenario, &config, &options.failure);
                mlus.push(max_link_utilization(&scenario.paths, &config, scenario.trace.matrix(t)));
            }
        }
        Scheme::Desensitization(settings) => {
            for &t in &indices {
                let history = history_window(scenario, t, window);
                let start = Instant::now();
                let config =
                    desensitization_config(&scenario.paths, &history, settings, options.engine)
                        .expect("Des TE must be solvable");
                solve_seconds += start.elapsed().as_secs_f64();
                let config = apply_failure(scenario, &config, &options.failure);
                mlus.push(max_link_utilization(&scenario.paths, &config, scenario.trace.matrix(t)));
            }
        }
        Scheme::FaultAwareDesensitization(settings) => {
            let scenario_failure = options
                .failure
                .clone()
                .unwrap_or_else(FailureScenario::none);
            for &t in &indices {
                let history = history_window(scenario, t, window);
                let start = Instant::now();
                let config = fault_aware_desensitization_config(
                    &scenario.paths,
                    &history,
                    settings,
                    &scenario_failure,
                    options.engine,
                )
                .expect("FA Des TE must be solvable");
                solve_seconds += start.elapsed().as_secs_f64();
                mlus.push(max_link_utilization(&scenario.paths, &config, scenario.trace.matrix(t)));
            }
        }
        Scheme::Prediction(predictor) => {
            for &t in &indices {
                let history = history_window(scenario, t, window);
                let start = Instant::now();
                let config =
                    prediction_config(&scenario.paths, &history, *predictor, options.engine)
                        .expect("prediction TE must be solvable");
                solve_seconds += start.elapsed().as_secs_f64();
                let config = apply_failure(scenario, &config, &options.failure);
                mlus.push(max_link_utilization(&scenario.paths, &config, scenario.trace.matrix(t)));
            }
        }
        Scheme::Oblivious | Scheme::Cope => {
            let hose = HoseModel::fit(&scenario.trace, scenario.split.train.clone(), 1.0);
            let start = Instant::now();
            let config = if matches!(scheme, Scheme::Oblivious) {
                oblivious_or_fallback(scenario, &hose)
            } else {
                let predicted: Vec<Vec<f64>> = scenario
                    .split
                    .train
                    .clone()
                    .rev()
                    .take(5)
                    .map(|t| scenario.trace.matrix(t).flatten_pairs())
                    .collect();
                cope_config(&scenario.paths, &predicted, &hose, CopeSettings::default())
                    .map(|r| r.config)
                    .unwrap_or_else(|_| TeConfig::uniform(&scenario.paths))
            };
            precompute_seconds = start.elapsed().as_secs_f64();
            for &t in &indices {
                let config = apply_failure(scenario, &config, &options.failure);
                mlus.push(max_link_utilization(&scenario.paths, &config, scenario.trace.matrix(t)));
            }
        }
        Scheme::HeuristicFineGrained(bound) => {
            for &t in &indices {
                let history = history_window(scenario, t, window);
                let start = Instant::now();
                let config = heuristic_fine_grained_config(
                    &scenario.paths,
                    &history,
                    &train_variances,
                    *bound,
                    options.engine,
                )
                .expect("heuristic fine-grained TE must be solvable");
                solve_seconds += start.elapsed().as_secs_f64();
                let config = apply_failure(scenario, &config, &options.failure);
                mlus.push(max_link_utilization(&scenario.paths, &config, scenario.trace.matrix(t)));
            }
        }
    }

    let mean_solve = if indices.is_empty() { 0.0 } else { solve_seconds / indices.len() as f64 };
    SchemeRun {
        scheme: scheme.name(),
        indices,
        mlus,
        precompute_seconds,
        mean_solve_seconds: mean_solve,
    }
}

fn oblivious_or_fallback(scenario: &Scenario, hose: &HoseModel) -> TeConfig {
    figret_solvers::oblivious_config(&scenario.paths, hose, CuttingPlaneSettings::default())
        .map(|r| r.config)
        .unwrap_or_else(|_| TeConfig::uniform(&scenario.paths))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOptions;
    use figret_topology::{random_link_failures, Topology};

    fn small_scenario() -> Scenario {
        Scenario::build(
            Topology::MetaDbPod,
            &ScenarioOptions { num_snapshots: 80, ..Default::default() },
        )
    }

    fn fast_options() -> EvalOptions {
        EvalOptions { window: 4, max_eval_snapshots: Some(8), ..Default::default() }
    }

    #[test]
    fn omniscient_is_a_lower_bound_for_every_scheme() {
        let scenario = small_scenario();
        let options = fast_options();
        let baseline = omniscient_series(&scenario, &options);
        assert!(!baseline.is_empty());
        for scheme in [
            Scheme::Prediction(Predictor::LastSnapshot),
            Scheme::Desensitization(DesensitizationSettings::default()),
        ] {
            let run = run_scheme(&scenario, &scheme, &options);
            assert_eq!(run.mlus.len(), baseline.len());
            for (m, b) in run.mlus.iter().zip(&baseline) {
                assert!(m + 1e-6 >= *b, "{}: scheme MLU {m} below omniscient {b}", run.scheme);
            }
            let q = run.quality(&baseline);
            assert!(q.normalized_mlu.min >= 1.0 - 1e-6);
        }
    }

    #[test]
    fn learned_schemes_produce_finite_results() {
        let scenario = small_scenario();
        let options = fast_options();
        let baseline = omniscient_series(&scenario, &options);
        for scheme in [
            Scheme::Figret(FigretConfig::fast_test()),
            Scheme::Dote(FigretConfig::fast_test()),
            Scheme::TealLike(FigretConfig::fast_test()),
        ] {
            let run = run_scheme(&scenario, &scheme, &options);
            assert!(run.precompute_seconds > 0.0, "{} must report training time", run.scheme);
            assert!(run.mlus.iter().all(|m| m.is_finite() && *m > 0.0));
            let q = run.quality(&baseline);
            assert!(q.normalized_mlu.mean >= 1.0 - 1e-6);
            assert!(q.normalized_mlu.mean < 20.0, "{} unreasonably bad", run.scheme);
        }
    }

    #[test]
    fn oblivious_and_cope_precompute_static_configs() {
        let scenario = small_scenario();
        let options = fast_options();
        for scheme in [Scheme::Oblivious, Scheme::Cope] {
            let run = run_scheme(&scenario, &scheme, &options);
            assert!(run.precompute_seconds > 0.0);
            assert_eq!(run.mean_solve_seconds, 0.0, "static schemes have no per-snapshot solve");
            assert!(run.mlus.iter().all(|m| m.is_finite()));
        }
    }

    #[test]
    fn failure_scenarios_are_applied() {
        let scenario = small_scenario();
        let failure = random_link_failures(&scenario.graph, 1, 11).unwrap();
        let options = EvalOptions { failure: Some(failure), ..fast_options() };
        let baseline = omniscient_series(&scenario, &options);
        let pred = run_scheme(&scenario, &Scheme::Prediction(Predictor::LastSnapshot), &options);
        let fa = run_scheme(
            &scenario,
            &Scheme::FaultAwareDesensitization(DesensitizationSettings::default()),
            &options,
        );
        assert_eq!(pred.mlus.len(), baseline.len());
        assert_eq!(fa.mlus.len(), baseline.len());
        // Everything must stay at or above the fault-aware oracle.
        for (m, b) in pred.mlus.iter().chain(fa.mlus.iter()).zip(baseline.iter().cycle()) {
            assert!(m + 1e-6 >= *b);
        }
    }

    #[test]
    fn eval_indices_subsampling() {
        let scenario = small_scenario();
        let options = EvalOptions { window: 4, max_eval_snapshots: Some(5), ..Default::default() };
        let idx = options.eval_indices(&scenario);
        assert_eq!(idx.len(), 5);
        let unlimited = EvalOptions { window: 4, max_eval_snapshots: None, ..Default::default() };
        assert!(unlimited.eval_indices(&scenario).len() >= idx.len());
    }

    #[test]
    fn scheme_names_are_stable() {
        assert_eq!(Scheme::Oblivious.name(), "Oblivious");
        assert_eq!(Scheme::Figret(FigretConfig::fast_test()).name(), "FIGRET");
        assert_eq!(Scheme::default_suite(true).len(), 5);
    }
}
