//! Scheme runners: evaluate every TE scheme over the test split of a scenario
//! and collect per-snapshot MLUs plus timing, the raw material of every table
//! and figure.
//!
//! LP-based schemes run their snapshot series through a warm-started
//! [`MluTemplate`]: the program structure is built once, each snapshot swaps
//! in the demand-dependent coefficients and seeds from the previous
//! snapshot's optimal basis, so a series of `T` snapshots costs one cold
//! solve plus `T − 1` (much cheaper) warm re-solves.  The series is solved
//! sequentially — warm starting is inherently order-dependent — which also
//! makes it deterministic by construction; when a probe prefix shows that no
//! seed survives on a trace (heavily bursty on/off demands), the remainder
//! of the series falls back to the per-snapshot rayon fan-out of one-shot
//! solves.  Learned schemes emit all
//! configurations with one batch-major forward pass and evaluate MLUs on the
//! rayon pool; iterative-engine fallbacks keep the old per-snapshot
//! parallelism.  Timing fields report summed per-snapshot compute time.
//! Accumulated LP solver work (pivots per phase, reinversions, warm-start
//! acceptance) is threaded into [`SchemeRun::lp_stats`] for the reports.

use std::time::Instant;

use rayon::prelude::*;

use figret::{FigretConfig, FigretModel, TealLikeModel};
use figret_solvers::{
    cope_config, desensitization_config, fault_aware_desensitization_config,
    heuristic_fine_grained_config, omniscient_config, predict, prediction_config, CopeSettings,
    CuttingPlaneSettings, DesensitizationSettings, HeuristicBound, HoseModel, MluProblem,
    MluTemplate, Predictor, SeriesStats, SolverEngine, HEURISTIC_PREDICTOR,
};
use figret_te::{
    available_paths, max_link_utilization, mean_series_churn, normalize_by,
    reroute_around_failures, SchemeQuality, TeConfig,
};
use figret_topology::FailureScenario;
use figret_traffic::{per_pair_variance_range, DemandMatrix, WindowDataset};

use crate::scenario::Scenario;

/// The TE schemes of the paper's evaluation (§5.1).
#[derive(Debug, Clone)]
pub enum Scheme {
    /// FIGRET (the paper's contribution).
    Figret(FigretConfig),
    /// DOTE: FIGRET's architecture without the robustness term.
    Dote(FigretConfig),
    /// TEAL-like amortized per-demand optimizer.
    TealLike(FigretConfig),
    /// Desensitization-based TE (Google Jupiter hedging).
    Desensitization(DesensitizationSettings),
    /// Fault-aware Desensitization-based TE (knows future failures).
    FaultAwareDesensitization(DesensitizationSettings),
    /// Demand-prediction-based TE.
    Prediction(Predictor),
    /// Demand-oblivious TE over a hose uncertainty set.
    Oblivious,
    /// COPE over a hose uncertainty set.
    Cope,
    /// Appendix C heuristic fine-grained desensitization.
    HeuristicFineGrained(HeuristicBound),
}

impl Scheme {
    /// Display name used in tables and figures.
    pub fn name(&self) -> String {
        match self {
            Scheme::Figret(_) => "FIGRET".to_string(),
            Scheme::Dote(_) => "DOTE".to_string(),
            Scheme::TealLike(_) => "TEAL-like".to_string(),
            Scheme::Desensitization(_) => "Des TE".to_string(),
            Scheme::FaultAwareDesensitization(_) => "FA Des TE".to_string(),
            Scheme::Prediction(_) => "Pred TE".to_string(),
            Scheme::Oblivious => "Oblivious".to_string(),
            Scheme::Cope => "COPE".to_string(),
            Scheme::HeuristicFineGrained(_) => "Heuristic FG".to_string(),
        }
    }

    /// The default comparison set of Figure 5 for small topologies.
    pub fn default_suite(fast: bool) -> Vec<Scheme> {
        let learn = if fast { FigretConfig::fast_test() } else { FigretConfig::default() };
        vec![
            Scheme::Figret(learn.clone()),
            Scheme::Dote(FigretConfig { robustness_weight: 0.0, ..learn.clone() }),
            Scheme::Desensitization(DesensitizationSettings::default()),
            Scheme::Prediction(Predictor::LastSnapshot),
            Scheme::TealLike(learn),
        ]
    }
}

/// Evaluation options shared by all runners.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// History window `H` used for learning-based schemes and for the peak /
    /// prediction windows of the LP-based schemes.
    pub window: usize,
    /// Evaluate at most this many test snapshots (uniformly subsampled); keeps
    /// the LP-heavy schemes tractable on larger topologies.
    pub max_eval_snapshots: Option<usize>,
    /// Engine used by LP-based schemes.
    pub engine: SolverEngine,
    /// Optional link-failure scenario (Figures 7, 14, 15): configurations are
    /// rerouted around the failed links before evaluation.
    pub failure: Option<FailureScenario>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            window: 12,
            max_eval_snapshots: Some(60),
            engine: SolverEngine::Auto,
            failure: None,
        }
    }
}

impl EvalOptions {
    /// The snapshot indices actually evaluated for a scenario.
    pub fn eval_indices(&self, scenario: &Scenario) -> Vec<usize> {
        let all = scenario.test_indices(self.window);
        match self.max_eval_snapshots {
            Some(limit) if all.len() > limit && limit > 0 => {
                let stride = all.len() as f64 / limit as f64;
                (0..limit).map(|i| all[(i as f64 * stride) as usize]).collect()
            }
            _ => all,
        }
    }
}

/// The result of running one scheme over one scenario.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// Scheme display name.
    pub scheme: String,
    /// Snapshot indices evaluated.
    pub indices: Vec<usize>,
    /// Absolute MLU per evaluated snapshot.
    pub mlus: Vec<f64>,
    /// One-off precomputation time (training / cutting plane), seconds.
    pub precompute_seconds: f64,
    /// Mean per-snapshot solution time (NN forward pass or LP solve), seconds.
    pub mean_solve_seconds: f64,
    /// Mean routing churn between consecutive *evaluated* configurations
    /// ([`figret_te::split_ratio_churn`] L1 distance, averaged over the
    /// series) — how much reconfiguration the scheme asks of the network
    /// per evaluated step.  0.0 for static schemes.  Note: when
    /// [`EvalOptions::max_eval_snapshots`] subsamples the test range,
    /// adjacent evaluated snapshots can be several trace snapshots apart,
    /// so churn values are only comparable across runs with the same
    /// evaluation stride (rows within one table always are).
    pub mean_churn: f64,
    /// Accumulated LP solver work over the series (all-zero for learned and
    /// iterative-engine schemes, which perform no simplex pivots).
    pub lp_stats: SeriesStats,
}

impl SchemeRun {
    /// Normalizes the MLUs by a baseline series (usually the omniscient one)
    /// and summarizes them.
    pub fn quality(&self, baseline: &[f64]) -> SchemeQuality {
        let normalized = normalize_by(&self.mlus, baseline);
        SchemeQuality::from_normalized(&self.scheme, &normalized)
    }
}

fn history_window(scenario: &Scenario, t: usize, window: usize) -> Vec<DemandMatrix> {
    (t - window..t).map(|h| scenario.trace.matrix(h).clone()).collect()
}

fn apply_failure(
    scenario: &Scenario,
    config: &TeConfig,
    failure: &Option<FailureScenario>,
) -> TeConfig {
    match failure {
        Some(f) => reroute_around_failures(&scenario.paths, config, f),
        None => config.clone(),
    }
}

/// Whether the options' engine solves this scenario's min-MLU instances with
/// the exact LP (and hence whether the warm-started template path applies).
fn engine_uses_lp(scenario: &Scenario, options: &EvalOptions) -> bool {
    options.engine.uses_lp(scenario.paths.num_paths(), false)
}

/// The omniscient (oracle) MLU series over the evaluated snapshots.  With a
/// failure scenario, the oracle also knows the failures and optimizes only
/// over the surviving paths.  The series is returned in snapshot order.
pub fn omniscient_series(scenario: &Scenario, options: &EvalOptions) -> Vec<f64> {
    omniscient_series_with_stats(scenario, options).0
}

/// [`omniscient_series`] plus the accumulated LP solver work.  On the LP
/// engine the series runs through one warm-started [`MluTemplate`] (one cold
/// solve, then per-snapshot warm re-solves); the iterative engine keeps the
/// per-snapshot rayon fan-out and reports all-zero stats.
pub fn omniscient_series_with_stats(
    scenario: &Scenario,
    options: &EvalOptions,
) -> (Vec<f64>, SeriesStats) {
    let indices = options.eval_indices(scenario);
    let availability = options.failure.as_ref().map(|f| available_paths(&scenario.paths, f));
    let one_shot = |t: usize| {
        let demand = scenario.trace.matrix(t);
        match &availability {
            None => omniscient_config(&scenario.paths, demand, options.engine)
                .expect("omniscient LP must be solvable"),
            Some(alive) => {
                let problem = MluProblem::new(&scenario.paths, demand.flatten_pairs())
                    .with_available(alive.clone());
                figret_solvers::solve_min_mlu(&problem, options.engine)
                    .expect("fault-aware omniscient LP must be solvable")
            }
        }
    };
    let (configs, _, _, stats) = lp_series_or_parallel(
        scenario,
        &indices,
        &None, // the oracle's availability mask already encodes the failure
        engine_uses_lp(scenario, options),
        || MluTemplate::with_options(&scenario.paths, None, availability.clone()),
        |t| scenario.trace.matrix(t).flatten_pairs(),
        one_shot,
    );
    (mlu_series(scenario, &indices, &configs), stats)
}

/// Computes one configuration per snapshot in parallel: times `solve` and
/// applies the optional failure rerouting.  Returns the deployed
/// configurations in snapshot order plus the summed solve time.
fn per_snapshot_parallel<F>(
    scenario: &Scenario,
    indices: &[usize],
    failure: &Option<FailureScenario>,
    solve: F,
) -> (Vec<TeConfig>, f64)
where
    F: Fn(usize) -> TeConfig + Sync,
{
    let results: Vec<(f64, TeConfig)> = indices
        .par_iter()
        .map(|&t| {
            let start = Instant::now();
            let config = solve(t);
            let secs = start.elapsed().as_secs_f64();
            (secs, apply_failure(scenario, &config, failure))
        })
        .collect();
    let solve_seconds = results.iter().map(|(s, _)| s).sum();
    let configs = results.into_iter().map(|(_, c)| c).collect();
    (configs, solve_seconds)
}

/// Runs one warm-started template over the snapshot series (sequentially —
/// each solve seeds from the previous snapshot's basis): times the demand
/// assembly + solve and applies the optional failure rerouting.  Returns the
/// deployed configurations in snapshot order, the summed solve time and the
/// accumulated solver work.
fn per_snapshot_template<F>(
    scenario: &Scenario,
    indices: &[usize],
    failure: &Option<FailureScenario>,
    template: &mut MluTemplate,
    demand_of: F,
) -> (Vec<TeConfig>, f64, SeriesStats)
where
    F: Fn(usize) -> Vec<f64>,
{
    let mut stats = SeriesStats::default();
    let mut solve_seconds = 0.0;
    let mut configs = Vec::with_capacity(indices.len());
    for &t in indices {
        let start = Instant::now();
        let demand = demand_of(t);
        let (config, solve_stats) = template
            .solve(&scenario.paths, &demand)
            .expect("templated min-MLU LP must be solvable");
        solve_seconds += start.elapsed().as_secs_f64();
        stats.record(&solve_stats);
        configs.push(apply_failure(scenario, &config, failure));
    }
    (configs, solve_seconds, stats)
}

/// Sequential template solves before deciding whether warm starting pays on
/// this trace (see [`lp_series_or_parallel`]).
const WARM_PROBE_SNAPSHOTS: usize = 4;

/// One LP-based scheme arm of [`run_scheme`]: the warm-started sequential
/// template series when the engine resolves to the LP, the per-snapshot
/// parallel one-shot fallback otherwise.  `demand_of` assembles the solved
/// demand for a snapshot (template path); `fallback` computes the full
/// configuration (one-shot / iterative path).
///
/// Warm starting is inherently sequential, so it is only worth giving up the
/// per-snapshot rayon fan-out when seeds are actually accepted: the first
/// [`WARM_PROBE_SNAPSHOTS`] solves run through the template, and if *no*
/// re-solve accepted its seed (heavily bursty traces — the damage gate
/// rejects every basis) the remaining snapshots run on the parallel one-shot
/// path instead.  The decision is made from deterministic sequential state,
/// so results stay deterministic.
///
/// Returns `(deployed config series, summed per-snapshot solve seconds,
/// one-off template-construction seconds, accumulated solver work)` —
/// construction is precomputation, not per-snapshot work (the old one-shot
/// path rebuilt the program inside every timed solve; the template path must
/// not hide that cost entirely nor book it per snapshot).
#[allow(clippy::too_many_arguments)]
fn lp_series_or_parallel<F, G>(
    scenario: &Scenario,
    indices: &[usize],
    failure: &Option<FailureScenario>,
    use_lp: bool,
    make_template: impl FnOnce() -> MluTemplate,
    demand_of: F,
    fallback: G,
) -> (Vec<TeConfig>, f64, f64, SeriesStats)
where
    F: Fn(usize) -> Vec<f64>,
    G: Fn(usize) -> TeConfig + Sync,
{
    if !use_lp {
        let (configs, secs) = per_snapshot_parallel(scenario, indices, failure, fallback);
        return (configs, secs, 0.0, SeriesStats::default());
    }
    let start = Instant::now();
    let mut template = make_template();
    let precompute_seconds = start.elapsed().as_secs_f64();
    let probe_len = indices.len().min(WARM_PROBE_SNAPSHOTS);
    let (probe, rest) = indices.split_at(probe_len);
    let (mut configs, mut secs, mut stats) =
        per_snapshot_template(scenario, probe, failure, &mut template, &demand_of);
    if !rest.is_empty() {
        if stats.warm_solves > 0 {
            let (more, more_secs, more_stats) =
                per_snapshot_template(scenario, rest, failure, &mut template, &demand_of);
            configs.extend(more);
            secs += more_secs;
            stats.merge(&more_stats);
        } else {
            // No seed survived the probe: finish on the parallel one-shot
            // path (same optima; `stats` then covers the probe prefix only).
            let (more, more_secs) = per_snapshot_parallel(scenario, rest, failure, fallback);
            configs.extend(more);
            secs += more_secs;
        }
    }
    (configs, secs, precompute_seconds, stats)
}

/// Applies the optional failure rerouting to precomputed configurations in
/// parallel, yielding the configurations the network would actually deploy.
fn deploy_configs(
    scenario: &Scenario,
    configs: Vec<TeConfig>,
    failure: &Option<FailureScenario>,
) -> Vec<TeConfig> {
    if failure.is_none() {
        return configs;
    }
    (0..configs.len())
        .into_par_iter()
        .map(|i| apply_failure(scenario, &configs[i], failure))
        .collect()
}

/// Evaluates deployed configurations (one per snapshot, in order) against
/// the realized matrices in parallel, returning the MLU series in snapshot
/// order.
fn mlu_series(scenario: &Scenario, indices: &[usize], configs: &[TeConfig]) -> Vec<f64> {
    assert_eq!(indices.len(), configs.len(), "one configuration per snapshot is required");
    (0..indices.len())
        .into_par_iter()
        .map(|i| {
            max_link_utilization(&scenario.paths, &configs[i], scenario.trace.matrix(indices[i]))
        })
        .collect()
}

/// Runs a scheme over the evaluated snapshots of a scenario.
///
/// Per-snapshot work runs on the rayon pool: LP-based schemes solve their
/// programs in parallel, learned schemes compute every configuration with one
/// batch-major forward pass and evaluate the MLUs in parallel.  The reported
/// series is always in snapshot order.
pub fn run_scheme(scenario: &Scenario, scheme: &Scheme, options: &EvalOptions) -> SchemeRun {
    let indices = options.eval_indices(scenario);
    let window = options.window;
    // Every arm produces the *deployed* configuration series (failure
    // rerouting already applied); MLUs and churn are scored centrally below.
    let configs: Vec<TeConfig>;
    let mut solve_seconds = 0.0;
    // Every scheme arm assigns its own precomputation time exactly once.
    let precompute_seconds;
    let mut lp_stats = SeriesStats::default();
    let train_variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
    let use_lp = engine_uses_lp(scenario, options);

    match scheme {
        Scheme::Figret(cfg) | Scheme::Dote(cfg) => {
            let mut cfg = cfg.clone();
            cfg.history_window = window;
            if matches!(scheme, Scheme::Dote(_)) {
                cfg.robustness_weight = 0.0;
            }
            let dataset =
                WindowDataset::from_trace(&scenario.trace, window, scenario.split.train.clone());
            let mut model = FigretModel::new(&scenario.paths, &train_variances, cfg);
            let start = Instant::now();
            model.train(&dataset);
            precompute_seconds = start.elapsed().as_secs_f64();
            let histories: Vec<Vec<DemandMatrix>> =
                indices.iter().map(|&t| history_window(scenario, t, window)).collect();
            let start = Instant::now();
            let raw = model.predict_batch(&scenario.paths, &histories);
            solve_seconds = start.elapsed().as_secs_f64();
            configs = deploy_configs(scenario, raw, &options.failure);
        }
        Scheme::TealLike(cfg) => {
            let mut cfg = cfg.clone();
            cfg.history_window = window;
            let dataset =
                WindowDataset::from_trace(&scenario.trace, window, scenario.split.train.clone());
            let mut model = TealLikeModel::new(&scenario.paths, cfg);
            let start = Instant::now();
            model.train(&dataset);
            precompute_seconds = start.elapsed().as_secs_f64();
            let previous: Vec<DemandMatrix> =
                indices.iter().map(|&t| scenario.trace.matrix(t - 1).clone()).collect();
            let start = Instant::now();
            let raw = model.predict_batch(&scenario.paths, &previous);
            solve_seconds = start.elapsed().as_secs_f64();
            configs = deploy_configs(scenario, raw, &options.failure);
        }
        Scheme::Desensitization(settings) => {
            let (series, secs, pre, stats) = lp_series_or_parallel(
                scenario,
                &indices,
                &options.failure,
                use_lp,
                || MluTemplate::for_desensitization(&scenario.paths, settings),
                |t| {
                    let history = history_window(scenario, t, window);
                    predict(&history, settings.predictor).flatten_pairs()
                },
                |t| {
                    let history = history_window(scenario, t, window);
                    desensitization_config(&scenario.paths, &history, settings, options.engine)
                        .expect("Des TE must be solvable")
                },
            );
            configs = series;
            solve_seconds = secs;
            precompute_seconds = pre;
            lp_stats = stats;
        }
        Scheme::FaultAwareDesensitization(settings) => {
            let scenario_failure = options.failure.clone().unwrap_or_else(FailureScenario::none);
            // The fault-aware LP already routes around the failures, so no
            // post-hoc rerouting is applied.
            let (series, secs, pre, stats) = lp_series_or_parallel(
                scenario,
                &indices,
                &None,
                use_lp,
                || {
                    MluTemplate::for_fault_aware_desensitization(
                        &scenario.paths,
                        settings,
                        &scenario_failure,
                    )
                },
                |t| {
                    let history = history_window(scenario, t, window);
                    predict(&history, settings.predictor).flatten_pairs()
                },
                |t| {
                    let history = history_window(scenario, t, window);
                    fault_aware_desensitization_config(
                        &scenario.paths,
                        &history,
                        settings,
                        &scenario_failure,
                        options.engine,
                    )
                    .expect("FA Des TE must be solvable")
                },
            );
            configs = series;
            solve_seconds = secs;
            precompute_seconds = pre;
            lp_stats = stats;
        }
        Scheme::Prediction(predictor) => {
            let (series, secs, pre, stats) = lp_series_or_parallel(
                scenario,
                &indices,
                &options.failure,
                use_lp,
                || MluTemplate::new(&scenario.paths),
                |t| {
                    let history = history_window(scenario, t, window);
                    predict(&history, *predictor).flatten_pairs()
                },
                |t| {
                    let history = history_window(scenario, t, window);
                    prediction_config(&scenario.paths, &history, *predictor, options.engine)
                        .expect("prediction TE must be solvable")
                },
            );
            configs = series;
            solve_seconds = secs;
            precompute_seconds = pre;
            lp_stats = stats;
        }
        Scheme::Oblivious | Scheme::Cope => {
            let hose = HoseModel::fit(&scenario.trace, scenario.split.train.clone(), 1.0);
            let start = Instant::now();
            let config = if matches!(scheme, Scheme::Oblivious) {
                oblivious_or_fallback(scenario, &hose)
            } else {
                let predicted: Vec<Vec<f64>> = scenario
                    .split
                    .train
                    .clone()
                    .rev()
                    .take(5)
                    .map(|t| scenario.trace.matrix(t).flatten_pairs())
                    .collect();
                cope_config(&scenario.paths, &predicted, &hose, CopeSettings::default())
                    .map(|r| r.config)
                    .unwrap_or_else(|_| TeConfig::uniform(&scenario.paths))
            };
            precompute_seconds = start.elapsed().as_secs_f64();
            configs = deploy_configs(scenario, vec![config; indices.len()], &options.failure);
        }
        Scheme::HeuristicFineGrained(bound) => {
            let (series, secs, pre, stats) = lp_series_or_parallel(
                scenario,
                &indices,
                &options.failure,
                use_lp,
                || {
                    MluTemplate::for_heuristic_fine_grained(
                        &scenario.paths,
                        &train_variances,
                        *bound,
                    )
                },
                |t| {
                    let history = history_window(scenario, t, window);
                    predict(&history, HEURISTIC_PREDICTOR).flatten_pairs()
                },
                |t| {
                    let history = history_window(scenario, t, window);
                    heuristic_fine_grained_config(
                        &scenario.paths,
                        &history,
                        &train_variances,
                        *bound,
                        options.engine,
                    )
                    .expect("heuristic fine-grained TE must be solvable")
                },
            );
            configs = series;
            solve_seconds = secs;
            precompute_seconds = pre;
            lp_stats = stats;
        }
    }

    let mlus = mlu_series(scenario, &indices, &configs);
    let mean_churn = mean_series_churn(&configs);
    let mean_solve = if indices.is_empty() { 0.0 } else { solve_seconds / indices.len() as f64 };
    SchemeRun {
        scheme: scheme.name(),
        indices,
        mlus,
        precompute_seconds,
        mean_solve_seconds: mean_solve,
        mean_churn,
        lp_stats,
    }
}

fn oblivious_or_fallback(scenario: &Scenario, hose: &HoseModel) -> TeConfig {
    figret_solvers::oblivious_config(&scenario.paths, hose, CuttingPlaneSettings::default())
        .map(|r| r.config)
        .unwrap_or_else(|_| TeConfig::uniform(&scenario.paths))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOptions;
    use figret_topology::{random_link_failures, Topology};

    fn small_scenario() -> Scenario {
        Scenario::build(
            Topology::MetaDbPod,
            &ScenarioOptions { num_snapshots: 80, ..Default::default() },
        )
    }

    fn fast_options() -> EvalOptions {
        EvalOptions { window: 4, max_eval_snapshots: Some(8), ..Default::default() }
    }

    #[test]
    fn omniscient_is_a_lower_bound_for_every_scheme() {
        let scenario = small_scenario();
        let options = fast_options();
        let baseline = omniscient_series(&scenario, &options);
        assert!(!baseline.is_empty());
        for scheme in [
            Scheme::Prediction(Predictor::LastSnapshot),
            Scheme::Desensitization(DesensitizationSettings::default()),
        ] {
            let run = run_scheme(&scenario, &scheme, &options);
            assert_eq!(run.mlus.len(), baseline.len());
            for (m, b) in run.mlus.iter().zip(&baseline) {
                assert!(m + 1e-6 >= *b, "{}: scheme MLU {m} below omniscient {b}", run.scheme);
            }
            let q = run.quality(&baseline);
            assert!(q.normalized_mlu.min >= 1.0 - 1e-6);
        }
    }

    #[test]
    fn learned_schemes_produce_finite_results() {
        let scenario = small_scenario();
        let options = fast_options();
        let baseline = omniscient_series(&scenario, &options);
        for scheme in [
            Scheme::Figret(FigretConfig::fast_test()),
            Scheme::Dote(FigretConfig::fast_test()),
            Scheme::TealLike(FigretConfig::fast_test()),
        ] {
            let run = run_scheme(&scenario, &scheme, &options);
            assert!(run.precompute_seconds > 0.0, "{} must report training time", run.scheme);
            assert!(run.mlus.iter().all(|m| m.is_finite() && *m > 0.0));
            let q = run.quality(&baseline);
            assert!(q.normalized_mlu.mean >= 1.0 - 1e-6);
            assert!(q.normalized_mlu.mean < 20.0, "{} unreasonably bad", run.scheme);
        }
    }

    #[test]
    fn oblivious_and_cope_precompute_static_configs() {
        let scenario = small_scenario();
        let options = fast_options();
        for scheme in [Scheme::Oblivious, Scheme::Cope] {
            let run = run_scheme(&scenario, &scheme, &options);
            assert!(run.precompute_seconds > 0.0);
            assert_eq!(run.mean_solve_seconds, 0.0, "static schemes have no per-snapshot solve");
            assert!(run.mlus.iter().all(|m| m.is_finite()));
        }
    }

    #[test]
    fn failure_scenarios_are_applied() {
        let scenario = small_scenario();
        let failure = random_link_failures(&scenario.graph, 1, 11).unwrap();
        let options = EvalOptions { failure: Some(failure), ..fast_options() };
        let baseline = omniscient_series(&scenario, &options);
        let pred = run_scheme(&scenario, &Scheme::Prediction(Predictor::LastSnapshot), &options);
        let fa = run_scheme(
            &scenario,
            &Scheme::FaultAwareDesensitization(DesensitizationSettings::default()),
            &options,
        );
        assert_eq!(pred.mlus.len(), baseline.len());
        assert_eq!(fa.mlus.len(), baseline.len());
        // Everything must stay at or above the fault-aware oracle.
        for (m, b) in pred.mlus.iter().chain(fa.mlus.iter()).zip(baseline.iter().cycle()) {
            assert!(m + 1e-6 >= *b);
        }
    }

    #[test]
    fn parallel_series_are_deterministic() {
        // Snapshot fan-out must not perturb result order or values: two runs
        // of the same parallel evaluation yield identical series.
        let scenario = small_scenario();
        let options = fast_options();
        let a = omniscient_series(&scenario, &options);
        let b = omniscient_series(&scenario, &options);
        assert_eq!(a, b);
        let p1 = run_scheme(&scenario, &Scheme::Prediction(Predictor::LastSnapshot), &options);
        let p2 = run_scheme(&scenario, &Scheme::Prediction(Predictor::LastSnapshot), &options);
        assert_eq!(p1.mlus, p2.mlus);
        assert_eq!(p1.indices, p2.indices);
    }

    #[test]
    fn lp_schemes_report_solver_work_and_warm_start() {
        let scenario = small_scenario();
        let options = fast_options();
        for scheme in [
            Scheme::Prediction(Predictor::LastSnapshot),
            Scheme::Desensitization(DesensitizationSettings::default()),
        ] {
            let run = run_scheme(&scenario, &scheme, &options);
            assert_eq!(run.lp_stats.solves, run.indices.len(), "{}", run.scheme);
            assert!(run.lp_stats.totals.iterations > 0, "{} must report pivots", run.scheme);
            assert!(
                run.lp_stats.warm_solves >= run.lp_stats.solves / 2,
                "{}: warm starts must dominate the series ({:?})",
                run.scheme,
                run.lp_stats
            );
            assert_eq!(
                run.lp_stats.totals.iterations,
                run.lp_stats.totals.phase1_iterations + run.lp_stats.totals.phase2_iterations
            );
        }
        // The omniscient series reports its solver work too.
        let (series, stats) = omniscient_series_with_stats(&scenario, &options);
        assert_eq!(stats.solves, series.len());
        assert!(stats.totals.iterations > 0);
        // Static precomputed schemes perform no per-snapshot LP solves.
        let oblivious = run_scheme(&scenario, &Scheme::Oblivious, &options);
        assert_eq!(oblivious.lp_stats, figret_solvers::SeriesStats::default());
    }

    #[test]
    fn eval_indices_subsampling() {
        let scenario = small_scenario();
        let options = EvalOptions { window: 4, max_eval_snapshots: Some(5), ..Default::default() };
        let idx = options.eval_indices(&scenario);
        assert_eq!(idx.len(), 5);
        let unlimited = EvalOptions { window: 4, max_eval_snapshots: None, ..Default::default() };
        assert!(unlimited.eval_indices(&scenario).len() >= idx.len());
    }

    #[test]
    fn scheme_names_are_stable() {
        assert_eq!(Scheme::Oblivious.name(), "Oblivious");
        assert_eq!(Scheme::Figret(FigretConfig::fast_test()).name(), "FIGRET");
        assert_eq!(Scheme::default_suite(true).len(), 5);
    }
}
