//! Replay/online harness and report for the serving subsystem
//! (`serve_sim` binary; DESIGN.md §6).
//!
//! The harness drives a [`figret_serve::ServeController`] with demands
//! pulled from a [`figret_traffic::DemandStream`] — either a replay of a
//! scenario's test split (so every batch scenario is also a serving
//! scenario, and results are directly comparable to [`crate::run_scheme`])
//! or the unbounded online generator (diurnal + drift + flash crowds +
//! failure storms).  The report scores what a production controller is
//! judged by: MLU regret vs. the omniscient per-tick optimum, update count
//! against the budget, routing churn, and per-decision latency percentiles.
//!
//! **Batch-equivalence contract:** with [`ReconfigPolicy::always_update`],
//! the LP engine and the last-value predictor, the replay harness re-solves
//! exactly the per-snapshot series of `run_scheme(Prediction(LastSnapshot))`
//! through an identical warm-started template, so its per-tick MLUs match
//! the batch path bit for bit (`tests/serve_equivalence.rs` enforces 1e-9).

use figret::FigretModel;
use figret_serve::{PredictorKind, ReconfigPolicy, ServeController, ServeLog};
use figret_solvers::{MluTemplate, SeriesStats};
use figret_te::{max_link_utilization_pairs, normalize_by, PathSet, SchemeQuality};
use figret_topology::Topology;
use figret_traffic::{
    per_pair_variance_range, DemandMatrix, DemandStream, OnlineStream, OnlineStreamConfig,
    ReplayStream, WindowDataset,
};

use crate::experiments::ExperimentOptions;
use crate::report::{lp_work_columns, lp_work_header, print_csv_series, print_table};
use crate::scenario::Scenario;

/// Which engine the controller serves from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEngine {
    /// Warm-started LP re-solves only.
    Lp,
    /// Learned inference (trained on the scenario's train split) with the
    /// LP as audit reference and degradation fallback.
    Learned,
}

/// Options of one `serve_sim` run.
#[derive(Debug, Clone)]
pub struct ServeSimOptions {
    /// Common experiment options (scenario scale, window, fast mode).
    pub experiment: ExperimentOptions,
    /// Topology to serve.
    pub topology: Topology,
    /// Engine the controller serves from.
    pub engine: ServeEngine,
    /// Online predictor feeding the controller.
    pub predictor: PredictorKind,
    /// Reconfiguration policy (hysteresis, budget, fallback).
    pub policy: ReconfigPolicy,
    /// When > 0, serve this many ticks from the unbounded online generator
    /// (after warming up on it) instead of replaying the test split.
    pub online_ticks: usize,
    /// Cap on the number of replay decision ticks (`None` = the whole test
    /// split).  Streaming is contiguous, so the cap truncates rather than
    /// subsamples.
    pub max_ticks: Option<usize>,
    /// Learned engine only: serve from the compiled f32 inference plan
    /// (zero-alloc hot path) instead of the f64 autodiff graph.  Policy
    /// decisions must not change — CI diffs `decision_digest` between the
    /// two inference paths.
    pub use_plan: bool,
}

impl ServeSimOptions {
    /// Defaults: replay GEANT with the learned engine, last-value predictor
    /// and the default policy.
    pub fn new(experiment: ExperimentOptions) -> ServeSimOptions {
        ServeSimOptions {
            experiment,
            topology: Topology::Geant,
            engine: ServeEngine::Learned,
            predictor: PredictorKind::LastValue,
            policy: ReconfigPolicy::default(),
            online_ticks: 0,
            max_ticks: None,
            use_plan: false,
        }
    }
}

/// The result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Display name (scenario, engine, predictor).
    pub name: String,
    /// Replay: the trace snapshot index served at each tick.  Online: the
    /// tick numbers themselves.
    pub indices: Vec<usize>,
    /// The controller's event/decision log.
    pub log: ServeLog,
    /// Omniscient (per-tick optimal) MLU over the same demands, the
    /// normalizer of the regret metric.
    pub omniscient: Vec<f64>,
    /// Accumulated LP solver work of the controller's template re-solves.
    pub lp_stats: SeriesStats,
    /// Whether the controller abandoned learned inference for the LP.
    pub fell_back: bool,
}

impl ServeRun {
    /// Normalized-MLU (regret) summary vs. the omniscient series.
    pub fn regret(&self) -> SchemeQuality {
        let normalized = normalize_by(&self.log.realized_mlus(), &self.omniscient);
        SchemeQuality::from_normalized(&self.name, &normalized)
    }
}

/// Parses a CLI topology spelling (`geant`, `pod-db`, `tor-web`, …: the
/// Table 1 names lowercased with `-` for spaces, or the enum variant name).
pub fn parse_topology(spec: &str) -> Result<Topology, String> {
    let key = spec.to_ascii_lowercase();
    Topology::all()
        .into_iter()
        .find(|t| {
            t.name().to_ascii_lowercase().replace(' ', "-") == key
                || format!("{t:?}").to_ascii_lowercase() == key
        })
        .ok_or_else(|| {
            let known: Vec<String> = Topology::all()
                .iter()
                .map(|t| t.name().to_ascii_lowercase().replace(' ', "-"))
                .collect();
            format!("unknown topology '{spec}' (known: {})", known.join(", "))
        })
}

/// Builds the controller for a scenario: trains the FIGRET model on the
/// train split for [`ServeEngine::Learned`], or goes straight to the LP.
fn build_controller(scenario: &Scenario, options: &ServeSimOptions) -> ServeController {
    let predictor = options.predictor.build();
    match options.engine {
        ServeEngine::Lp => ServeController::lp(
            &scenario.paths,
            options.experiment.window,
            predictor,
            options.policy.clone(),
        ),
        ServeEngine::Learned => {
            let cfg = options.experiment.learning_config();
            let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
            let dataset = WindowDataset::from_trace(
                &scenario.trace,
                cfg.history_window,
                scenario.split.train.clone(),
            );
            let mut model = FigretModel::new(&scenario.paths, &variances, cfg);
            model.train(&dataset);
            let mut controller =
                ServeController::learned(&scenario.paths, model, predictor, options.policy.clone());
            if options.use_plan {
                controller.enable_inference_plan();
            }
            controller
        }
    }
}

/// Runs the serving loop: `warmup` observations, then one decision tick per
/// demand (at most `ticks`, or until the stream ends).  Returns the log and
/// the realized demands, in tick order.
fn drive(
    controller: &mut ServeController,
    stream: &mut dyn DemandStream,
    warmup: usize,
    ticks: Option<usize>,
) -> (ServeLog, Vec<DemandMatrix>) {
    for _ in 0..warmup {
        let demand = stream.next_demand().expect("stream ended during controller warmup");
        controller.observe(&demand);
    }
    let mut log = ServeLog::new();
    let mut realized = Vec::new();
    let limit = ticks.unwrap_or(usize::MAX);
    while realized.len() < limit {
        let Some(demand) = stream.next_demand() else { break };
        let outcome = controller.step(&demand);
        log.push(outcome.record, outcome.decision_seconds);
        realized.push(demand);
    }
    (log, realized)
}

/// The omniscient per-tick optimum over a demand sequence, solved through
/// one warm-started template (sequential, deterministic).
fn omniscient_over(paths: &PathSet, demands: &[DemandMatrix]) -> Vec<f64> {
    let mut template = MluTemplate::new(paths);
    demands
        .iter()
        .map(|demand| {
            let pairs = demand.flatten_pairs();
            let (config, _) =
                template.solve(paths, &pairs).expect("the omniscient min-MLU LP must be solvable");
            max_link_utilization_pairs(paths, &config, &pairs)
        })
        .collect()
}

fn engine_name(options: &ServeSimOptions) -> &'static str {
    match options.engine {
        ServeEngine::Lp => "lp",
        ServeEngine::Learned if options.use_plan => "learned/plan",
        ServeEngine::Learned => "learned",
    }
}

/// Replays the scenario's test split through the controller; see the
/// module docs for the batch-equivalence contract.
pub fn serve_replay(scenario: &Scenario, options: &ServeSimOptions) -> ServeRun {
    let window = options.experiment.window;
    let mut controller = build_controller(scenario, options);
    let warmup = controller.window().max(window);
    let first = scenario.split.test.start.max(warmup);
    let mut indices: Vec<usize> = (first..scenario.trace.len()).collect();
    if let Some(cap) = options.max_ticks {
        indices.truncate(cap);
    }
    let mut stream = ReplayStream::once(scenario.trace.clone()).starting_at(first - warmup);
    let (log, realized) = drive(&mut controller, &mut stream, warmup, Some(indices.len()));
    assert_eq!(log.len(), indices.len(), "one decision per replayed test snapshot");
    let omniscient = omniscient_over(&scenario.paths, &realized);
    ServeRun {
        name: format!(
            "{} (replay, {}, {} predictor)",
            scenario.name,
            engine_name(options),
            options.predictor.build().name()
        ),
        indices,
        log,
        omniscient,
        lp_stats: *controller.lp_stats(),
        fell_back: controller.fell_back(),
    }
}

/// Serves `ticks` demands from the unbounded online generator (warmed up on
/// the same stream).  The model, when learned, is still trained on the
/// scenario's recorded train split — serving synthetic drift with a model
/// trained on yesterday's traffic is exactly the distribution-shift
/// situation the fallback policy guards against.
pub fn serve_online(scenario: &Scenario, ticks: usize, options: &ServeSimOptions) -> ServeRun {
    let mut controller = build_controller(scenario, options);
    let warmup = controller.window().max(options.experiment.window);
    let stream_config = OnlineStreamConfig {
        interval_seconds: scenario.trace.interval_seconds(),
        seed: 0x5eed ^ (ticks as u64),
        ..Default::default()
    };
    let mut stream = OnlineStream::from_graph(&scenario.graph, 0.25, stream_config);
    let (log, realized) = drive(&mut controller, &mut stream, warmup, Some(ticks));
    let omniscient = omniscient_over(&scenario.paths, &realized);
    ServeRun {
        name: format!(
            "{} (online, {}, {} predictor)",
            scenario.name,
            engine_name(options),
            options.predictor.build().name()
        ),
        indices: (0..log.len()).collect(),
        log,
        omniscient,
        lp_stats: *controller.lp_stats(),
        fell_back: controller.fell_back(),
    }
}

/// Prints the serving report: decision summary, regret vs. omniscient,
/// latency percentiles, LP work and the determinism digest.
pub fn print_serve_report(run: &ServeRun) {
    use figret_serve::HoldReason;

    println!("\n# serve_sim — {}", run.name);
    let ticks = run.log.len().max(1);
    let updates = run.log.update_count();
    let regret = run.regret();
    let rows = vec![
        vec!["decision ticks".to_string(), format!("{}", run.log.len())],
        vec!["updates deployed".to_string(), format!("{updates}")],
        vec!["update rate".to_string(), format!("{:.1}%", 100.0 * updates as f64 / ticks as f64)],
        vec![
            "holds (hysteresis)".to_string(),
            format!("{}", run.log.hold_count(HoldReason::BelowHysteresis)),
        ],
        vec![
            "holds (budget)".to_string(),
            format!("{}", run.log.hold_count(HoldReason::BudgetExhausted)),
        ],
        vec!["total churn (L1)".to_string(), format!("{:.3}", run.log.total_churn())],
        vec![
            "churn per update".to_string(),
            format!("{:.3}", run.log.total_churn() / updates.max(1) as f64),
        ],
        vec![
            "MLU regret mean/p99/max".to_string(),
            format!(
                "{:.3} / {:.3} / {:.3}",
                regret.normalized_mlu.mean, regret.normalized_mlu.p99, regret.normalized_mlu.max
            ),
        ],
        vec![
            "decision latency p50/p99".to_string(),
            format!(
                "{:.1} µs / {:.1} µs",
                1e6 * run.log.latency_percentile(0.5),
                1e6 * run.log.latency_percentile(0.99)
            ),
        ],
        vec![
            "fell back to LP".to_string(),
            match run.log.fallback_tick() {
                Some(t) => format!("yes (tick {t})"),
                None if run.fell_back => "yes".to_string(),
                None => "no".to_string(),
            },
        ],
    ];
    print_table("serving summary", &["metric", "value"], &rows);

    let mut work_header = vec!["engine"];
    work_header.extend(lp_work_header());
    let mut work_row = vec!["controller LP".to_string()];
    work_row.extend(lp_work_columns(&run.lp_stats));
    print_table("LP solver work (controller re-solves)", &work_header, &[work_row]);

    print_csv_series("realized_mlu", &run.log.realized_mlus());
    print_csv_series("omniscient_mlu", &run.omniscient);
    // Stable digests of the decision log: CI replays the same scenario under
    // different RAYON_NUM_THREADS settings and diffs the full digest, and
    // replays graph vs. plan inference and diffs the decision digest (which
    // hashes actions only, so it is invariant to the f32 plan's sub-1e-4
    // output perturbations).
    println!("decision_log_digest,{:#018x}", run.log.digest());
    println!("decision_digest,{:#018x}", run.log.decision_digest());
}

/// Runs the full `serve_sim` experiment for the options and prints the
/// report.
pub fn serve_sim(options: &ServeSimOptions) {
    let scenario = Scenario::build(options.topology, &options.experiment.scenario_options());
    let run = if options.online_ticks > 0 {
        serve_online(&scenario, options.online_ticks, options)
    } else {
        serve_replay(&scenario, options)
    };
    print_serve_report(&run);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOptions;

    fn tiny_options(engine: ServeEngine) -> ServeSimOptions {
        let experiment = ExperimentOptions {
            fast: true,
            snapshots: 60,
            window: 4,
            max_eval: 8,
            ..Default::default()
        };
        ServeSimOptions {
            engine,
            policy: ReconfigPolicy::always_update(),
            max_ticks: Some(6),
            topology: Topology::MetaDbPod,
            ..ServeSimOptions::new(experiment)
        }
    }

    fn pod_scenario() -> Scenario {
        Scenario::build(
            Topology::MetaDbPod,
            &ScenarioOptions { num_snapshots: 60, ..Default::default() },
        )
    }

    #[test]
    fn replay_reports_regret_above_one() {
        let scenario = pod_scenario();
        let run = serve_replay(&scenario, &tiny_options(ServeEngine::Lp));
        assert_eq!(run.log.len(), 6);
        assert_eq!(run.indices.len(), 6);
        assert_eq!(run.omniscient.len(), 6);
        let regret = run.regret();
        assert!(regret.normalized_mlu.min >= 1.0 - 1e-6, "{:?}", regret.normalized_mlu);
        assert_eq!(run.log.update_count(), 6);
        print_serve_report(&run); // must not panic
    }

    #[test]
    fn online_mode_serves_generated_ticks() {
        let scenario = pod_scenario();
        let run = serve_online(&scenario, 5, &tiny_options(ServeEngine::Lp));
        assert_eq!(run.log.len(), 5);
        assert!(run.log.realized_mlus().iter().all(|m| m.is_finite() && *m > 0.0));
        let regret = run.regret();
        assert!(regret.normalized_mlu.min >= 1.0 - 1e-6);
    }

    #[test]
    fn replay_is_deterministic_across_runs() {
        let scenario = pod_scenario();
        let options = tiny_options(ServeEngine::Lp);
        let a = serve_replay(&scenario, &options);
        let b = serve_replay(&scenario, &options);
        assert_eq!(a.log.records, b.log.records);
        assert_eq!(a.log.digest(), b.log.digest());
        assert_eq!(a.omniscient, b.omniscient);
    }

    #[test]
    fn topology_parsing_accepts_table1_names() {
        assert_eq!(parse_topology("geant").unwrap(), Topology::Geant);
        assert_eq!(parse_topology("pod-db").unwrap(), Topology::MetaDbPod);
        assert_eq!(parse_topology("ToR-WEB").unwrap(), Topology::MetaWebTor);
        assert_eq!(parse_topology("metadbtor").unwrap(), Topology::MetaDbTor);
        assert!(parse_topology("atlantis").unwrap_err().contains("known:"));
    }
}
