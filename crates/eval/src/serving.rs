//! Replay/online harness and report for the serving subsystem
//! (`serve_sim` binary; DESIGN.md §6).
//!
//! The harness drives a [`figret_serve::ServeController`] with demands
//! pulled from a [`figret_traffic::DemandStream`] — either a replay of a
//! scenario's test split (so every batch scenario is also a serving
//! scenario, and results are directly comparable to [`crate::run_scheme`])
//! or the unbounded online generator (diurnal + drift + flash crowds +
//! failure storms).  The report scores what a production controller is
//! judged by: MLU regret vs. the omniscient per-tick optimum, update count
//! against the budget, routing churn, and per-decision latency percentiles.
//!
//! **Batch-equivalence contract:** with [`ReconfigPolicy::always_update`],
//! the LP engine and the last-value predictor, the replay harness re-solves
//! exactly the per-snapshot series of `run_scheme(Prediction(LastSnapshot))`
//! through an identical warm-started template, so its per-tick MLUs match
//! the batch path bit for bit (`tests/serve_equivalence.rs` enforces 1e-9).

use std::path::PathBuf;
use std::sync::Arc;

use figret::FigretModel;
use figret_serve::{
    PredictorKind, ReconfigPolicy, RecoveryConfig, RecoveryStats, ServeController, ServeLog,
    StepOutcome, Transition,
};
use figret_solvers::{MluTemplate, SeriesStats};
use figret_te::{max_link_utilization_pairs, normalize_by, PathSet, SchemeQuality};
use figret_telemetry::{exposition, JsonlSink, Registry};
use figret_topology::{FabricSpec, Topology};
use figret_traffic::{
    datacenter::{tor_trace_sparse, TorTrafficConfig},
    per_pair_variance_range, ActivePairs, DemandMatrix, DemandStream, OnlineStream,
    OnlineStreamConfig, ReplayStream, SparseTrace, StepShiftConfig, TrafficTrace, WindowDataset,
};

use crate::experiments::ExperimentOptions;
use crate::profile::print_profile_report;
use crate::report::{
    latency_histogram, latency_us, lp_work_columns, lp_work_header, print_csv_series, print_table,
};
use crate::scenario::Scenario;

/// Which engine the controller serves from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEngine {
    /// Warm-started LP re-solves only.
    Lp,
    /// Learned inference (trained on the scenario's train split) with the
    /// LP as audit reference and degradation fallback.
    Learned,
}

/// What the controller ingests demands as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandMode {
    /// Dense [`DemandMatrix`] snapshots through the matrix adapter.
    Dense,
    /// Sparse columnar snapshots ([`SparseTrace`]) through the column entry
    /// points.  On a Table 1 replay the columns are scattered back onto the
    /// dense pair universe, so decisions are bit-identical to
    /// [`DemandMode::Dense`] — CI diffs the digests.
    Sparse,
}

/// What network the controller serves: one of the paper's Table 1 networks
/// (dense pair universe), or a generated 512–4096-ToR fabric (restricted
/// pair universe, sparse end to end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeTopology {
    /// One of the eight Table 1 networks.
    Table1(Topology),
    /// A large generated fabric; serving is LP-engine and sparse-columnar.
    Fabric(FabricSpec),
}

/// Options of one `serve_sim` run.
#[derive(Debug, Clone)]
pub struct ServeSimOptions {
    /// Common experiment options (scenario scale, window, fast mode).
    pub experiment: ExperimentOptions,
    /// Network to serve.
    pub topology: ServeTopology,
    /// Demand-ingestion storage mode.
    pub demand: DemandMode,
    /// Engine the controller serves from.
    pub engine: ServeEngine,
    /// Online predictor feeding the controller.
    pub predictor: PredictorKind,
    /// Reconfiguration policy (hysteresis, budget, fallback).
    pub policy: ReconfigPolicy,
    /// When > 0, serve this many ticks from the unbounded online generator
    /// (after warming up on it) instead of replaying the test split.
    pub online_ticks: usize,
    /// Cap on the number of replay decision ticks (`None` = the whole test
    /// split).  Streaming is contiguous, so the cap truncates rather than
    /// subsamples.
    pub max_ticks: Option<usize>,
    /// Learned engine only: serve from the compiled f32 inference plan
    /// (zero-alloc hot path) instead of the f64 autodiff graph.  Policy
    /// decisions must not change — CI diffs `decision_digest` between the
    /// two inference paths.
    pub use_plan: bool,
    /// When > 0, serve through a sharded [`figret_serve::FleetController`]
    /// with this many source-block shards under one global admission budget
    /// (`crate::fleet`).  `--shards 1` runs a one-shard fleet, whose digests
    /// must equal the unsharded path's.  0 = the single-controller path.
    pub shards: usize,
    /// Learned engine only: when > 0, enable the self-healing recovery
    /// ladder (DESIGN.md §9) and retrain a challenger every this many ticks
    /// while degraded.  0 leaves degradation terminal (PR 5 behavior).
    pub retrain_every: usize,
    /// Recovery: observed demand columns kept as the challenger's sliding
    /// training window.
    pub retrain_window: usize,
    /// Recovery: consecutive shadow-audit wins before a challenger is
    /// promoted back to live serving.
    pub promotion_patience: usize,
    /// Online mode only: when > 0, inject a deterministic step shift into
    /// the generated stream this many decision ticks into the run (the
    /// distribution-shift drill the recovery ladder is judged on).
    pub shift_tick: usize,
    /// Step-shift magnitude: even pair slots scale by the factor, odd slots
    /// by its reciprocal (aggregate volume is roughly preserved).
    pub shift_factor: f64,
    /// When set, arm out-of-band telemetry (DESIGN.md §10) and write a
    /// JSONL event stream to `<PATH>.jsonl` plus a final Prometheus-style
    /// exposition snapshot to `<PATH>.prom`.  Decision digests are
    /// bit-identical with telemetry armed or disarmed.
    pub metrics_out: Option<PathBuf>,
    /// Snapshot cadence of the JSONL stream, in decision ticks (transition
    /// events are always streamed as they happen).
    pub metrics_every: usize,
}

impl ServeSimOptions {
    /// Defaults: replay GEANT with the learned engine, last-value predictor
    /// and the default policy.
    pub fn new(experiment: ExperimentOptions) -> ServeSimOptions {
        ServeSimOptions {
            experiment,
            topology: ServeTopology::Table1(Topology::Geant),
            demand: DemandMode::Dense,
            engine: ServeEngine::Learned,
            predictor: PredictorKind::LastValue,
            policy: ReconfigPolicy::default(),
            online_ticks: 0,
            max_ticks: None,
            use_plan: false,
            shards: 0,
            retrain_every: 0,
            retrain_window: 32,
            promotion_patience: 3,
            shift_tick: 0,
            shift_factor: 4.0,
            metrics_out: None,
            metrics_every: 10,
        }
    }

    /// The recovery configuration of the run, when recovery is on.
    fn recovery_config(&self) -> Option<RecoveryConfig> {
        (self.retrain_every > 0).then(|| RecoveryConfig {
            retrain_window: self.retrain_window,
            retrain_every: self.retrain_every,
            promotion_patience: self.promotion_patience,
            // Challengers train on a handful of recent columns, so rounds
            // are cheap even at serving-grade depth; shallow retraining
            // plateaus far above the LP and never clears the audit margin.
            retrain_epochs: 150,
            ..RecoveryConfig::default()
        })
    }
}

/// The live metrics stream of an armed run: transition events as they
/// happen, registry snapshots every `every` decision ticks, a final
/// snapshot at end of run, and the Prometheus-style exposition file written
/// by [`MetricsStream::finish`].
pub(crate) struct MetricsStream {
    sink: JsonlSink,
    every: usize,
    prom_path: PathBuf,
    served: usize,
}

impl MetricsStream {
    /// Opens `<base>.jsonl` for the options' `--metrics-out` base path;
    /// `None` when metrics are off.  The serve_sim entry point validated
    /// the parent directory, so file creation failing here is a race (the
    /// directory vanished), reported as a panic with the path.
    pub(crate) fn create(options: &ServeSimOptions) -> Option<MetricsStream> {
        let base = options.metrics_out.as_ref()?;
        let jsonl_path = PathBuf::from(format!("{}.jsonl", base.display()));
        let prom_path = PathBuf::from(format!("{}.prom", base.display()));
        let sink = JsonlSink::create(&jsonl_path).unwrap_or_else(|e| {
            panic!("cannot create metrics stream '{}': {e}", jsonl_path.display())
        });
        Some(MetricsStream { sink, every: options.metrics_every.max(1), prom_path, served: 0 })
    }

    /// Streams one finished tick: every transition as its own event line,
    /// and a full registry snapshot every `every` ticks.
    pub(crate) fn on_tick(&mut self, tick: usize, transitions: &[Transition], registry: &Registry) {
        for t in transitions {
            self.sink
                .event("transition", tick as u64, &[("kind", &format!("{t:?}"))])
                .expect("metrics stream write failed");
        }
        self.served += 1;
        if self.served.is_multiple_of(self.every) {
            self.sink.snapshot(tick as u64, registry).expect("metrics stream write failed");
        }
    }

    /// Convenience wrapper over [`MetricsStream::on_tick`] for a
    /// single-controller step outcome.
    pub(crate) fn on_outcome(&mut self, outcome: &StepOutcome, registry: &Registry) {
        self.on_tick(outcome.record.tick, &outcome.transitions, registry);
    }

    /// Like [`MetricsStream::on_tick`] but with a lazily built registry —
    /// the fleet's merged snapshot is only materialized on the ticks that
    /// actually emit one.
    pub(crate) fn on_tick_lazy(&mut self, tick: usize, registry: impl FnOnce() -> Registry) {
        self.served += 1;
        if self.served.is_multiple_of(self.every) {
            self.sink.snapshot(tick as u64, &registry()).expect("metrics stream write failed");
        }
    }

    /// Writes the final snapshot, the exposition file, and flushes.
    pub(crate) fn finish(&mut self, registry: &Registry) {
        self.sink.snapshot(self.served as u64, registry).expect("metrics stream write failed");
        self.sink.flush().expect("metrics stream flush failed");
        std::fs::write(&self.prom_path, exposition(registry))
            .unwrap_or_else(|e| panic!("cannot write '{}': {e}", self.prom_path.display()));
        println!("metrics_out,{},{}", self.sink.path().display(), self.prom_path.display());
    }
}

/// The result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Display name (scenario, engine, predictor).
    pub name: String,
    /// Replay: the trace snapshot index served at each tick.  Online: the
    /// tick numbers themselves.
    pub indices: Vec<usize>,
    /// The controller's event/decision log.
    pub log: ServeLog,
    /// Omniscient (per-tick optimal) MLU over the same demands, the
    /// normalizer of the regret metric.
    pub omniscient: Vec<f64>,
    /// Accumulated LP solver work of the controller's template re-solves.
    pub lp_stats: SeriesStats,
    /// Whether the controller abandoned learned inference for the LP.
    pub fell_back: bool,
    /// Fabric runs only: demand-storage accounting (sparse vs. the dense
    /// `N×N` equivalent).
    pub memory: Option<FabricMemory>,
    /// Wall-clock seconds of the serving loop end to end (decisions +
    /// ingestion, setup excluded).
    pub serve_seconds: f64,
    /// SD pairs decided per tick (the pair-universe size): each tick makes
    /// one routing decision per active pair, so aggregate throughput is
    /// `ticks · pairs_per_tick / serve_seconds` decisions/sec.
    pub pairs_per_tick: usize,
    /// Recovery counters, when the self-healing ladder was enabled.
    pub recovery: Option<RecoveryStats>,
    /// Final telemetry registry snapshot, when the run was armed
    /// (`--metrics-out`); feeds the end-of-run profile report.
    pub telemetry: Option<Registry>,
}

/// Demand-storage accounting of a fabric serving run.
#[derive(Debug, Clone, Copy)]
pub struct FabricMemory {
    /// Nodes of the fabric graph (ToRs + any aggregation switches).
    pub num_nodes: usize,
    /// Traffic-bearing ToRs.
    pub num_tors: usize,
    /// Active SD pairs (`nnz` of every snapshot).
    pub active_pairs: usize,
    /// Bytes held by the shared pair index.
    pub index_bytes: usize,
    /// Bytes held by the sparse trace's value columns.
    pub sparse_trace_bytes: usize,
    /// Bytes an equivalent dense `DemandMatrix` trace would hold
    /// (`snapshots · n² · 8`).
    pub dense_trace_bytes: usize,
    /// Peak resident set size of the process so far (`VmHWM`), when the
    /// platform exposes it.
    pub peak_rss_bytes: Option<usize>,
}

/// Peak resident set size (`VmHWM`) of the current process in bytes, read
/// from `/proc/self/status`; `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: usize = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

impl ServeRun {
    /// Normalized-MLU (regret) summary vs. the omniscient series.
    pub fn regret(&self) -> SchemeQuality {
        let normalized = normalize_by(&self.log.realized_mlus(), &self.omniscient);
        SchemeQuality::from_normalized(&self.name, &normalized)
    }

    /// Recovery-loop summary derived from the transition log and the
    /// controller's recovery counters; `None` when recovery was off.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        let stats = self.recovery?;
        let end = self.log.records.last().map(|r| r.tick + 1).unwrap_or(0);
        let mut fallback_ticks = 0;
        let mut degraded_since: Option<usize> = None;
        for t in &self.log.transitions {
            match t.transition {
                Transition::Degraded | Transition::Demoted => {
                    degraded_since.get_or_insert(t.tick);
                }
                Transition::Promoted => {
                    if let Some(since) = degraded_since.take() {
                        fallback_ticks += t.tick - since;
                    }
                }
                Transition::PlanRetired | Transition::RetrainStarted => {}
            }
        }
        if let Some(since) = degraded_since {
            fallback_ticks += end.saturating_sub(since);
        }
        let first_degraded = self
            .log
            .transitions
            .iter()
            .find(|t| matches!(t.transition, Transition::Degraded | Transition::Demoted))
            .map(|t| t.tick);
        let time_to_recovery = match (first_degraded, self.log.recovery_tick()) {
            (Some(d), Some(p)) => Some(p - d),
            _ => None,
        };
        let post_recovery_regret = self.log.recovery_tick().and_then(|p| {
            let post: Vec<f64> = self
                .log
                .records
                .iter()
                .zip(&self.omniscient)
                .filter(|(r, _)| r.tick >= p)
                .map(|(r, &o)| r.realized_mlu / o.max(1e-12))
                .collect();
            (!post.is_empty()).then(|| post.iter().sum::<f64>() / post.len() as f64)
        });
        Some(RecoveryReport {
            degraded_events: self.log.transition_count(Transition::Degraded)
                + self.log.transition_count(Transition::Demoted),
            retrains: stats.retrains,
            promotions: stats.promotions,
            detector_trips: stats.detector_trips,
            fallback_ticks,
            time_to_recovery,
            post_recovery_regret,
            retrain_seconds: stats.retrain_seconds,
            retrain_cost_per_tick: stats.retrain_seconds / self.log.len().max(1) as f64,
        })
    }
}

/// What the self-healing ladder did over one serving run — the numbers a
/// recovery story is judged by: how long the controller sat on the LP, how
/// fast it got back to model serving, and how good serving was afterwards.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// `Degraded` plus `Demoted` transitions (drift episodes entered).
    pub degraded_events: usize,
    /// Challenger training rounds completed.
    pub retrains: usize,
    /// Challengers promoted back to live serving.
    pub promotions: usize,
    /// CUSUM drift-detector trips.
    pub detector_trips: usize,
    /// Decision ticks spent serving the LP fallback.
    pub fallback_ticks: usize,
    /// Ticks from the first degradation to the first promotion, when the
    /// run recovered.
    pub time_to_recovery: Option<usize>,
    /// Mean realized/omniscient MLU over the ticks after the first
    /// promotion (the post-recovery serving quality).
    pub post_recovery_regret: Option<f64>,
    /// Wall-clock seconds spent retraining challengers (off the decision
    /// path's latency accounting).
    pub retrain_seconds: f64,
    /// Retraining cost amortized over every decision tick of the run.
    pub retrain_cost_per_tick: f64,
}

/// Parses a CLI topology spelling: the Table 1 names lowercased with `-`
/// for spaces (`geant`, `pod-db`, `tor-web`, …) or the enum variant name,
/// plus the generated large fabrics — `torN` for an N-ToR Jellyfish fabric
/// (`tor512` … `tor4096`) and `podfabN` for an N-ToR two-tier pod fabric.
pub fn parse_topology(spec: &str) -> Result<ServeTopology, String> {
    let key = spec.to_ascii_lowercase();
    if let Some(tors) = key.strip_prefix("podfab").and_then(|n| n.parse::<usize>().ok()) {
        // Mirror `two_tier_pod_size`: 64-ToR pods at scale, 8-ToR pods for
        // CI-sized fabrics (podfab16 is the smoke-test topology).
        let sized =
            (tors >= 128 && tors.is_multiple_of(64)) || (tors >= 16 && tors.is_multiple_of(8));
        if !sized {
            return Err(format!(
                "podfab fabrics need 8-ToR pods (multiples of 8, ≥ 16) or 64-ToR pods \
                 (multiples of 64, ≥ 128), got {tors}"
            ));
        }
        return Ok(ServeTopology::Fabric(FabricSpec::two_tier(tors)));
    }
    if let Some(tors) = key.strip_prefix("tor").and_then(|n| n.parse::<usize>().ok()) {
        if tors < 32 {
            return Err(format!("torN fabrics need at least 32 ToRs, got {tors}"));
        }
        return Ok(ServeTopology::Fabric(FabricSpec::jellyfish(tors)));
    }
    Topology::all()
        .into_iter()
        .find(|t| {
            t.name().to_ascii_lowercase().replace(' ', "-") == key
                || format!("{t:?}").to_ascii_lowercase() == key
        })
        .map(ServeTopology::Table1)
        .ok_or_else(|| {
            let known: Vec<String> = Topology::all()
                .iter()
                .map(|t| t.name().to_ascii_lowercase().replace(' ', "-"))
                .collect();
            format!("unknown topology '{spec}' (known: {}, torN, podfabN)", known.join(", "))
        })
}

/// Builds the controller for a scenario: trains the FIGRET model on the
/// train split for [`ServeEngine::Learned`], or goes straight to the LP.
fn build_controller(scenario: &Scenario, options: &ServeSimOptions) -> ServeController {
    let predictor = options.predictor.build();
    match options.engine {
        ServeEngine::Lp => ServeController::lp(
            &scenario.paths,
            options.experiment.window,
            predictor,
            options.policy.clone(),
        ),
        ServeEngine::Learned => {
            let cfg = options.experiment.learning_config();
            let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
            let dataset = WindowDataset::from_trace(
                &scenario.trace,
                cfg.history_window,
                scenario.split.train.clone(),
            );
            let mut model = FigretModel::new(&scenario.paths, &variances, cfg);
            model.train(&dataset);
            let mut controller =
                ServeController::learned(&scenario.paths, model, predictor, options.policy.clone());
            if options.use_plan {
                controller.enable_inference_plan();
            }
            if let Some(recovery) = options.recovery_config() {
                controller.enable_recovery(recovery);
            }
            controller
        }
    }
}

/// Runs the serving loop: `warmup` observations, then one decision tick per
/// demand (at most `ticks`, or until the stream ends).  Returns the log and
/// the realized demands, in tick order.
fn drive(
    controller: &mut ServeController,
    stream: &mut dyn DemandStream,
    warmup: usize,
    ticks: Option<usize>,
    mut metrics: Option<&mut MetricsStream>,
) -> (ServeLog, Vec<DemandMatrix>) {
    for _ in 0..warmup {
        let demand = stream.next_demand().expect("stream ended during controller warmup");
        controller.observe(&demand);
    }
    let mut log = ServeLog::new();
    let mut realized = Vec::new();
    let limit = ticks.unwrap_or(usize::MAX);
    while realized.len() < limit {
        let Some(demand) = stream.next_demand() else { break };
        let outcome = controller.step(&demand);
        if let Some(m) = metrics.as_deref_mut() {
            m.on_outcome(&outcome, controller.telemetry_registry().expect("armed run"));
        }
        log.push(outcome.record, outcome.decision_seconds);
        realized.push(demand);
    }
    (log, realized)
}

/// The omniscient per-tick optimum over a demand sequence, solved through
/// one warm-started template (sequential, deterministic).
fn omniscient_over(paths: &PathSet, demands: &[DemandMatrix]) -> Vec<f64> {
    let mut template = MluTemplate::new(paths);
    // One flatten buffer for the whole series, not one allocation per solve.
    let mut pairs = vec![0.0; paths.num_pairs()];
    demands
        .iter()
        .map(|demand| {
            demand.flatten_pairs_into(&mut pairs);
            let (config, _) =
                template.solve(paths, &pairs).expect("the omniscient min-MLU LP must be solvable");
            max_link_utilization_pairs(paths, &config, &pairs)
        })
        .collect()
}

/// The omniscient per-tick optimum over a sparse snapshot range, solved on
/// the restricted pair universe of `paths` (columns feed the LP directly).
fn omniscient_over_sparse(paths: &PathSet, trace: &SparseTrace, ticks: &[usize]) -> Vec<f64> {
    let mut template = MluTemplate::new(paths);
    ticks
        .iter()
        .map(|&t| {
            let column = trace.snapshot(t).values();
            let (config, _) =
                template.solve(paths, column).expect("the omniscient min-MLU LP must be solvable");
            max_link_utilization_pairs(paths, &config, column)
        })
        .collect()
}

fn engine_name(options: &ServeSimOptions) -> &'static str {
    match options.engine {
        ServeEngine::Lp => "lp",
        ServeEngine::Learned if options.use_plan => "learned/plan",
        ServeEngine::Learned => "learned",
    }
}

/// Replays the scenario's test split through the controller; see the
/// module docs for the batch-equivalence contract.
pub fn serve_replay(scenario: &Scenario, options: &ServeSimOptions) -> ServeRun {
    let window = options.experiment.window;
    let mut controller = build_controller(scenario, options);
    let mut metrics = MetricsStream::create(options);
    if metrics.is_some() {
        controller.enable_telemetry();
    }
    let warmup = controller.window().max(window);
    let first = scenario.split.test.start.max(warmup);
    let mut indices: Vec<usize> = (first..scenario.trace.len()).collect();
    if let Some(cap) = options.max_ticks {
        indices.truncate(cap);
    }
    let serve_start = std::time::Instant::now();
    let (log, realized) = match options.demand {
        DemandMode::Dense => {
            let mut stream = ReplayStream::once(scenario.trace.clone()).starting_at(first - warmup);
            drive(&mut controller, &mut stream, warmup, Some(indices.len()), metrics.as_mut())
        }
        DemandMode::Sparse => drive_replay_sparse(
            &mut controller,
            &scenario.trace,
            first - warmup,
            warmup,
            &indices,
            metrics.as_mut(),
        ),
    };
    let serve_seconds = serve_start.elapsed().as_secs_f64();
    if let Some(m) = metrics.as_mut() {
        m.finish(controller.telemetry_registry().expect("armed run"));
    }
    assert_eq!(log.len(), indices.len(), "one decision per replayed test snapshot");
    let omniscient = omniscient_over(&scenario.paths, &realized);
    ServeRun {
        name: format!(
            "{} (replay, {}, {} predictor, {} demands)",
            scenario.name,
            engine_name(options),
            options.predictor.build().name(),
            match options.demand {
                DemandMode::Dense => "dense",
                DemandMode::Sparse => "sparse",
            }
        ),
        indices,
        log,
        omniscient,
        lp_stats: *controller.lp_stats(),
        fell_back: controller.fell_back(),
        memory: None,
        serve_seconds,
        pairs_per_tick: scenario.paths.num_pairs(),
        recovery: controller.recovery_enabled().then(|| controller.recovery_stats()),
        telemetry: controller.telemetry_snapshot(),
    }
}

/// The sparse-columnar replay path: converts the trace to a [`SparseTrace`]
/// over its union support, scatters each column onto the controller's dense
/// pair universe (a reused buffer) and drives the column entry points.  The
/// scattered columns equal `flatten_pairs` of the originals exactly, so the
/// decision sequence is bit-identical to the dense path.
fn drive_replay_sparse(
    controller: &mut ServeController,
    trace: &TrafficTrace,
    start: usize,
    warmup: usize,
    indices: &[usize],
    mut metrics: Option<&mut MetricsStream>,
) -> (ServeLog, Vec<DemandMatrix>) {
    let strace = SparseTrace::from_trace(trace);
    let mut column = vec![0.0; strace.active().num_total_pairs()];
    for t in start..start + warmup {
        strace.snapshot(t).scatter_pairs_into(&mut column);
        controller.observe_pairs(&column);
    }
    let mut log = ServeLog::new();
    let mut realized = Vec::with_capacity(indices.len());
    for (offset, &index) in indices.iter().enumerate() {
        let t = start + warmup + offset;
        debug_assert_eq!(t, index, "replay ticks must be contiguous");
        strace.snapshot(t).scatter_pairs_into(&mut column);
        let outcome = controller.step_pairs(&column);
        if let Some(m) = metrics.as_deref_mut() {
            m.on_outcome(&outcome, controller.telemetry_registry().expect("armed run"));
        }
        log.push(outcome.record, outcome.decision_seconds);
        realized.push(trace.matrix(t).clone());
    }
    (log, realized)
}

/// Serves `ticks` demands from the unbounded online generator (warmed up on
/// the same stream).  The model, when learned, is still trained on the
/// scenario's recorded train split — serving synthetic drift with a model
/// trained on yesterday's traffic is exactly the distribution-shift
/// situation the fallback policy guards against.
pub fn serve_online(scenario: &Scenario, ticks: usize, options: &ServeSimOptions) -> ServeRun {
    let mut controller = build_controller(scenario, options);
    let mut metrics = MetricsStream::create(options);
    if metrics.is_some() {
        controller.enable_telemetry();
    }
    let warmup = controller.window().max(options.experiment.window);
    let stream_config = OnlineStreamConfig {
        interval_seconds: scenario.trace.interval_seconds(),
        seed: 0x5eed ^ (ticks as u64),
        // Shift ticks count decision ticks, so the stream-side trigger sits
        // past the warmup observations.
        shift: (options.shift_tick > 0).then(|| StepShiftConfig {
            at_tick: warmup + options.shift_tick,
            factor: options.shift_factor,
        }),
        ..Default::default()
    };
    let mut stream = OnlineStream::from_graph(&scenario.graph, 0.25, stream_config);
    let serve_start = std::time::Instant::now();
    for _ in 0..warmup {
        let demand = stream.next_demand().expect("the online stream is endless");
        controller.observe(&demand);
    }
    // The online loop records transitions and stream annotations alongside
    // the decision records (unlike the replay path's plain `drive`), so the
    // report can narrate the recovery ladder against the stream's episodes.
    let mut log = ServeLog::new();
    let mut realized = Vec::with_capacity(ticks);
    while realized.len() < ticks {
        let demand = stream.next_demand().expect("the online stream is endless");
        let outcome = controller.step(&demand);
        if let Some(m) = metrics.as_mut() {
            m.on_outcome(&outcome, controller.telemetry_registry().expect("armed run"));
        }
        log.annotate(outcome.record.tick, stream.annotation());
        log.record_outcome(&outcome);
        realized.push(demand);
    }
    let serve_seconds = serve_start.elapsed().as_secs_f64();
    if let Some(m) = metrics.as_mut() {
        m.finish(controller.telemetry_registry().expect("armed run"));
    }
    let omniscient = omniscient_over(&scenario.paths, &realized);
    ServeRun {
        name: format!(
            "{} (online, {}, {} predictor)",
            scenario.name,
            engine_name(options),
            options.predictor.build().name()
        ),
        indices: (0..log.len()).collect(),
        log,
        omniscient,
        lp_stats: *controller.lp_stats(),
        fell_back: controller.fell_back(),
        memory: None,
        serve_seconds,
        pairs_per_tick: scenario.paths.num_pairs(),
        recovery: controller.recovery_enabled().then(|| controller.recovery_stats()),
        telemetry: controller.telemetry_snapshot(),
    }
}

/// The shared setup of a fabric serving run — identical for the unsharded
/// path and the sharded fleet, so `--shards 1` replays the exact same
/// scenario (same universe, paths, trace, warmup, tick schedule) and its
/// digests must match the unsharded run's.
pub(crate) struct FabricServeSetup {
    pub fabric: figret_topology::Fabric,
    pub active: Arc<ActivePairs>,
    pub paths: PathSet,
    pub trace: SparseTrace,
    /// Observation-only snapshots before the first decision.
    pub warmup: usize,
    /// Snapshot indices served as decision ticks, in order.
    pub ticks: Vec<usize>,
}

impl FabricServeSetup {
    pub(crate) fn build(spec: &FabricSpec, options: &ServeSimOptions) -> FabricServeSetup {
        let fabric = spec.build();
        let n = fabric.graph.num_nodes();
        // Fixed per-source fan-out: density per_source/(tors-1), i.e. ~1.6%
        // at 1024 ToRs with the default 16.
        let per_source = if options.experiment.fast { 8 } else { 16 };
        let active =
            Arc::new(ActivePairs::sample_among(n, fabric.num_tors, per_source, spec.seed ^ 0xfab));
        let paths = PathSet::k_shortest_for_pairs(&fabric.graph, &active, 3);
        let trace = tor_trace_sparse(
            &fabric.graph,
            &active,
            &TorTrafficConfig {
                num_snapshots: options.experiment.snapshots,
                seed: spec.seed,
                ..Default::default()
            },
        );
        let window = options.experiment.window;
        let warmup = window.max(1).min(trace.len().saturating_sub(1));
        let mut ticks: Vec<usize> = (warmup..trace.len()).collect();
        if let Some(cap) = options.max_ticks {
            ticks.truncate(cap);
        }
        FabricServeSetup { fabric, active, paths, trace, warmup, ticks }
    }

    pub(crate) fn memory(&self) -> FabricMemory {
        let n = self.fabric.graph.num_nodes();
        FabricMemory {
            num_nodes: n,
            num_tors: self.fabric.num_tors,
            active_pairs: self.active.len(),
            index_bytes: self.active.index_bytes(),
            sparse_trace_bytes: self.trace.demand_storage_bytes(),
            dense_trace_bytes: self.trace.len() * n * n * std::mem::size_of::<f64>(),
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// Serves a generated 512–4096-ToR fabric end to end on the sparse core:
/// restricted pair universe ([`ActivePairs::sample_among`]), restricted
/// path set ([`PathSet::k_shortest_for_pairs`]), sparse ToR traffic and the
/// controller's column entry points.  Nothing on this path materializes an
/// `N×N` object — demand storage is proportional to the active-pair count.
///
/// The engine is always the warm-started LP (training a model on a generated
/// fabric is out of scope for the serving harness).
pub fn serve_fabric(spec: &FabricSpec, options: &ServeSimOptions) -> ServeRun {
    let setup = FabricServeSetup::build(spec, options);
    let window = options.experiment.window;
    let mut controller = ServeController::lp(
        &setup.paths,
        window,
        options.predictor.build(),
        options.policy.clone(),
    );
    controller.bind_universe(&setup.active);
    let mut metrics = MetricsStream::create(options);
    if metrics.is_some() {
        controller.enable_telemetry();
    }
    let serve_start = std::time::Instant::now();
    for t in 0..setup.warmup {
        controller.observe_sparse(setup.trace.snapshot(t));
    }
    let mut log = ServeLog::new();
    for &t in &setup.ticks {
        let outcome = controller.step_sparse(setup.trace.snapshot(t));
        if let Some(m) = metrics.as_mut() {
            m.on_outcome(&outcome, controller.telemetry_registry().expect("armed run"));
        }
        log.push(outcome.record, outcome.decision_seconds);
    }
    let serve_seconds = serve_start.elapsed().as_secs_f64();
    if let Some(m) = metrics.as_mut() {
        m.finish(controller.telemetry_registry().expect("armed run"));
    }
    let omniscient = omniscient_over_sparse(&setup.paths, &setup.trace, &setup.ticks);
    let memory = setup.memory();
    ServeRun {
        name: format!(
            "{} ({} ToRs, fabric, lp, {} predictor, sparse demands)",
            setup.fabric.graph.name(),
            setup.fabric.num_tors,
            options.predictor.build().name()
        ),
        indices: setup.ticks,
        log,
        omniscient,
        lp_stats: *controller.lp_stats(),
        fell_back: false,
        memory: Some(memory),
        serve_seconds,
        pairs_per_tick: setup.active.len(),
        recovery: None,
        telemetry: controller.telemetry_snapshot(),
    }
}

/// Prints the demand-storage accounting table of a fabric run (shared by
/// the single-controller and fleet reports).
pub fn print_fabric_memory(mem: &FabricMemory) {
    let mib = |bytes: usize| format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0));
    let density =
        mem.active_pairs as f64 / (mem.num_tors as f64 * (mem.num_tors as f64 - 1.0)).max(1.0);
    let mut rows = vec![
        vec!["fabric size".to_string(), format!("{} ToRs / {} nodes", mem.num_tors, mem.num_nodes)],
        vec![
            "active pairs".to_string(),
            format!("{} ({:.2}% of ToR pairs)", mem.active_pairs, 100.0 * density),
        ],
        vec!["pair index".to_string(), mib(mem.index_bytes)],
        vec!["sparse demand trace".to_string(), mib(mem.sparse_trace_bytes)],
        vec!["dense N×N equivalent".to_string(), mib(mem.dense_trace_bytes)],
        vec![
            "dense / sparse ratio".to_string(),
            format!(
                "{:.1}x",
                mem.dense_trace_bytes as f64
                    / (mem.index_bytes + mem.sparse_trace_bytes).max(1) as f64
            ),
        ],
    ];
    if let Some(rss) = mem.peak_rss_bytes {
        rows.push(vec!["peak RSS (VmHWM)".to_string(), mib(rss)]);
    }
    print_table("demand storage (sparse core)", &["metric", "value"], &rows);
}

/// Prints the serving report: decision summary, regret vs. omniscient,
/// latency percentiles, LP work and the determinism digest.
pub fn print_serve_report(run: &ServeRun) {
    use figret_serve::HoldReason;

    println!("\n# serve_sim — {}", run.name);
    let ticks = run.log.len().max(1);
    let updates = run.log.update_count();
    let regret = run.regret();
    let rows = vec![
        vec!["decision ticks".to_string(), format!("{}", run.log.len())],
        vec!["updates deployed".to_string(), format!("{updates}")],
        vec!["update rate".to_string(), format!("{:.1}%", 100.0 * updates as f64 / ticks as f64)],
        vec![
            "holds (hysteresis)".to_string(),
            format!("{}", run.log.hold_count(HoldReason::BelowHysteresis)),
        ],
        vec![
            "holds (budget)".to_string(),
            format!("{}", run.log.hold_count(HoldReason::BudgetExhausted)),
        ],
        vec!["total churn (L1)".to_string(), format!("{:.3}", run.log.total_churn())],
        vec![
            "churn per update".to_string(),
            format!("{:.3}", run.log.total_churn() / updates.max(1) as f64),
        ],
        vec![
            "MLU regret mean/p99/max".to_string(),
            format!(
                "{:.3} / {:.3} / {:.3}",
                regret.normalized_mlu.mean, regret.normalized_mlu.p99, regret.normalized_mlu.max
            ),
        ],
        vec!["decision latency p50/p99".to_string(), {
            let lat = latency_histogram(&run.log.latencies_seconds);
            format!("{} / {}", latency_us(&lat, 0.5), latency_us(&lat, 0.99))
        }],
        vec![
            "ticks/sec (wall clock)".to_string(),
            format!("{:.1}", run.log.len() as f64 / run.serve_seconds.max(1e-12)),
        ],
        vec![
            "aggregate decisions/sec".to_string(),
            format!(
                "{:.0} ({} pairs/tick)",
                run.log.len() as f64 * run.pairs_per_tick as f64 / run.serve_seconds.max(1e-12),
                run.pairs_per_tick
            ),
        ],
        vec![
            "fell back to LP".to_string(),
            match run.log.fallback_tick() {
                Some(t) => format!("yes (tick {t})"),
                None if run.fell_back => "yes".to_string(),
                None => "no".to_string(),
            },
        ],
    ];
    print_table("serving summary", &["metric", "value"], &rows);

    let mut work_header = vec!["engine"];
    work_header.extend(lp_work_header());
    let mut work_row = vec!["controller LP".to_string()];
    work_row.extend(lp_work_columns(&run.lp_stats));
    print_table("LP solver work (controller re-solves)", &work_header, &[work_row]);

    if let Some(rec) = run.recovery_report() {
        let rows = vec![
            vec!["drift episodes entered".to_string(), format!("{}", rec.degraded_events)],
            vec!["detector trips (CUSUM)".to_string(), format!("{}", rec.detector_trips)],
            vec!["challenger retrains".to_string(), format!("{}", rec.retrains)],
            vec!["promotions".to_string(), format!("{}", rec.promotions)],
            vec!["ticks in LP fallback".to_string(), format!("{}", rec.fallback_ticks)],
            vec![
                "time to recovery".to_string(),
                match rec.time_to_recovery {
                    Some(t) => format!("{t} ticks"),
                    None => "never recovered".to_string(),
                },
            ],
            vec![
                "post-recovery regret (mean)".to_string(),
                match rec.post_recovery_regret {
                    Some(r) => format!("{r:.3}"),
                    None => "n/a".to_string(),
                },
            ],
            vec![
                "retrain cost".to_string(),
                format!(
                    "{:.3} s total / {:.1} µs per tick",
                    rec.retrain_seconds,
                    1e6 * rec.retrain_cost_per_tick
                ),
            ],
        ];
        print_table("self-healing recovery", &["metric", "value"], &rows);
    }

    if let Some(mem) = &run.memory {
        print_fabric_memory(mem);
    }

    if let Some(registry) = &run.telemetry {
        print_profile_report(registry, run.serve_seconds);
    }

    // Machine-greppable transition and annotation lines: CI asserts a
    // `,Promoted` line on the recovery smoke run.
    for t in &run.log.transitions {
        println!("transition,{},{:?}", t.tick, t.transition);
    }
    for (tick, ann) in &run.log.annotations {
        println!(
            "stream_event,{tick},storm={},flashes={},drift_spread={:.3},shifted={}",
            ann.storm_victim.map(|v| v as i64).unwrap_or(-1),
            ann.active_flashes,
            ann.drift_spread,
            ann.shifted
        );
    }

    print_csv_series("realized_mlu", &run.log.realized_mlus());
    print_csv_series("omniscient_mlu", &run.omniscient);
    // Stable digests of the decision log: CI replays the same scenario under
    // different RAYON_NUM_THREADS settings and diffs the full digest, and
    // replays graph vs. plan inference and diffs the decision digest (which
    // hashes actions only, so it is invariant to the f32 plan's sub-1e-4
    // output perturbations).
    println!("decision_log_digest,{:#018x}", run.log.digest());
    println!("decision_digest,{:#018x}", run.log.decision_digest());
}

/// Runs the full `serve_sim` experiment for the options and prints the
/// report.  With `--shards N` (> 0) the run goes through the sharded fleet
/// harness instead of the single controller.
pub fn serve_sim(options: &ServeSimOptions) {
    if options.shards > 0 {
        let run = crate::fleet::serve_fleet(options, options.shards);
        crate::fleet::print_fleet_report(&run);
        return;
    }
    let run = match options.topology {
        ServeTopology::Fabric(spec) => serve_fabric(&spec, options),
        ServeTopology::Table1(topology) => {
            let scenario = Scenario::build(topology, &options.experiment.scenario_options());
            if options.online_ticks > 0 {
                serve_online(&scenario, options.online_ticks, options)
            } else {
                serve_replay(&scenario, options)
            }
        }
    };
    print_serve_report(&run);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOptions;

    fn tiny_options(engine: ServeEngine) -> ServeSimOptions {
        let experiment = ExperimentOptions {
            fast: true,
            snapshots: 60,
            window: 4,
            max_eval: 8,
            ..Default::default()
        };
        ServeSimOptions {
            engine,
            policy: ReconfigPolicy::always_update(),
            max_ticks: Some(6),
            topology: ServeTopology::Table1(Topology::MetaDbPod),
            ..ServeSimOptions::new(experiment)
        }
    }

    fn pod_scenario() -> Scenario {
        Scenario::build(
            Topology::MetaDbPod,
            &ScenarioOptions { num_snapshots: 60, ..Default::default() },
        )
    }

    #[test]
    fn replay_reports_regret_above_one() {
        let scenario = pod_scenario();
        let run = serve_replay(&scenario, &tiny_options(ServeEngine::Lp));
        assert_eq!(run.log.len(), 6);
        assert_eq!(run.indices.len(), 6);
        assert_eq!(run.omniscient.len(), 6);
        let regret = run.regret();
        assert!(regret.normalized_mlu.min >= 1.0 - 1e-6, "{:?}", regret.normalized_mlu);
        assert_eq!(run.log.update_count(), 6);
        print_serve_report(&run); // must not panic
    }

    #[test]
    fn online_mode_serves_generated_ticks() {
        let scenario = pod_scenario();
        let run = serve_online(&scenario, 5, &tiny_options(ServeEngine::Lp));
        assert_eq!(run.log.len(), 5);
        assert!(run.log.realized_mlus().iter().all(|m| m.is_finite() && *m > 0.0));
        let regret = run.regret();
        assert!(regret.normalized_mlu.min >= 1.0 - 1e-6);
    }

    #[test]
    fn replay_is_deterministic_across_runs() {
        let scenario = pod_scenario();
        let options = tiny_options(ServeEngine::Lp);
        let a = serve_replay(&scenario, &options);
        let b = serve_replay(&scenario, &options);
        assert_eq!(a.log.records, b.log.records);
        assert_eq!(a.log.digest(), b.log.digest());
        assert_eq!(a.omniscient, b.omniscient);
    }

    #[test]
    fn topology_parsing_accepts_table1_names() {
        assert_eq!(parse_topology("geant").unwrap(), ServeTopology::Table1(Topology::Geant));
        assert_eq!(parse_topology("pod-db").unwrap(), ServeTopology::Table1(Topology::MetaDbPod));
        assert_eq!(parse_topology("ToR-WEB").unwrap(), ServeTopology::Table1(Topology::MetaWebTor));
        assert_eq!(
            parse_topology("metadbtor").unwrap(),
            ServeTopology::Table1(Topology::MetaDbTor)
        );
        assert!(parse_topology("atlantis").unwrap_err().contains("known:"));
    }

    #[test]
    fn topology_parsing_accepts_fabric_names() {
        assert_eq!(
            parse_topology("tor512").unwrap(),
            ServeTopology::Fabric(FabricSpec::jellyfish(512))
        );
        assert_eq!(
            parse_topology("podfab1024").unwrap(),
            ServeTopology::Fabric(FabricSpec::two_tier(1024))
        );
        // The small-pod fabric the fleet CI smoke rides on (8-ToR pods).
        assert_eq!(
            parse_topology("podfab16").unwrap(),
            ServeTopology::Fabric(FabricSpec::two_tier(16))
        );
        assert!(parse_topology("tor4").is_err());
        assert!(parse_topology("podfab100").is_err());
    }

    #[test]
    fn sparse_replay_is_bit_identical_to_dense_replay() {
        let scenario = pod_scenario();
        let mut options = tiny_options(ServeEngine::Lp);
        let dense = serve_replay(&scenario, &options);
        options.demand = DemandMode::Sparse;
        let sparse = serve_replay(&scenario, &options);
        assert_eq!(dense.log.records, sparse.log.records);
        assert_eq!(dense.log.digest(), sparse.log.digest());
        assert_eq!(dense.omniscient, sparse.omniscient);
    }

    #[test]
    fn fabric_serving_runs_sparse_end_to_end() {
        let spec = FabricSpec::jellyfish(48);
        let experiment =
            ExperimentOptions { fast: true, snapshots: 10, window: 2, ..Default::default() };
        let options = ServeSimOptions {
            engine: ServeEngine::Lp,
            policy: ReconfigPolicy::always_update(),
            max_ticks: Some(4),
            topology: ServeTopology::Fabric(spec),
            ..ServeSimOptions::new(experiment)
        };
        let run = serve_fabric(&spec, &options);
        assert_eq!(run.log.len(), 4);
        assert!(run.log.realized_mlus().iter().all(|m| m.is_finite() && *m > 0.0));
        let regret = run.regret();
        assert!(regret.normalized_mlu.min >= 1.0 - 1e-6, "{:?}", regret.normalized_mlu);
        let mem = run.memory.expect("fabric runs report memory");
        assert_eq!(mem.num_tors, 48);
        assert_eq!(mem.active_pairs, 48 * 8);
        assert!(mem.sparse_trace_bytes < mem.dense_trace_bytes);
        print_serve_report(&run); // must not panic
    }
}
