//! End-of-run serving profile report (DESIGN.md §10): renders a telemetry
//! [`Registry`] snapshot as the per-phase self-time breakdown, the
//! recovery-transition rate table and the counter roll-up that `serve_sim`
//! prints next to its regret/churn numbers.
//!
//! The report is a *rendering* of out-of-band metrics — nothing here feeds
//! back into the serving loop or its digests.

use figret_telemetry::{Histogram, Registry};

use crate::report::print_table;

/// One span row of the profile: a `*_seconds` histogram with its share of
/// the run's wall clock.
struct SpanRow<'a> {
    name: &'a str,
    hist: &'a Histogram,
}

fn us(seconds: f64) -> String {
    format!("{:.1}", 1e6 * seconds)
}

/// Prints the profile report of an armed serving run: every non-empty
/// `*_seconds` span histogram (count, total self-time, share of the serving
/// wall clock, p50/p90/p99), the recovery-transition rates, and the
/// non-zero counters.  `serve_seconds` is the end-to-end serving wall
/// clock the share column is normalized by.
///
/// Span totals are *not* disjoint: `figret_serve_decision_seconds` covers
/// the predict/candidate/MLU-eval sub-spans, and the LP phase spans nest
/// inside the candidate span — shares can sum past 100%.
pub fn print_profile_report(registry: &Registry, serve_seconds: f64) {
    let spans: Vec<SpanRow<'_>> = registry
        .histograms()
        .into_iter()
        .filter(|(name, hist)| name.contains("_seconds") && !hist.is_empty())
        .map(|(name, hist)| SpanRow { name, hist })
        .collect();
    if !spans.is_empty() {
        let wall = serve_seconds.max(1e-12);
        let rows: Vec<Vec<String>> = spans
            .iter()
            .map(|s| {
                vec![
                    s.name.to_string(),
                    format!("{}", s.hist.count()),
                    format!("{:.4} s", s.hist.sum()),
                    format!("{:.1}%", 100.0 * s.hist.sum() / wall),
                    us(s.hist.quantile(0.5)),
                    us(s.hist.quantile(0.9)),
                    us(s.hist.quantile(0.99)),
                ]
            })
            .collect();
        print_table(
            "profile — span self-time (shares overlap across nested spans)",
            &["span", "count", "total", "share", "p50 µs", "p90 µs", "p99 µs"],
            &rows,
        );
    }

    let ticks = registry
        .counter_by_name("figret_serve_ticks_total")
        .or_else(|| registry.counter_by_name("figret_fleet_ticks_total"))
        .unwrap_or(0);
    let transitions: Vec<(&str, u64)> = registry
        .counters()
        .into_iter()
        .filter(|(name, value)| name.starts_with("figret_recovery_transitions_total") && *value > 0)
        .collect();
    if !transitions.is_empty() {
        let rows: Vec<Vec<String>> = transitions
            .iter()
            .map(|(name, value)| {
                let kind = name
                    .split("kind=\"")
                    .nth(1)
                    .and_then(|s| s.strip_suffix("\"}"))
                    .unwrap_or(name);
                vec![
                    kind.to_string(),
                    format!("{value}"),
                    format!("{:.2}", 1000.0 * *value as f64 / ticks.max(1) as f64),
                ]
            })
            .collect();
        print_table("profile — transitions", &["kind", "count", "per 1k ticks"], &rows);
    }

    let counters: Vec<Vec<String>> = registry
        .counters()
        .into_iter()
        .filter(|(_, value)| *value > 0)
        .map(|(name, value)| vec![name.to_string(), format!("{value}")])
        .collect();
    if !counters.is_empty() {
        print_table("profile — counters", &["counter", "value"], &counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_report_renders_spans_transitions_and_counters() {
        let mut r = Registry::new();
        let t = r.counter("figret_serve_ticks_total");
        r.add(t, 80);
        let d = r.counter("figret_recovery_transitions_total{kind=\"promoted\"}");
        r.inc(d);
        let h = r.histogram("figret_serve_decision_seconds");
        for i in 1..=10 {
            r.observe(h, i as f64 * 1e-5);
        }
        r.histogram("figret_serve_finish_seconds"); // empty: must be skipped
        print_profile_report(&r, 0.5); // must not panic
    }

    #[test]
    fn profile_report_handles_an_empty_registry() {
        print_profile_report(&Registry::new(), 1.0); // must not panic
    }
}
