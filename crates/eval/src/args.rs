//! Shared command-line flag parsing for the experiment binaries.
//!
//! Every binary under `src/bin/` accepts the same core flags (`--fast`,
//! `--snapshots N`, …) and some add their own; before this module each
//! parser re-implemented the same scan-and-match loop and panicked on a
//! malformed numeric argument.  [`FlagSet`] is the one shared
//! implementation: flags are *declared* (name, default, help line), parsing
//! returns a typed [`FlagValues`], and any user error — unknown flag,
//! missing or malformed value — produces a proper usage message instead of
//! a panic.

use std::collections::{BTreeMap, BTreeSet};

/// The type and default of one declared flag.
#[derive(Debug, Clone)]
enum FlagDefault {
    /// Boolean switch (present / absent).
    Switch,
    /// `--flag N` with an unsigned integer value.
    Number(usize),
    /// `--flag X` with a floating-point value.
    Float(f64),
    /// `--flag S` with a free-form string value.
    Text(String),
}

/// A declarative set of command-line flags; see the module docs.
#[derive(Debug, Clone)]
pub struct FlagSet {
    program: String,
    about: String,
    /// Declaration order, for the usage message.
    order: Vec<(String, FlagDefault, String)>,
}

impl FlagSet {
    /// An empty flag set for `program` (shown in the usage message).
    pub fn new(program: &str, about: &str) -> FlagSet {
        FlagSet { program: program.to_string(), about: about.to_string(), order: Vec::new() }
    }

    fn declare(mut self, name: &str, default: FlagDefault, help: &str) -> FlagSet {
        assert!(!self.order.iter().any(|(n, _, _)| n == name), "flag --{name} declared twice");
        self.order.push((name.to_string(), default, help.to_string()));
        self
    }

    /// Declares a boolean switch `--name`.
    pub fn switch(self, name: &str, help: &str) -> FlagSet {
        self.declare(name, FlagDefault::Switch, help)
    }

    /// Declares an unsigned-integer flag `--name N`.
    pub fn number(self, name: &str, default: usize, help: &str) -> FlagSet {
        self.declare(name, FlagDefault::Number(default), help)
    }

    /// Declares a floating-point flag `--name X`.
    pub fn float(self, name: &str, default: f64, help: &str) -> FlagSet {
        self.declare(name, FlagDefault::Float(default), help)
    }

    /// Declares a string flag `--name S`.
    pub fn text(self, name: &str, default: &str, help: &str) -> FlagSet {
        self.declare(name, FlagDefault::Text(default.to_string()), help)
    }

    /// The usage message listing every declared flag with its default.
    pub fn usage(&self) -> String {
        let mut out = format!(
            "{} — {}\n\nUSAGE:\n  {} [flags]\n\nFLAGS:\n",
            self.program, self.about, self.program
        );
        for (name, default, help) in &self.order {
            let lhs = match default {
                FlagDefault::Switch => format!("--{name}"),
                FlagDefault::Number(d) => format!("--{name} N (default {d})"),
                FlagDefault::Float(d) => format!("--{name} X (default {d})"),
                FlagDefault::Text(d) => format!("--{name} S (default {d})"),
            };
            out.push_str(&format!("  {lhs:<38} {help}\n"));
        }
        out
    }

    /// Parses `args` (without the program name).  Errors describe the
    /// offending flag; callers that face a user should prefer
    /// [`FlagSet::parse_or_exit`].
    pub fn parse<I: IntoIterator<Item = String>>(&self, args: I) -> Result<FlagValues, String> {
        let mut values = FlagValues {
            switches: BTreeMap::new(),
            numbers: BTreeMap::new(),
            floats: BTreeMap::new(),
            texts: BTreeMap::new(),
            provided: BTreeSet::new(),
        };
        for (name, default, _) in &self.order {
            match default {
                FlagDefault::Switch => {
                    values.switches.insert(name.clone(), false);
                }
                FlagDefault::Number(d) => {
                    values.numbers.insert(name.clone(), *d);
                }
                FlagDefault::Float(d) => {
                    values.floats.insert(name.clone(), *d);
                }
                FlagDefault::Text(d) => {
                    values.texts.insert(name.clone(), d.clone());
                }
            }
        }
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let name = match arg.strip_prefix("--") {
                Some(n) => n,
                None => return Err(format!("unexpected argument '{arg}' (flags start with --)")),
            };
            let declared = self
                .order
                .iter()
                .find(|(n, _, _)| n == name)
                .ok_or_else(|| format!("unknown flag --{name}"))?;
            match &declared.1 {
                FlagDefault::Switch => {
                    values.switches.insert(name.to_string(), true);
                }
                kind => {
                    let raw =
                        args.get(i + 1).ok_or_else(|| format!("--{name} requires an argument"))?;
                    match kind {
                        FlagDefault::Number(_) => {
                            let v = raw.parse::<usize>().map_err(|_| {
                                format!("--{name} requires an unsigned integer, got '{raw}'")
                            })?;
                            values.numbers.insert(name.to_string(), v);
                        }
                        FlagDefault::Float(_) => {
                            let v = raw
                                .parse::<f64>()
                                .map_err(|_| format!("--{name} requires a number, got '{raw}'"))?;
                            values.floats.insert(name.to_string(), v);
                        }
                        FlagDefault::Text(_) => {
                            values.texts.insert(name.to_string(), raw.clone());
                        }
                        FlagDefault::Switch => unreachable!("handled above"),
                    }
                    i += 1;
                }
            }
            values.provided.insert(name.to_string());
            i += 1;
        }
        Ok(values)
    }

    /// Parses `args`; on any user error prints the error and the usage
    /// message to stderr and exits with status 2 (the binary entry points).
    pub fn parse_or_exit<I: IntoIterator<Item = String>>(&self, args: I) -> FlagValues {
        match self.parse(args) {
            Ok(values) => values,
            Err(message) => self.usage_error(&message),
        }
    }

    /// Reports a usage error that parsing alone cannot catch (an invalid
    /// value or flag combination): prints the error plus the usage message
    /// to stderr and exits with status 2, exactly like a parse error.
    pub fn usage_error(&self, message: &str) -> ! {
        eprintln!("error: {message}\n");
        eprintln!("{}", self.usage());
        std::process::exit(2);
    }
}

/// The parsed values of a [`FlagSet`].  Getters panic on a flag name that
/// was never declared — that is a programmer error, not a user error.
#[derive(Debug, Clone)]
pub struct FlagValues {
    switches: BTreeMap<String, bool>,
    numbers: BTreeMap<String, usize>,
    floats: BTreeMap<String, f64>,
    texts: BTreeMap<String, String>,
    provided: BTreeSet<String>,
}

impl FlagValues {
    /// Value of a boolean switch.
    pub fn switch(&self, name: &str) -> bool {
        *self.switches.get(name).unwrap_or_else(|| panic!("switch --{name} was not declared"))
    }

    /// Value of an unsigned-integer flag.
    pub fn number(&self, name: &str) -> usize {
        *self.numbers.get(name).unwrap_or_else(|| panic!("number --{name} was not declared"))
    }

    /// Value of a floating-point flag.
    pub fn float(&self, name: &str) -> f64 {
        *self.floats.get(name).unwrap_or_else(|| panic!("float --{name} was not declared"))
    }

    /// Value of a string flag.
    pub fn text(&self, name: &str) -> &str {
        self.texts.get(name).unwrap_or_else(|| panic!("text --{name} was not declared"))
    }

    /// Whether the user passed the flag explicitly (vs. the default).
    pub fn provided(&self, name: &str) -> bool {
        self.provided.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> FlagSet {
        FlagSet::new("demo", "a test flag set")
            .switch("fast", "small configs")
            .number("snapshots", 400, "trace length")
            .float("hysteresis", 0.05, "regret threshold")
            .text("predictor", "last", "forecaster")
    }

    fn parse(args: &[&str]) -> Result<FlagValues, String> {
        demo().parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_apply_when_flags_are_absent() {
        let v = parse(&[]).unwrap();
        assert!(!v.switch("fast"));
        assert_eq!(v.number("snapshots"), 400);
        assert_eq!(v.float("hysteresis"), 0.05);
        assert_eq!(v.text("predictor"), "last");
        assert!(!v.provided("snapshots"));
    }

    #[test]
    fn explicit_values_override_defaults() {
        let v =
            parse(&["--fast", "--snapshots", "90", "--hysteresis", "0.2", "--predictor", "ewma"])
                .unwrap();
        assert!(v.switch("fast"));
        assert_eq!(v.number("snapshots"), 90);
        assert_eq!(v.float("hysteresis"), 0.2);
        assert_eq!(v.text("predictor"), "ewma");
        assert!(v.provided("snapshots") && v.provided("fast"));
    }

    #[test]
    fn user_errors_are_messages_not_panics() {
        assert!(parse(&["--snapshots"]).unwrap_err().contains("requires an argument"));
        assert!(parse(&["--snapshots", "many"]).unwrap_err().contains("unsigned integer"));
        assert!(parse(&["--hysteresis", "x"]).unwrap_err().contains("requires a number"));
        assert!(parse(&["--wat"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["stray"]).unwrap_err().contains("flags start with --"));
    }

    #[test]
    fn usage_lists_every_flag_with_defaults() {
        let u = demo().usage();
        for needle in ["--fast", "--snapshots N (default 400)", "--predictor S (default last)"] {
            assert!(u.contains(needle), "usage missing {needle}:\n{u}");
        }
    }

    #[test]
    #[should_panic(expected = "was not declared")]
    fn undeclared_getter_is_a_programmer_error() {
        parse(&[]).unwrap().number("nope");
    }
}
