//! # figret-eval
//!
//! The evaluation harness: scenarios for every topology/traffic pair of the
//! paper, scheme runners, reporting helpers and one function per table/figure
//! of the evaluation section (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for recorded results).

#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod fleet;
pub mod profile;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod serving;

pub use args::{FlagSet, FlagValues};
pub use experiments::ExperimentOptions;
pub use fleet::{print_fleet_report, serve_fleet, FleetRun};
pub use profile::print_profile_report;
pub use runner::{omniscient_series, run_scheme, EvalOptions, Scheme, SchemeRun};
pub use scenario::{Scenario, ScenarioOptions};
pub use serving::{serve_replay, ServeEngine, ServeRun, ServeSimOptions};
