//! Evaluation scenarios: a topology, its candidate paths and a traffic trace.
//!
//! One [`Scenario`] corresponds to one column of the paper's evaluation (e.g.
//! "GEANT", "ToR DB", …): it bundles the graph built by `figret-topology`, the
//! Yen 3-shortest-path set (§5.1), the synthetic trace whose characteristics
//! match that network's traffic class, and the chronological train/test split.

use figret_te::PathSet;
use figret_topology::{Graph, RackeConfig, Scale, Topology, TopologySpec};
use figret_traffic::datacenter::{
    pod_trace, tor_trace, ClusterFlavor, PodTrafficConfig, TorTrafficConfig,
};
use figret_traffic::gravity::{gravity_trace, GravityConfig};
use figret_traffic::pfabric::{pfabric_trace, PFabricConfig};
use figret_traffic::wan::{wan_trace, WanTrafficConfig};
use figret_traffic::{TrafficTrace, TrainTestSplit};

/// Options controlling how scenarios are instantiated.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOptions {
    /// Build topologies at the paper's full Table 1 sizes instead of the
    /// reduced defaults.
    pub full_scale: bool,
    /// Number of traffic snapshots to generate.
    pub num_snapshots: usize,
    /// Fraction of the trace used for training.
    pub train_fraction: f64,
    /// Seed forwarded to the generators.
    pub seed: u64,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions { full_scale: false, num_snapshots: 400, train_fraction: 0.75, seed: 7 }
    }
}

/// A fully instantiated evaluation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which of the paper's networks this is.
    pub topology: Topology,
    /// Display name (Table 1 naming).
    pub name: String,
    /// The network graph.
    pub graph: Graph,
    /// Candidate paths (Yen 3-shortest by default).
    pub paths: PathSet,
    /// The traffic trace.
    pub trace: TrafficTrace,
    /// Chronological train/test split.
    pub split: TrainTestSplit,
}

impl Scenario {
    /// Builds the scenario for one of the paper's eight networks.
    pub fn build(topology: Topology, options: &ScenarioOptions) -> Scenario {
        let scale = if options.full_scale { Scale::Full } else { Scale::Reduced };
        let graph = TopologySpec { topology, scale, seed: options.seed }.build();
        let trace = build_trace(topology, &graph, options);
        let paths = PathSet::k_shortest(&graph, 3);
        let split = TrainTestSplit::chronological(trace.len(), options.train_fraction);
        Scenario { topology, name: topology.name().to_string(), graph, paths, trace, split }
    }

    /// Rebuilds this scenario with SMORE's Räcke-style path selection instead
    /// of the 3 shortest paths (Figure 6).
    pub fn with_racke_paths(&self) -> Scenario {
        let mut s = self.clone();
        s.paths = PathSet::racke(&self.graph, &RackeConfig::default());
        s.name = format!("{} (Racke paths)", self.name);
        s
    }

    /// The test-range snapshot indices that have a full history window of
    /// length `window` available.
    pub fn test_indices(&self, window: usize) -> Vec<usize> {
        self.split.test.clone().filter(|t| *t >= window).collect()
    }

    /// The scenarios of Figure 5 / Figure 4 (the paper's eight networks).
    pub fn quality_suite(options: &ScenarioOptions) -> Vec<Scenario> {
        Topology::all().iter().map(|t| Scenario::build(*t, options)).collect()
    }

    /// The three motivation scenarios of Figures 1 and 2 (GEANT, PoD DB, ToR DB).
    pub fn motivation_suite(options: &ScenarioOptions) -> Vec<Scenario> {
        [Topology::Geant, Topology::MetaDbPod, Topology::MetaDbTor]
            .iter()
            .map(|t| Scenario::build(*t, options))
            .collect()
    }
}

fn build_trace(topology: Topology, graph: &Graph, options: &ScenarioOptions) -> TrafficTrace {
    let n = options.num_snapshots;
    match topology {
        Topology::Geant => wan_trace(
            graph,
            &WanTrafficConfig { num_snapshots: n, seed: options.seed ^ 1, ..Default::default() },
        ),
        Topology::UsCarrier | Topology::Cogentco => gravity_trace(
            graph,
            &GravityConfig { num_snapshots: n, seed: options.seed ^ 2, ..Default::default() },
        ),
        Topology::PFabric => pfabric_trace(&PFabricConfig {
            num_tors: graph.num_nodes(),
            num_snapshots: n,
            seed: options.seed ^ 3,
            ..Default::default()
        }),
        Topology::MetaDbPod => pod_trace(
            graph,
            &PodTrafficConfig {
                num_snapshots: n,
                flavor: ClusterFlavor::Db,
                seed: options.seed ^ 4,
                ..Default::default()
            },
        ),
        Topology::MetaWebPod => pod_trace(
            graph,
            &PodTrafficConfig {
                num_snapshots: n,
                flavor: ClusterFlavor::Web,
                seed: options.seed ^ 5,
                ..Default::default()
            },
        ),
        Topology::MetaDbTor => tor_trace(
            graph,
            &TorTrafficConfig {
                num_snapshots: n,
                flavor: ClusterFlavor::Db,
                seed: options.seed ^ 6,
                ..Default::default()
            },
        ),
        Topology::MetaWebTor => tor_trace(
            graph,
            &TorTrafficConfig {
                num_snapshots: n,
                flavor: ClusterFlavor::Web,
                seed: options.seed ^ 7,
                ..Default::default()
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_topology_reduced() {
        let options = ScenarioOptions { num_snapshots: 30, ..Default::default() };
        for s in Scenario::quality_suite(&options) {
            assert_eq!(s.trace.len(), 30);
            assert_eq!(s.trace.num_nodes(), s.graph.num_nodes());
            assert!(s.paths.num_paths() > 0);
            assert_eq!(s.split.test.end, 30);
            assert!(!s.name.is_empty());
        }
    }

    #[test]
    fn racke_variant_changes_the_path_set() {
        let options = ScenarioOptions { num_snapshots: 10, ..Default::default() };
        let s = Scenario::build(Topology::Geant, &options);
        let r = s.with_racke_paths();
        assert_ne!(s.paths.num_paths(), 0);
        assert!(r.name.contains("Racke"));
        // Same pairs, possibly different paths.
        assert_eq!(s.paths.num_pairs(), r.paths.num_pairs());
    }

    #[test]
    fn test_indices_respect_window() {
        let options = ScenarioOptions { num_snapshots: 40, ..Default::default() };
        let s = Scenario::build(Topology::MetaDbPod, &options);
        let idx = s.test_indices(12);
        assert!(idx.iter().all(|t| *t >= 30 && *t < 40));
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn motivation_suite_has_three_networks() {
        let options = ScenarioOptions { num_snapshots: 12, ..Default::default() };
        let suite = Scenario::motivation_suite(&options);
        assert_eq!(suite.len(), 3);
        assert_eq!(suite[0].topology, Topology::Geant);
    }
}
