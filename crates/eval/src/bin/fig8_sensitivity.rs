//! Regenerates the "fig8_sensitivity" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{fig8_sensitivity, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    fig8_sensitivity(&options);
}
