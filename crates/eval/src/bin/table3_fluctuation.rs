//! Regenerates the "table3_fluctuation" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{table3_fluctuation, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    table3_fluctuation(&options);
}
