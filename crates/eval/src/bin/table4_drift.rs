//! Regenerates the "table4_drift" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{table4_drift, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    table4_drift(&options);
}
