//! serve_sim — the online TE controller replay harness (DESIGN.md §6).
//!
//! Replays a scenario's test split (or an unbounded online stream) through
//! the `figret_serve` controller and reports MLU regret vs. the omniscient
//! series, update count against the budget, routing churn and per-decision
//! latency percentiles.  Common flags (`--fast`, `--snapshots N`,
//! `--window N`, `--max-eval N`, `--full-scale`) are shared with every
//! experiment binary; serving-specific flags are listed in `--help`-style
//! usage output on any flag error.

use figret_eval::experiments::ExperimentOptions;
use figret_eval::serving::{parse_topology, serve_sim, DemandMode, ServeEngine, ServeSimOptions};
use figret_serve::{FallbackPolicy, PredictorKind, ReconfigPolicy, UpdateBudget};

fn main() {
    let flags = ExperimentOptions::flag_set("serve_sim", "online TE controller replay harness")
        .text("topology", "geant", "topology to serve (geant, pod-db, ..., torN, podfabN)")
        .text("demand", "dense", "demand ingestion storage: dense | sparse")
        .text("engine", "learned", "candidate engine: lp | learned")
        .text("predictor", "last", "online predictor: last | ewma[:a] | mean[:w] | max[:w]")
        .float("hysteresis", 0.05, "predicted-regret threshold before reconfiguring")
        .number("budget", 0, "max updates per budget window (0 = unlimited)")
        .number("budget-window", 16, "update-budget window length in ticks")
        .switch("always-update", "reconfigure every tick (batch-equivalence mode)")
        .number("online-ticks", 0, "serve N generated ticks instead of replaying the trace")
        .text("inference", "graph", "learned-engine inference path: graph | plan")
        .number("shards", 0, "serve through a sharded fleet with N shards (0 = unsharded)")
        .number("retrain-every", 0, "retrain a challenger every N ticks while degraded (0 = off)")
        .number("retrain-window", 32, "observed demand columns kept for challenger retraining")
        .number("promotion-patience", 3, "consecutive shadow-audit wins before promotion")
        .number("shift-tick", 0, "online mode: inject a step shift N decision ticks in (0 = none)")
        .float("shift-factor", 4.0, "step-shift magnitude (even slots ×f, odd slots ×1/f)")
        .text("metrics-out", "", "write metrics to PATH.jsonl (stream) and PATH.prom (exposition)")
        .number("metrics-every", 10, "metrics snapshot cadence in decision ticks");
    let values = flags.parse_or_exit(std::env::args().skip(1));
    let experiment = ExperimentOptions::from_flag_values(&values);

    let fail = |message: String| -> ! {
        eprintln!("error: {message}");
        std::process::exit(2);
    };
    let topology = parse_topology(values.text("topology")).unwrap_or_else(|e| fail(e));
    let demand = match values.text("demand") {
        "dense" => DemandMode::Dense,
        "sparse" => DemandMode::Sparse,
        other => fail(format!("unknown demand mode '{other}' (expected dense | sparse)")),
    };
    let predictor = PredictorKind::parse(values.text("predictor"), experiment.window)
        .unwrap_or_else(|e| fail(e));
    let engine = match values.text("engine") {
        "lp" => ServeEngine::Lp,
        "learned" => ServeEngine::Learned,
        other => fail(format!("unknown engine '{other}' (expected lp | learned)")),
    };
    let use_plan = match values.text("inference") {
        "graph" => false,
        "plan" if engine == ServeEngine::Learned => true,
        "plan" => fail("--inference plan requires --engine learned".to_string()),
        other => fail(format!("unknown inference path '{other}' (expected graph | plan)")),
    };
    let policy = if values.switch("always-update") {
        ReconfigPolicy::always_update()
    } else {
        ReconfigPolicy {
            hysteresis: values.float("hysteresis"),
            budget: match values.number("budget") {
                0 => None,
                k => Some(UpdateBudget::per_window(k, values.number("budget-window"))),
            },
            fallback: FallbackPolicy::default(),
        }
    };

    let metrics_every = values.number("metrics-every");
    if metrics_every == 0 {
        flags.usage_error("--metrics-every must be at least 1 tick");
    }
    let metrics_out = match values.text("metrics-out") {
        "" => None,
        base => {
            let base = std::path::PathBuf::from(base);
            // Probe both output files now so a bad path is a usage error,
            // not a mid-run panic.  create+append never truncates a file an
            // earlier run left behind; the sink truncates when it opens.
            for ext in ["jsonl", "prom"] {
                let probe = std::path::PathBuf::from(format!("{}.{ext}", base.display()));
                if let Err(e) = std::fs::OpenOptions::new().create(true).append(true).open(&probe) {
                    flags.usage_error(&format!(
                        "--metrics-out: cannot write '{}': {e}",
                        probe.display()
                    ));
                }
            }
            Some(base)
        }
    };

    let retrain_every = values.number("retrain-every");
    let shift_tick = values.number("shift-tick");
    let online_ticks = values.number("online-ticks");
    let shards = values.number("shards");
    if retrain_every > 0 && engine != ServeEngine::Learned {
        fail("--retrain-every requires --engine learned (recovery retrains a model)".to_string());
    }
    if retrain_every > 0 && shards > 0 {
        fail("--retrain-every is not supported on the --shards harness (LP shards)".to_string());
    }
    if shift_tick > 0 && online_ticks == 0 {
        fail("--shift-tick shifts the generated stream; it requires --online-ticks".to_string());
    }

    let options = ServeSimOptions {
        topology,
        demand,
        engine,
        predictor,
        policy,
        online_ticks,
        max_ticks: Some(experiment.max_eval),
        use_plan,
        shards,
        retrain_every,
        retrain_window: values.number("retrain-window"),
        promotion_patience: values.number("promotion-patience"),
        shift_tick,
        shift_factor: values.float("shift-factor"),
        metrics_out,
        metrics_every,
        experiment,
    };
    serve_sim(&options);
}
