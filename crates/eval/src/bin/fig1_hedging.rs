//! Regenerates the "fig1_hedging" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{fig1_hedging, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    fig1_hedging(&options);
}
