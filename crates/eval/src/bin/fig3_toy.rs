//! Regenerates Figure 3 of the paper (the three-node illustrative example).
fn main() {
    figret_eval::experiments::fig3_toy();
}
