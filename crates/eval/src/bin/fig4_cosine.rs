//! Regenerates the "fig4_cosine" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{fig4_cosine, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    fig4_cosine(&options);
}
