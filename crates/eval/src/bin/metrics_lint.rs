//! metrics_lint — validates Prometheus-style exposition files
//! (DESIGN.md §10).
//!
//! CI runs this over the `.prom` snapshots `serve_sim --metrics-out`
//! writes: metric-name and label syntax, parseable sample values, and a
//! `# TYPE` declaration preceding every family.  Exits 0 when every file
//! lints clean (printing its sample count), 1 on the first malformed file,
//! 2 on usage errors.

use figret_telemetry::lint_exposition;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("usage: metrics_lint FILE.prom [FILE.prom ...]");
        std::process::exit(2);
    }
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read '{path}': {e}");
            std::process::exit(2);
        });
        match lint_exposition(&text) {
            Ok(samples) => println!("{path}: ok ({samples} samples)"),
            Err(message) => {
                eprintln!("{path}: {message}");
                std::process::exit(1);
            }
        }
    }
}
