//! Regenerates the "table2_time" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{table2_time, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    table2_time(&options);
}
