//! Regenerates the "table5_worstcase" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{table5_worstcase, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    table5_worstcase(&options);
}
