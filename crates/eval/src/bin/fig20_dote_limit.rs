//! Regenerates the "fig20_dote_limit" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{fig20_dote_limit, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    fig20_dote_limit(&options);
}
