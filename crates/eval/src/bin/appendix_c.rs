//! Regenerates the "appendix_c" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{appendix_c, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    appendix_c(&options);
}
