//! Regenerates the "fig5_quality" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{fig5_quality, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    fig5_quality(&options);
}
