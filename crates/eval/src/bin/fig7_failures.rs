//! Regenerates the "fig7_failures" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{fig7_failures, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    fig7_failures(&options);
}
