//! Regenerates the "fig6_smore" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{fig6_smore, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    fig6_smore(&options);
}
