//! Regenerates the "fig2_variance" table/figure of the paper.  Common flags:
//! `--fast`, `--full-scale`, `--snapshots N`, `--window N`, `--max-eval N`.
use figret_eval::experiments::{fig2_variance, ExperimentOptions};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    fig2_variance(&options);
}
