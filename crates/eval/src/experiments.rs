//! One function per table / figure of the paper's evaluation.
//!
//! Every function prints the same rows or series the paper reports (CSV for
//! time series / scatter data, aligned tables for summary statistics).  The
//! corresponding binaries in `src/bin/` are thin wrappers that parse a few
//! command-line flags and call these functions; EXPERIMENTS.md records the
//! measured outputs next to the paper's numbers.

use figret::FigretConfig;
use figret_solvers::{DesensitizationSettings, HeuristicBound, Predictor, SolverEngine};
use figret_te::{max_sensitivity_per_pair, mean, normalize_by, relative_change, SchemeQuality};
use figret_topology::{random_link_failures, Topology};
use figret_traffic::{
    cosine_similarity_analysis, gaussian_fluctuation, per_pair_variance_range, percentile,
    spearman_rank_correlation, worst_case_fluctuation, TrainTestSplit,
};
use rayon::prelude::*;

use crate::args::{FlagSet, FlagValues};
use crate::report::{
    ascii_box, lp_work_columns, lp_work_header, print_csv_series, print_quality_panel, print_table,
};
use crate::runner::{
    omniscient_series, omniscient_series_with_stats, run_scheme, EvalOptions, Scheme,
};
use crate::scenario::{Scenario, ScenarioOptions};

/// Options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Use the paper's full Table 1 topology sizes (default: reduced).
    pub full_scale: bool,
    /// Use small learning configurations and few snapshots (for CI / smoke runs).
    pub fast: bool,
    /// Number of trace snapshots.
    pub snapshots: usize,
    /// History window `H`.
    pub window: usize,
    /// Evaluate at most this many test snapshots per scheme.
    pub max_eval: usize,
    /// Evaluate all failure topologies in the failure experiment (Figures 14/15).
    pub all_topologies: bool,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            full_scale: false,
            fast: false,
            snapshots: 400,
            window: 12,
            max_eval: 60,
            all_topologies: false,
        }
    }
}

impl ExperimentOptions {
    /// The [`FlagSet`] declaring the common flags every experiment binary
    /// accepts.  Binaries with extra flags (e.g. `serve_sim`) extend this
    /// set before parsing, so the whole suite shares one implementation.
    pub fn flag_set(program: &str, about: &str) -> FlagSet {
        let d = ExperimentOptions::default();
        FlagSet::new(program, about)
            .switch("full-scale", "use the paper's full Table 1 topology sizes")
            .switch("fast", "small learning configs and short traces (CI / smoke runs)")
            .number("snapshots", d.snapshots, "number of trace snapshots")
            .number("window", d.window, "history window H")
            .number("max-eval", d.max_eval, "evaluate at most this many test snapshots")
            .switch("all-topologies", "evaluate every failure topology (Figures 14/15)")
    }

    /// Extracts the common options from parsed [`FlagValues`] (shared with
    /// binaries that extend the flag set).  `--fast` lowers the *default*
    /// trace length and evaluation budget; explicit `--snapshots` /
    /// `--max-eval` always win.
    pub fn from_flag_values(values: &FlagValues) -> ExperimentOptions {
        let fast = values.switch("fast");
        let mut snapshots = values.number("snapshots");
        if fast && !values.provided("snapshots") {
            snapshots = snapshots.min(160);
        }
        let mut max_eval = values.number("max-eval");
        if fast && !values.provided("max-eval") {
            max_eval = max_eval.min(20);
        }
        ExperimentOptions {
            full_scale: values.switch("full-scale"),
            fast,
            snapshots,
            window: values.number("window"),
            max_eval,
            all_topologies: values.switch("all-topologies"),
        }
    }

    /// Parses the common command-line flags (`--full-scale`, `--fast`,
    /// `--snapshots N`, `--window N`, `--max-eval N`, `--all-topologies`).
    /// On a user error (unknown flag, malformed number) prints the error and
    /// a usage message and exits with status 2.
    pub fn from_args<I: Iterator<Item = String>>(args: I) -> ExperimentOptions {
        let flags = ExperimentOptions::flag_set("experiment", "regenerate a paper table/figure");
        ExperimentOptions::from_flag_values(&flags.parse_or_exit(args))
    }

    /// Fallible counterpart of [`ExperimentOptions::from_args`] for tests
    /// and embedding.
    pub fn try_from_args<I: Iterator<Item = String>>(args: I) -> Result<ExperimentOptions, String> {
        let flags = ExperimentOptions::flag_set("experiment", "regenerate a paper table/figure");
        Ok(ExperimentOptions::from_flag_values(&flags.parse(args)?))
    }

    /// Scenario construction options implied by the flags.
    pub fn scenario_options(&self) -> ScenarioOptions {
        ScenarioOptions {
            full_scale: self.full_scale,
            num_snapshots: self.snapshots,
            ..Default::default()
        }
    }

    /// Evaluation options implied by the flags.
    pub fn eval_options(&self) -> EvalOptions {
        EvalOptions {
            window: self.window,
            max_eval_snapshots: Some(self.max_eval),
            engine: SolverEngine::Auto,
            failure: None,
        }
    }

    /// The FIGRET learning configuration implied by the flags (small
    /// networks/epochs under `--fast`).
    pub fn learning_config(&self) -> FigretConfig {
        if self.fast {
            FigretConfig { history_window: self.window, ..FigretConfig::fast_test() }
        } else {
            FigretConfig { history_window: self.window, ..FigretConfig::default() }
        }
    }
}

/// Figure 1: MLU over time with and without Google's hedging mechanism on
/// GEANT, PoD-level and ToR-level traffic.
pub fn fig1_hedging(options: &ExperimentOptions) {
    let eval = options.eval_options();
    for scenario in Scenario::motivation_suite(&options.scenario_options()) {
        let no_hedging = run_scheme(&scenario, &Scheme::Prediction(Predictor::LastSnapshot), &eval);
        let hedging = run_scheme(
            &scenario,
            &Scheme::Desensitization(DesensitizationSettings::default()),
            &eval,
        );
        let max =
            no_hedging.mlus.iter().chain(&hedging.mlus).cloned().fold(0.0f64, f64::max).max(1e-12);
        println!("\n# Figure 1 — {} (MLU normalized to the maximum observed)", scenario.name);
        let norm = |v: &[f64]| v.iter().map(|m| m / max).collect::<Vec<_>>();
        print_csv_series("no_hedging", &norm(&no_hedging.mlus));
        print_csv_series("hedging", &norm(&hedging.mlus));
        let trough = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "summary: no-hedging peak=1.000 trough={:.3}; hedging peak={:.3} trough={:.3}",
            trough(&norm(&no_hedging.mlus)),
            norm(&hedging.mlus).iter().cloned().fold(0.0, f64::max),
            trough(&norm(&hedging.mlus)),
        );
    }
}

/// Figure 2: normalized per-SD-pair demand variance for the three motivation
/// networks (printed as CSV matrices).
pub fn fig2_variance(options: &ExperimentOptions) {
    for scenario in Scenario::motivation_suite(&options.scenario_options()) {
        let var = per_pair_variance_range(&scenario.trace, 0..scenario.trace.len());
        let max = var.iter().cloned().fold(0.0, f64::max).max(1e-12);
        let n = scenario.graph.num_nodes();
        println!("\n# Figure 2 — {} normalized per-pair variance ({} x {})", scenario.name, n, n);
        let mut it = var.iter();
        for s in 0..n {
            let mut row = Vec::with_capacity(n);
            for d in 0..n {
                if s == d {
                    row.push(0.0);
                } else {
                    row.push(*it.next().expect("variance vector length matches") / max);
                }
            }
            print_csv_series(&format!("src{s}"), &row);
        }
    }
}

/// Figure 3: the three-node illustrative example with TE schemes 1/2/3.
pub fn fig3_toy() {
    use figret_te::{max_link_utilization, PathSet, TeConfig};
    use figret_topology::{Graph, NodeId};
    use figret_traffic::DemandMatrix;

    let mut g = Graph::named("figure3", 3);
    g.add_bidirectional(NodeId(0), NodeId(1), 2.0).unwrap();
    g.add_bidirectional(NodeId(0), NodeId(2), 2.0).unwrap();
    g.add_bidirectional(NodeId(1), NodeId(2), 2.0).unwrap();
    let ps = PathSet::k_shortest(&g, 2);
    let demand = |ab: f64, ac: f64, bc: f64| {
        let mut d = DemandMatrix::zeros(3);
        d.set(0, 1, ab);
        d.set(0, 2, ac);
        d.set(1, 2, bc);
        d
    };
    let scheme1 = TeConfig::shortest_path(&ps);
    let scheme2 = TeConfig::uniform(&ps);
    let mut raw = vec![0.0; ps.num_paths()];
    for pair in 0..ps.num_pairs() {
        let (s, d) = ps.pairs()[pair];
        for pi in ps.paths_of_pair(pair) {
            let direct = ps.path(pi).len() == 1;
            raw[pi] = if s == NodeId(1) && d == NodeId(2) {
                if direct {
                    0.625
                } else {
                    0.375
                }
            } else if direct {
                1.0
            } else {
                0.0
            };
        }
    }
    let scheme3 = TeConfig::from_raw(&ps, &raw);
    let situations = [
        ("normal", demand(1.0, 1.0, 1.0)),
        ("burst 1 (A->B = 4)", demand(4.0, 1.0, 1.0)),
        ("burst 2 (A->C = 4)", demand(1.0, 4.0, 1.0)),
        ("burst 3 (B->C = 4)", demand(1.0, 1.0, 4.0)),
    ];
    let mut rows = Vec::new();
    for (name, d) in &situations {
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", max_link_utilization(&ps, &scheme1, d)),
            format!("{:.4}", max_link_utilization(&ps, &scheme2, d)),
            format!("{:.4}", max_link_utilization(&ps, &scheme3, d)),
        ]);
    }
    print_table(
        "Figure 3 — illustrative example",
        &["situation", "scheme 1", "scheme 2", "scheme 3"],
        &rows,
    );
}

/// Figure 4 (and Figure 18 with `window = 64`): cosine-similarity candlesticks
/// of every topology's traffic.
pub fn fig4_cosine(options: &ExperimentOptions) {
    let scenarios = Scenario::quality_suite(&options.scenario_options());
    let mut rows = Vec::new();
    println!("\n# Figure 4 — cosine similarity vs. the previous {} TMs", options.window);
    for s in &scenarios {
        let summary = cosine_similarity_analysis(&s.trace, options.window);
        rows.push(vec![
            s.name.clone(),
            format!("{:.3}", summary.p25),
            format!("{:.3}", summary.median),
            format!("{:.3}", summary.p75),
            format!("{:.3}", summary.min),
            format!("{:.3}", summary.max),
            ascii_box(&summary, 0.0, 1.0, 40),
        ]);
    }
    print_table(
        "Figure 4 — cosine similarity distribution",
        &["topology", "p25", "median", "p75", "min", "max", "0 .. 1"],
        &rows,
    );
}

fn quality_schemes(options: &ExperimentOptions, include_worst_case: bool) -> Vec<Scheme> {
    let mut schemes = Scheme::default_suite(options.fast);
    // The learning configs in the default suite must use the requested window.
    for s in &mut schemes {
        if let Scheme::Figret(c) | Scheme::Dote(c) | Scheme::TealLike(c) = s {
            c.history_window = options.window;
        }
    }
    if include_worst_case {
        schemes.push(Scheme::Oblivious);
        schemes.push(Scheme::Cope);
    }
    schemes
}

fn run_quality_panel(
    scenario: &Scenario,
    schemes: &[Scheme],
    eval: &EvalOptions,
) -> Vec<SchemeQuality> {
    let baseline = omniscient_series(scenario, eval);
    // The scheme suite is independent per scheme: evaluate it in parallel and
    // keep the reported rows in suite order.
    schemes.par_iter().map(|scheme| run_scheme(scenario, scheme, eval).quality(&baseline)).collect()
}

/// Figure 5: normalized-MLU distributions of every scheme on every topology.
/// Oblivious and COPE are only evaluated on the small topologies (GEANT,
/// pFabric, PoD level), as in the paper.
pub fn fig5_quality(options: &ExperimentOptions) {
    let eval = options.eval_options();
    for scenario in Scenario::quality_suite(&options.scenario_options()) {
        let small = matches!(
            scenario.topology,
            Topology::Geant | Topology::PFabric | Topology::MetaDbPod | Topology::MetaWebPod
        );
        let schemes = quality_schemes(options, small);
        let qualities = run_quality_panel(&scenario, &schemes, &eval);
        print_quality_panel(
            &format!("Figure 5 — {} (MLU normalized by the omniscient optimum)", scenario.name),
            &qualities,
        );
    }
}

/// Figure 6: the GEANT and pFabric panels of Figure 5 re-run with SMORE's
/// Räcke-style path selection ("Pred TE" then coincides with SMORE).
pub fn fig6_smore(options: &ExperimentOptions) {
    let eval = options.eval_options();
    for topology in [Topology::Geant, Topology::PFabric] {
        let scenario = Scenario::build(topology, &options.scenario_options()).with_racke_paths();
        let schemes = quality_schemes(options, true);
        let qualities = run_quality_panel(&scenario, &schemes, &eval);
        print_quality_panel(&format!("Figure 6 — {}", scenario.name), &qualities);
    }
}

/// Figures 7 / 14 / 15: random link failures.  Normalization is against an
/// oracle that knows both the demands and the failures.
pub fn fig7_failures(options: &ExperimentOptions) {
    let topologies: Vec<Topology> = if options.all_topologies {
        vec![Topology::Geant, Topology::PFabric, Topology::MetaDbTor]
    } else {
        vec![Topology::Geant]
    };
    for topology in topologies {
        let scenario = Scenario::build(topology, &options.scenario_options());
        println!("\n# Figure 7 — link failures on {}", scenario.name);
        let mut rows = Vec::new();
        for failures in 1..=3usize {
            let scenario_failure = match random_link_failures(&scenario.graph, failures, 97) {
                Some(f) => f,
                None => {
                    println!("  (cannot fail {failures} links while staying connected; skipping)");
                    continue;
                }
            };
            let eval = EvalOptions { failure: Some(scenario_failure), ..options.eval_options() };
            let baseline = omniscient_series(&scenario, &eval);
            let schemes = vec![
                Scheme::Figret(options.learning_config()),
                Scheme::Dote(FigretConfig { robustness_weight: 0.0, ..options.learning_config() }),
                Scheme::Desensitization(DesensitizationSettings::default()),
                Scheme::FaultAwareDesensitization(DesensitizationSettings::default()),
            ];
            for scheme in schemes {
                let run = run_scheme(&scenario, &scheme, &eval);
                let q = run.quality(&baseline);
                rows.push(vec![
                    format!("{failures}"),
                    q.scheme.clone(),
                    format!("{:.3}", q.normalized_mlu.mean),
                    format!("{:.3}", q.normalized_mlu.p99),
                    format!("{:.3}", q.normalized_mlu.max),
                ]);
            }
        }
        print_table(
            &format!("Figure 7 — {} (normalized vs. failure-aware oracle)", scenario.name),
            &["#failures", "scheme", "mean", "p99", "max"],
            &rows,
        );
    }
}

/// Figure 8: per-pair traffic variance vs. the path sensitivity each scheme
/// assigns (Des TE vs FIGRET), printed as CSV scatter data plus a summary.
pub fn fig8_sensitivity(options: &ExperimentOptions) {
    let eval = options.eval_options();
    for topology in [Topology::MetaDbPod, Topology::MetaDbTor] {
        let scenario = Scenario::build(topology, &options.scenario_options());
        let variances = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
        let max_var = variances.iter().cloned().fold(0.0, f64::max).max(1e-12);
        println!("\n# Figure 8 — {} (variance vs. mean max path sensitivity)", scenario.name);
        for (label, scheme) in [
            ("des_te", Scheme::Desensitization(DesensitizationSettings::default())),
            ("figret", Scheme::Figret(options.learning_config())),
        ] {
            // Average the per-pair max sensitivity over the evaluated snapshots.
            let indices = eval.eval_indices(&scenario);
            let mut mean_sens = vec![0.0f64; scenario.paths.num_pairs()];
            // Re-run the scheme but capture configurations by re-deriving them:
            // we reuse run_scheme for the timing-free statistics by recomputing
            // the config per snapshot here.
            let mut count = 0usize;
            match &scheme {
                Scheme::Desensitization(settings) => {
                    for &t in &indices {
                        let history: Vec<_> = (t - eval.window..t)
                            .map(|h| scenario.trace.matrix(h).clone())
                            .collect();
                        let cfg = figret_solvers::desensitization_config(
                            &scenario.paths,
                            &history,
                            settings,
                            eval.engine,
                        )
                        .expect("Des TE must be solvable");
                        for (i, s) in
                            max_sensitivity_per_pair(&scenario.paths, &cfg).iter().enumerate()
                        {
                            mean_sens[i] += s;
                        }
                        count += 1;
                    }
                }
                _ => {
                    let cfg_scheme = options.learning_config();
                    let dataset = figret_traffic::WindowDataset::from_trace(
                        &scenario.trace,
                        eval.window,
                        scenario.split.train.clone(),
                    );
                    let mut model =
                        figret::FigretModel::new(&scenario.paths, &variances, cfg_scheme);
                    model.train(&dataset);
                    for &t in &indices {
                        let history: Vec<_> = (t - eval.window..t)
                            .map(|h| scenario.trace.matrix(h).clone())
                            .collect();
                        let cfg = model.predict(&scenario.paths, &history);
                        for (i, s) in
                            max_sensitivity_per_pair(&scenario.paths, &cfg).iter().enumerate()
                        {
                            mean_sens[i] += s;
                        }
                        count += 1;
                    }
                }
            }
            let min_cap =
                scenario.paths.edge_capacities().iter().cloned().fold(f64::INFINITY, f64::min);
            let scatter: Vec<f64> = variances
                .iter()
                .zip(&mean_sens)
                .flat_map(|(v, s)| [v / max_var, s / count.max(1) as f64 * min_cap])
                .collect();
            print_csv_series(&format!("{label}_scatter_varnorm_sens"), &scatter);
            // Correlation summary: FIGRET should assign lower sensitivity to
            // high-variance pairs than to low-variance pairs.
            let normalized_sens: Vec<f64> =
                mean_sens.iter().map(|s| s / count.max(1) as f64 * min_cap).collect();
            let rho = spearman_rank_correlation(&variances, &normalized_sens);
            println!("{label}: spearman(variance, sensitivity) = {rho:.3}");
        }
    }
}

/// Table 2: per-snapshot calculation time and precomputation time.
pub fn table2_time(options: &ExperimentOptions) {
    let eval = options.eval_options();
    let topologies = vec![Topology::Geant, Topology::MetaDbTor, Topology::MetaWebTor];
    let mut rows = Vec::new();
    let mut work_rows = Vec::new();
    for topology in topologies {
        let scenario = Scenario::build(topology, &options.scenario_options());
        let figret_run = run_scheme(&scenario, &Scheme::Figret(options.learning_config()), &eval);
        let pred_run = run_scheme(&scenario, &Scheme::Prediction(Predictor::LastSnapshot), &eval);
        let des_run = run_scheme(
            &scenario,
            &Scheme::Desensitization(DesensitizationSettings::default()),
            &eval,
        );
        let (_, omni_stats) = omniscient_series_with_stats(&scenario, &eval);
        let mut omni_row = vec![scenario.name.clone(), "Omniscient".to_string()];
        omni_row.extend(lp_work_columns(&omni_stats));
        work_rows.push(omni_row);
        for run in [&pred_run, &des_run] {
            let mut row = vec![scenario.name.clone(), run.scheme.clone()];
            row.extend(lp_work_columns(&run.lp_stats));
            work_rows.push(row);
        }
        let oblivious_feasible = scenario.paths.num_pairs() <= 600;
        rows.push(vec![
            format!(
                "{} (n={}, e={})",
                scenario.name,
                scenario.graph.num_nodes(),
                scenario.graph.num_edges()
            ),
            format!("{:.4}s", figret_run.mean_solve_seconds),
            format!("{:.4}s", pred_run.mean_solve_seconds),
            format!("{:.4}s", des_run.mean_solve_seconds),
            if oblivious_feasible { "feasible".into() } else { "infeasible".into() },
            format!("{:.1}s", figret_run.precompute_seconds),
            format!(
                "{:.0}x",
                (des_run.mean_solve_seconds / figret_run.mean_solve_seconds.max(1e-9)).max(1.0)
            ),
        ]);
    }
    print_table(
        "Table 2 — calculation and precomputation time",
        &[
            "network",
            "FIGRET",
            "LP (pred)",
            "Des TE",
            "Oblivious&COPE",
            "FIGRET precomp",
            "Des/FIGRET speedup",
        ],
        &rows,
    );
    let mut work_header = vec!["network", "scheme"];
    work_header.extend(lp_work_header());
    print_table(
        "Table 2 — LP solver work (warm-started template series)",
        &work_header,
        &work_rows,
    );
}

fn decline_table(
    title: &str,
    options: &ExperimentOptions,
    perturb: impl Fn(&Scenario, f64) -> figret_traffic::TrafficTrace,
) {
    let eval = options.eval_options();
    let alphas = [0.2, 0.5, 1.0, 2.0];
    let mut rows = Vec::new();
    for topology in [Topology::MetaDbPod, Topology::PFabric, Topology::MetaDbTor] {
        let scenario = Scenario::build(topology, &options.scenario_options());
        let baseline_run = run_scheme(&scenario, &Scheme::Figret(options.learning_config()), &eval);
        let baseline_omni = omniscient_series(&scenario, &eval);
        let base_norm = normalize_by(&baseline_run.mlus, &baseline_omni);
        let base_mean = mean(&base_norm);
        let mut sorted = base_norm.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let base_p90 = percentile(&sorted, 0.9);
        let mut avg_row = vec![scenario.name.clone(), "average".to_string()];
        let mut p90_row = vec![String::new(), "90th Pct.".to_string()];
        for &alpha in &alphas {
            let perturbed_trace = perturb(&scenario, alpha);
            let perturbed = Scenario { trace: perturbed_trace, ..scenario.clone() };
            let run = run_scheme(&perturbed, &Scheme::Figret(options.learning_config()), &eval);
            let omni = omniscient_series(&perturbed, &eval);
            let norm = normalize_by(&run.mlus, &omni);
            let mut s = norm.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            avg_row.push(format!("{:+.1}%", 100.0 * relative_change(mean(&norm), base_mean)));
            p90_row
                .push(format!("{:+.1}%", 100.0 * relative_change(percentile(&s, 0.9), base_p90)));
        }
        rows.push(avg_row);
        rows.push(p90_row);
    }
    print_table(title, &["network", "metric", "α=0.2", "α=0.5", "α=1.0", "α=2.0"], &rows);
}

/// Table 3: FIGRET's performance decline under added Gaussian fluctuations.
pub fn table3_fluctuation(options: &ExperimentOptions) {
    decline_table(
        "Table 3 — performance decline with increased traffic fluctuation",
        options,
        |s, alpha| gaussian_fluctuation(&s.trace, s.split.test.clone(), alpha, 1234),
    );
}

/// Table 5: the adversarial variant (fluctuations follow the reversed variance
/// ranking), plus the train/test Spearman consistency check.
pub fn table5_worstcase(options: &ExperimentOptions) {
    decline_table(
        "Table 5 — performance decline under worst-case conditions",
        options,
        |s, alpha| worst_case_fluctuation(&s.trace, s.split.test.clone(), alpha, 1234),
    );
    // Spearman rank correlation between train and test variance rankings.
    let mut rows = Vec::new();
    for topology in [Topology::MetaDbPod, Topology::PFabric, Topology::MetaDbTor] {
        let scenario = Scenario::build(topology, &options.scenario_options());
        let train_var = per_pair_variance_range(&scenario.trace, scenario.split.train.clone());
        let test_var = per_pair_variance_range(&scenario.trace, scenario.split.test.clone());
        let rho = spearman_rank_correlation(&train_var, &test_var);
        rows.push(vec![scenario.name.clone(), format!("{rho:.2}")]);
    }
    print_table(
        "Table 5 — train/test variance-rank consistency",
        &["network", "Spearman ρ"],
        &rows,
    );
}

/// Table 4: natural drift — train on earlier segments, test on the final
/// 25%.  Next to the paper's quality-decline rows, a churn row shows how
/// much routing reconfiguration each drifted model asks for per snapshot
/// ([`SchemeRun::mean_churn`]) — drift robustness and routing stability
/// side by side.
pub fn table4_drift(options: &ExperimentOptions) {
    let eval = options.eval_options();
    let segments = [(0.0, 0.25), (0.25, 0.5), (0.5, 0.75)];
    let mut rows = Vec::new();
    for topology in [Topology::MetaDbPod, Topology::PFabric, Topology::MetaDbTor] {
        let scenario = Scenario::build(topology, &options.scenario_options());
        let omni = omniscient_series(&scenario, &eval);
        // Reference: trained on the full first 75%.
        let reference = run_scheme(&scenario, &Scheme::Figret(options.learning_config()), &eval);
        let ref_norm = normalize_by(&reference.mlus, &omni);
        let ref_mean = mean(&ref_norm);
        let mut sorted_ref = ref_norm.clone();
        sorted_ref.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ref_p90 = percentile(&sorted_ref, 0.9);
        let mut avg_row = vec![scenario.name.clone(), "average".to_string()];
        let mut p90_row = vec![String::new(), "90th Pct.".to_string()];
        let mut churn_row =
            vec![String::new(), format!("churn L1 (ref {:.3})", reference.mean_churn)];
        for (start, end) in segments {
            let mut segment_scenario = scenario.clone();
            segment_scenario.split =
                TrainTestSplit::segment(scenario.trace.len(), start, end, 0.75);
            let run =
                run_scheme(&segment_scenario, &Scheme::Figret(options.learning_config()), &eval);
            let norm = normalize_by(&run.mlus, &omni);
            let mut sorted = norm.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            avg_row.push(format!("{:+.1}%", 100.0 * relative_change(mean(&norm), ref_mean)));
            p90_row.push(format!(
                "{:+.1}%",
                100.0 * relative_change(percentile(&sorted, 0.9), ref_p90)
            ));
            churn_row.push(format!("{:.3}", run.mean_churn));
        }
        rows.push(avg_row);
        rows.push(p90_row);
        rows.push(churn_row);
    }
    print_table(
        "Table 4 — performance decline with natural drift in traffic (+ routing churn)",
        &["network", "metric", "0%-25%", "25%-50%", "50%-75%"],
        &rows,
    );
}

/// Appendix C (Figures 10 and 12): heuristic fine-grained sensitivity bounds
/// retrofitted onto desensitization-based TE, on the PoD-level DB cluster.
pub fn appendix_c(options: &ExperimentOptions) {
    let eval = options.eval_options();
    let scenario = Scenario::build(Topology::MetaDbPod, &options.scenario_options());
    let baseline = omniscient_series(&scenario, &eval);

    // Table 7 parameter sets (linear function).
    let linear_sets: Vec<(&str, HeuristicBound)> = vec![
        ("1: strict (min 1/3, max 1/2)", HeuristicBound::Linear { min: 1.0 / 3.0, max: 0.5 }),
        ("2: strict (min 1/3, max 2/3)", HeuristicBound::Linear { min: 1.0 / 3.0, max: 2.0 / 3.0 }),
        ("3: original (2/3, 2/3)", HeuristicBound::Linear { min: 2.0 / 3.0, max: 2.0 / 3.0 }),
        (
            "4: relaxed (min 2/3, max 5/6)",
            HeuristicBound::Linear { min: 2.0 / 3.0, max: 5.0 / 6.0 },
        ),
        ("5: both (min 1/3, max 5/6)", HeuristicBound::Linear { min: 1.0 / 3.0, max: 5.0 / 6.0 }),
    ];
    let mut qualities = Vec::new();
    for (label, bound) in &linear_sets {
        let run = run_scheme(&scenario, &Scheme::HeuristicFineGrained(*bound), &eval);
        let mut q = run.quality(&baseline);
        q.scheme = format!("linear {label}");
        qualities.push(q);
    }
    print_quality_panel("Figure 10 — linear heuristic F on PoD DB", &qualities);

    // Table 8 parameter sets (piecewise function).
    let piecewise_sets: Vec<(&str, HeuristicBound)> = vec![
        (
            "1: min 1/2, bp 0.5",
            HeuristicBound::Piecewise { min: 0.5, max: 2.0 / 3.0, breakpoint: 0.5 },
        ),
        (
            "2: min 1/2, bp 0.65",
            HeuristicBound::Piecewise { min: 0.5, max: 2.0 / 3.0, breakpoint: 0.65 },
        ),
        (
            "3: min 1/2, bp 0.8",
            HeuristicBound::Piecewise { min: 0.5, max: 2.0 / 3.0, breakpoint: 0.8 },
        ),
        (
            "4: original",
            HeuristicBound::Piecewise { min: 2.0 / 3.0, max: 2.0 / 3.0, breakpoint: 0.5 },
        ),
        (
            "5: max 5/6, bp 0.5",
            HeuristicBound::Piecewise { min: 2.0 / 3.0, max: 5.0 / 6.0, breakpoint: 0.5 },
        ),
        (
            "6: max 5/6, bp 0.65",
            HeuristicBound::Piecewise { min: 2.0 / 3.0, max: 5.0 / 6.0, breakpoint: 0.65 },
        ),
        (
            "7: max 5/6, bp 0.8",
            HeuristicBound::Piecewise { min: 2.0 / 3.0, max: 5.0 / 6.0, breakpoint: 0.8 },
        ),
    ];
    let mut qualities = Vec::new();
    for (label, bound) in &piecewise_sets {
        let run = run_scheme(&scenario, &Scheme::HeuristicFineGrained(*bound), &eval);
        let mut q = run.quality(&baseline);
        q.scheme = format!("piecewise {label}");
        qualities.push(q);
    }
    print_quality_panel("Figure 12 — piecewise heuristic F on PoD DB", &qualities);
}

/// Figure 20: DOTE's failure mode — find the test snapshot where DOTE's
/// normalized MLU is worst and show the responsible pair's recent history and
/// the sensitivity DOTE vs FIGRET assigned to its paths.
pub fn fig20_dote_limit(options: &ExperimentOptions) {
    let eval = options.eval_options();
    let scenario = Scenario::build(Topology::MetaDbTor, &options.scenario_options());
    let baseline = omniscient_series(&scenario, &eval);
    let dote = run_scheme(
        &scenario,
        &Scheme::Dote(FigretConfig { robustness_weight: 0.0, ..options.learning_config() }),
        &eval,
    );
    let norm = normalize_by(&dote.mlus, &baseline);
    let (worst_pos, worst_value) = norm
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, v)| (i, *v))
        .unwrap_or((0, 1.0));
    let t = dote.indices[worst_pos];
    println!("\n# Figure 20 — DOTE's worst normalized MLU is {worst_value:.2} at snapshot {t}");
    // Show the pair whose demand grew the most relative to its window.
    let window = eval.window;
    // Flatten each window snapshot once into a reused buffer; the old
    // per-pair inner loop re-flattened the full matrix `pairs · window`
    // times.
    let current = scenario.trace.matrix(t).flatten_pairs();
    let mut window_max = vec![0.0f64; current.len()];
    let mut buf = vec![0.0f64; current.len()];
    for h in t - window..t {
        scenario.trace.matrix(h).flatten_pairs_into(&mut buf);
        figret_traffic::ops::max_assign(&mut window_max, &buf);
    }
    let (best_pair, _) = current
        .iter()
        .zip(&window_max)
        .map(|(c, w)| c - w)
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap_or((0, 0.0));
    let (src, dst) = figret_traffic::ActivePairs::all(scenario.trace.num_nodes()).pair(best_pair);
    let series: Vec<f64> =
        (t - window..=t).map(|h| scenario.trace.matrix(h).get(src, dst)).collect();
    print_csv_series("bursting_pair_window_then_upcoming", &series);
    println!(
        "pair {} burst from a window maximum of {:.3} to {:.3}",
        best_pair,
        series[..window].iter().cloned().fold(0.0, f64::max),
        series[window]
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> ExperimentOptions {
        ExperimentOptions {
            fast: true,
            snapshots: 60,
            window: 4,
            max_eval: 4,
            ..Default::default()
        }
    }

    #[test]
    fn args_parsing() {
        let o = ExperimentOptions::from_args(
            ["--fast", "--window", "6", "--snapshots", "90", "--all-topologies"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(o.fast);
        assert_eq!(o.window, 6);
        assert_eq!(o.snapshots, 90);
        assert!(o.all_topologies);
        assert!(!o.full_scale);
        // --fast lowers the *defaults* when the flags are not explicit...
        assert_eq!(o.max_eval, 20);
        // ...but explicit values always win, in any order.
        let explicit = ExperimentOptions::try_from_args(
            ["--max-eval", "45", "--fast"].iter().map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(explicit.max_eval, 45);
        assert_eq!(explicit.snapshots, 160);
    }

    #[test]
    fn malformed_args_are_errors_not_panics() {
        let err =
            ExperimentOptions::try_from_args(["--snapshots", "lots"].iter().map(|s| s.to_string()))
                .unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
        let err = ExperimentOptions::try_from_args(["--window"].iter().map(|s| s.to_string()))
            .unwrap_err();
        assert!(err.contains("requires an argument"), "{err}");
        let err = ExperimentOptions::try_from_args(["--bogus"].iter().map(|s| s.to_string()))
            .unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn fig3_toy_prints() {
        fig3_toy();
    }

    #[test]
    fn fig4_cosine_smoke() {
        fig4_cosine(&ExperimentOptions { snapshots: 40, window: 6, ..tiny_options() });
    }

    #[test]
    fn fig1_hedging_smoke() {
        fig1_hedging(&tiny_options());
    }

    #[test]
    fn table2_smoke() {
        table2_time(&tiny_options());
    }
}
