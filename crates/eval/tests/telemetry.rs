//! Telemetry acceptance contracts of `serve_sim --metrics-out` (DESIGN.md
//! §10), all driven through the real binary like `fleet_equivalence.rs`:
//!
//! * arming metrics never changes a digest — `decision_log_digest` and
//!   `decision_digest` are bit-identical with metrics on and off, under
//!   `RAYON_NUM_THREADS=1` and `=4` (the vendored rayon caches its thread
//!   count per process, so the variation must cross a process boundary);
//! * the deterministic exposition lines (`_total` counters, histogram
//!   `_count`s) agree across thread counts, and every `.prom` file lints;
//! * the 80-tick recovery drill streams its full transition ladder to the
//!   JSONL sink next to LP-solve and serve-span coverage, and a sharded
//!   fleet run covers all five fleet phases;
//! * bad metrics flags are usage errors (exit 2 + usage text), not panics.

use std::path::PathBuf;
use std::process::Command;

use figret_telemetry::lint_exposition;

/// A fresh per-test output base under the system temp dir; `serve_sim`
/// appends `.jsonl` / `.prom` to it.
fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("figret_metrics_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir must be creatable");
    dir.join("run")
}

fn serve_sim(args: &[&str], threads: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_serve_sim"))
        .args(args)
        .env("RAYON_NUM_THREADS", threads)
        .output()
        .expect("serve_sim must run")
}

fn stdout_of(out: std::process::Output) -> String {
    assert!(out.status.success(), "serve_sim failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).expect("utf-8 report")
}

fn digest_lines(output: &str) -> Vec<&str> {
    output
        .lines()
        .filter(|l| l.starts_with("decision_log_digest,") || l.starts_with("decision_digest,"))
        .collect()
}

/// The deterministic subset of an exposition file: counter samples and
/// histogram `_count` samples.  Quantiles and `_sum`s are wall-clock.
fn deterministic_prom_lines(text: &str) -> Vec<&str> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            let name = l.split([' ', '{']).next().unwrap_or("");
            name.ends_with("_total") || name.ends_with("_count")
        })
        .collect()
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read '{}': {e}", path.display()))
}

const GEANT_ARGS: &[&str] = &[
    "--topology",
    "geant",
    "--engine",
    "lp",
    "--fast",
    "--snapshots",
    "10",
    "--window",
    "2",
    "--max-eval",
    "6",
];

#[test]
fn metrics_are_out_of_band_and_deterministic_across_thread_counts() {
    let mut reports = Vec::new();
    let mut prom_texts = Vec::new();
    for threads in ["1", "4"] {
        let base = temp_base(&format!("geant_t{threads}"));
        let base_str = base.display().to_string();
        let mut args = GEANT_ARGS.to_vec();
        args.extend(["--metrics-out", &base_str, "--metrics-every", "2"]);
        let armed = stdout_of(serve_sim(&args, threads));
        assert!(
            armed.lines().any(|l| l.starts_with("metrics_out,")),
            "the report must point at the metrics files:\n{armed}"
        );

        let jsonl = read(&PathBuf::from(format!("{base_str}.jsonl")));
        assert!(
            jsonl.lines().any(|l| l.contains("\"event\":\"snapshot\"")),
            "the JSONL stream must carry registry snapshots:\n{jsonl}"
        );
        let prom = read(&PathBuf::from(format!("{base_str}.prom")));
        let samples = lint_exposition(&prom)
            .unwrap_or_else(|e| panic!("exposition must lint clean: {e}\n{prom}"));
        assert!(samples > 10, "the exposition must carry real samples, got {samples}");
        prom_texts.push(prom);

        let disarmed = stdout_of(serve_sim(GEANT_ARGS, threads));
        assert_eq!(
            digest_lines(&armed),
            digest_lines(&disarmed),
            "arming metrics must not perturb the digests (threads={threads})"
        );
        reports.push(armed);
    }
    assert_eq!(
        digest_lines(&reports[0]),
        digest_lines(&reports[1]),
        "digests must not depend on the thread count"
    );
    assert_eq!(
        deterministic_prom_lines(&prom_texts[0]),
        deterministic_prom_lines(&prom_texts[1]),
        "counters and sample counts must not depend on the thread count"
    );
}

#[test]
fn recovery_drill_streams_the_full_transition_ladder() {
    let base = temp_base("drill");
    let base_str = base.display().to_string();
    let report = stdout_of(serve_sim(
        &[
            "--topology",
            "pod-db",
            "--engine",
            "learned",
            "--fast",
            "--snapshots",
            "60",
            "--window",
            "4",
            "--online-ticks",
            "80",
            "--retrain-every",
            "4",
            "--promotion-patience",
            "2",
            "--shift-tick",
            "10",
            "--metrics-out",
            &base_str,
            "--metrics-every",
            "10",
        ],
        "4",
    ));
    assert!(report.contains("self-healing recovery"), "missing recovery summary:\n{report}");

    // Every recovery transition the run printed is mirrored as a JSONL
    // `transition` event with the same kind, in order.
    let jsonl = read(&PathBuf::from(format!("{base_str}.jsonl")));
    let streamed: Vec<&str> =
        jsonl.lines().filter(|l| l.contains("\"event\":\"transition\"")).collect();
    for kind in ["Degraded", "RetrainStarted", "Promoted"] {
        assert!(
            streamed.iter().any(|l| l.contains(&format!("\"kind\":\"{kind}\""))),
            "the drill must stream a {kind} transition:\n{jsonl}"
        );
    }
    let printed = report.lines().filter(|l| l.starts_with("transition,")).count();
    assert_eq!(streamed.len(), printed, "JSONL must mirror every printed transition");

    // The final exposition covers the serve spans, the LP fallback solves
    // and the recovery ladder — and lints clean.
    let prom = read(&PathBuf::from(format!("{base_str}.prom")));
    lint_exposition(&prom).unwrap_or_else(|e| panic!("exposition must lint clean: {e}"));
    for family in [
        "figret_serve_decision_seconds_count",
        "figret_serve_predict_seconds_count",
        "figret_lp_solves_total",
        "figret_recovery_transitions_total{kind=\"degraded\"}",
        "figret_recovery_transitions_total{kind=\"retrain_started\"}",
        "figret_recovery_transitions_total{kind=\"promoted\"}",
        "figret_recovery_retrains_total",
        "figret_recovery_cusum_level",
    ] {
        assert!(prom.contains(family), "exposition must cover {family}:\n{prom}");
    }
    assert!(report.contains("span"), "the profile report must print span rows:\n{report}");
}

#[test]
fn fleet_metrics_cover_every_phase() {
    let base = temp_base("fleet");
    let base_str = base.display().to_string();
    let args = [
        "--topology",
        "podfab16",
        "--engine",
        "lp",
        "--fast",
        "--snapshots",
        "10",
        "--window",
        "2",
        "--max-eval",
        "6",
        "--shards",
        "4",
        "--metrics-out",
        &base_str,
        "--metrics-every",
        "2",
    ];
    let armed = stdout_of(serve_sim(&args, "4"));
    let disarmed = stdout_of(serve_sim(&args[..args.len() - 4], "4"));
    assert_eq!(
        digest_lines(&armed),
        digest_lines(&disarmed),
        "arming fleet metrics must not perturb the digests"
    );

    let prom = read(&PathBuf::from(format!("{base_str}.prom")));
    lint_exposition(&prom).unwrap_or_else(|e| panic!("exposition must lint clean: {e}"));
    for phase in ["scatter", "propose", "admission", "finish", "merge"] {
        assert!(
            prom.contains(&format!("figret_fleet_phase_seconds_count{{phase=\"{phase}\"}}")),
            "exposition must cover fleet phase '{phase}':\n{prom}"
        );
    }
    let jsonl = read(&PathBuf::from(format!("{base_str}.jsonl")));
    assert!(
        jsonl.lines().any(|l| l.contains("figret_fleet_phase_seconds")),
        "fleet snapshots must reach the JSONL stream"
    );
}

#[test]
fn metrics_flags_are_validated_as_usage_errors() {
    let out = serve_sim(&["--metrics-every", "0"], "1");
    assert_eq!(out.status.code(), Some(2), "--metrics-every 0 must be a usage error");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--metrics-every"), "unexpected error: {err}");
    assert!(err.contains("USAGE"), "a usage error must print the usage text: {err}");

    let out = serve_sim(&["--metrics-out", "/nonexistent-figret-dir/deeper/run"], "1");
    assert_eq!(out.status.code(), Some(2), "an unwritable --metrics-out must be a usage error");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--metrics-out"), "unexpected error: {err}");
    assert!(err.contains("USAGE"), "a usage error must print the usage text: {err}");
}
