//! Fleet acceptance contracts of the sharded serving harness (DESIGN.md §8):
//!
//! * a one-shard fleet replays the unsharded controller bit for bit, on a
//!   Table 1 network (GEANT) and on a two-tier pod fabric — equal records
//!   and equal digests, so CI can diff the printed digest lines between
//!   `--shards 1` and the unsharded path;
//! * a multi-shard fleet on the pod fabric is bit-deterministic across
//!   *processes* with different `RAYON_NUM_THREADS` (the vendored rayon
//!   caches its thread count per process, so the variation must cross a
//!   process boundary — this test drives the real `serve_sim` binary).

use figret_eval::experiments::ExperimentOptions;
use figret_eval::fleet::serve_fleet;
use figret_eval::serving::{
    serve_fabric, serve_replay, DemandMode, ServeEngine, ServeSimOptions, ServeTopology,
};
use figret_serve::{FallbackPolicy, PredictorKind, ReconfigPolicy, UpdateBudget};
use figret_topology::{FabricSpec, Topology};

fn gated_policy() -> ReconfigPolicy {
    // Real gates to exercise: hysteresis holds and a budget that exhausts,
    // so the admission layer must reproduce the controller's sequence.
    ReconfigPolicy {
        hysteresis: 0.02,
        budget: Some(UpdateBudget::per_window(2, 6)),
        fallback: FallbackPolicy::disabled(),
    }
}

fn geant_options() -> ServeSimOptions {
    ServeSimOptions {
        experiment: ExperimentOptions { window: 4, snapshots: 60, ..Default::default() },
        topology: ServeTopology::Table1(Topology::Geant),
        demand: DemandMode::Dense,
        engine: ServeEngine::Lp,
        predictor: PredictorKind::LastValue,
        policy: gated_policy(),
        online_ticks: 0,
        max_ticks: Some(12),
        use_plan: false,
        shards: 0,
        ..ServeSimOptions::new(ExperimentOptions::default())
    }
}

#[test]
fn one_shard_fleet_replays_unsharded_geant() {
    let options = geant_options();
    let scenario = figret_eval::scenario::Scenario::build(
        Topology::Geant,
        &figret_eval::scenario::ScenarioOptions {
            num_snapshots: options.experiment.snapshots,
            ..Default::default()
        },
    );
    let solo = serve_replay(&scenario, &options);
    let fleet = serve_fleet(&options, 1);
    assert_eq!(fleet.logs.len(), 1);
    assert_eq!(fleet.ticks(), solo.log.len());
    assert_eq!(fleet.logs[0].records, solo.log.records, "one-shard fleet must replay GEANT");
    assert_eq!(fleet.digest, solo.log.digest());
    assert_eq!(fleet.decision_digest, solo.log.decision_digest());
    assert!(solo.log.update_count() > 0, "the comparison must exercise real updates");
    assert!(
        solo.log.update_count() < solo.log.len(),
        "the gates must hold at least one tick for the admission layer to prove itself"
    );
}

#[test]
fn one_shard_fleet_replays_unsharded_pod_fabric() {
    let spec = FabricSpec::two_tier(16);
    let options = ServeSimOptions {
        experiment: ExperimentOptions {
            fast: true,
            snapshots: 12,
            window: 2,
            ..Default::default()
        },
        topology: ServeTopology::Fabric(spec),
        engine: ServeEngine::Lp,
        policy: gated_policy(),
        max_ticks: Some(8),
        ..ServeSimOptions::new(ExperimentOptions::default())
    };
    let solo = serve_fabric(&spec, &options);
    let fleet = serve_fleet(&options, 1);
    assert_eq!(fleet.logs.len(), 1);
    assert_eq!(fleet.logs[0].records, solo.log.records, "one-shard fleet must replay the fabric");
    assert_eq!(fleet.digest, solo.log.digest());
    assert_eq!(fleet.decision_digest, solo.log.decision_digest());
    assert_eq!(fleet.total_pairs, solo.pairs_per_tick);
}

#[test]
fn multi_shard_pod_fabric_fleet_is_deterministic() {
    let spec = FabricSpec::two_tier(16);
    let options = ServeSimOptions {
        experiment: ExperimentOptions {
            fast: true,
            snapshots: 12,
            window: 2,
            ..Default::default()
        },
        topology: ServeTopology::Fabric(spec),
        engine: ServeEngine::Lp,
        policy: gated_policy(),
        max_ticks: Some(8),
        ..ServeSimOptions::new(ExperimentOptions::default())
    };
    let a = serve_fleet(&options, 4);
    let b = serve_fleet(&options, 4);
    assert_eq!(a.logs.len(), 4);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.decision_digest, b.decision_digest);
    for (x, y) in a.global_mlus.iter().zip(&b.global_mlus) {
        assert_eq!(x.to_bits(), y.to_bits(), "global MLU series must be bit-identical");
    }
    assert_eq!(a.admission, b.admission);
}

/// Extracts the digest report lines (`decision_log_digest,…` and
/// `decision_digest,…`) from a `serve_sim` run.
fn digest_lines(output: &str) -> Vec<&str> {
    output
        .lines()
        .filter(|l| l.starts_with("decision_log_digest,") || l.starts_with("decision_digest,"))
        .collect()
}

#[test]
fn serve_sim_fleet_digests_agree_across_thread_counts_and_with_unsharded() {
    let run = |threads: &str, shards: &str| -> String {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_serve_sim"))
            .args([
                "--topology",
                "podfab16",
                "--engine",
                "lp",
                "--fast",
                "--snapshots",
                "10",
                "--window",
                "2",
                "--max-eval",
                "6",
                "--shards",
                shards,
            ])
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("serve_sim must run");
        assert!(out.status.success(), "serve_sim failed: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).expect("utf-8 report")
    };
    let sharded_1t = run("1", "4");
    let sharded_4t = run("4", "4");
    let d1 = digest_lines(&sharded_1t);
    assert_eq!(d1.len(), 2, "the fleet report must print both digest lines");
    assert_eq!(d1, digest_lines(&sharded_4t), "fleet digests must not depend on the thread count");
    // `--shards 1` must print the exact digests of the unsharded path.
    let fleet_one = run("4", "1");
    let unsharded = run("4", "0");
    assert_eq!(
        digest_lines(&fleet_one),
        digest_lines(&unsharded),
        "a one-shard fleet must reproduce the unsharded digests"
    );
}
