//! Recovery acceptance contracts of the `serve_sim` harness (DESIGN.md §9):
//!
//! * the online recovery drill (weak learned incumbent + step shift +
//!   `--retrain-every`) must walk the whole ladder — a `Degraded`
//!   transition, at least one `RetrainStarted`, and a `Promoted` challenger
//!   back in live serving — and must report the recovery summary;
//! * the run is bit-deterministic across *processes* with different
//!   `RAYON_NUM_THREADS` (the vendored rayon caches its thread count per
//!   process, so the variation must cross a process boundary — this test
//!   drives the real `serve_sim` binary, like `fleet_equivalence.rs`).

/// Runs the recovery drill and returns its stdout report.
fn recovery_run(threads: &str) -> String {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_serve_sim"))
        .args([
            "--topology",
            "pod-db",
            "--engine",
            "learned",
            "--fast",
            "--snapshots",
            "60",
            "--window",
            "4",
            "--online-ticks",
            "60",
            "--retrain-every",
            "4",
            "--promotion-patience",
            "2",
            "--shift-tick",
            "10",
        ])
        .env("RAYON_NUM_THREADS", threads)
        .output()
        .expect("serve_sim must run");
    assert!(out.status.success(), "serve_sim failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).expect("utf-8 report")
}

/// The machine-greppable lines whose bit-determinism the smoke guards: the
/// two digest lines plus every transition line.
fn deterministic_lines(output: &str) -> Vec<&str> {
    output
        .lines()
        .filter(|l| {
            l.starts_with("decision_log_digest,")
                || l.starts_with("decision_digest,")
                || l.starts_with("transition,")
        })
        .collect()
}

#[test]
fn online_recovery_drill_promotes_and_is_thread_count_invariant() {
    let one = recovery_run("1");
    let lines = deterministic_lines(&one);
    assert!(lines.iter().any(|l| l.ends_with(",Degraded")), "the drill must degrade:\n{one}");
    assert!(lines.iter().any(|l| l.ends_with(",RetrainStarted")), "no retrain ran:\n{one}");
    assert!(lines.iter().any(|l| l.ends_with(",Promoted")), "no challenger promoted:\n{one}");
    assert!(one.contains("self-healing recovery"), "the recovery summary is missing:\n{one}");
    assert!(one.contains("time to recovery"), "the recovery summary is incomplete:\n{one}");
    assert!(
        one.lines().any(|l| l.starts_with("stream_event,") && l.contains("shifted=true")),
        "the step shift must surface as a stream annotation:\n{one}"
    );

    let four = recovery_run("4");
    assert_eq!(
        lines,
        deterministic_lines(&four),
        "recovery transitions and digests must not depend on the thread count"
    );
}

#[test]
fn recovery_flags_are_validated() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_serve_sim"))
        .args(["--engine", "lp", "--retrain-every", "4"])
        .output()
        .expect("serve_sim must run");
    assert!(!out.status.success(), "--retrain-every with the LP engine must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--engine learned"), "unexpected error: {err}");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_serve_sim"))
        .args(["--shift-tick", "5"])
        .output()
        .expect("serve_sim must run");
    assert!(!out.status.success(), "--shift-tick without --online-ticks must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--online-ticks"), "unexpected error: {err}");
}
