//! Acceptance contract of the serving subsystem (ISSUE 5): with the update
//! budget set to "unlimited" and the last-value predictor, the online
//! serving loop replaying a GEANT scenario must reproduce the per-snapshot
//! MLUs of the existing batch `run_scheme` prediction path within 1e-9 on
//! the same seed — the streaming controller is the batch evaluator plus
//! time, not a different optimizer.

use figret_eval::experiments::ExperimentOptions;
use figret_eval::runner::{omniscient_series, run_scheme, EvalOptions, Scheme};
use figret_eval::scenario::{Scenario, ScenarioOptions};
use figret_eval::serving::{serve_replay, DemandMode, ServeEngine, ServeSimOptions, ServeTopology};
use figret_serve::{FallbackPolicy, PredictorKind, ReconfigPolicy, UpdateBudget};
use figret_solvers::{Predictor, SolverEngine};
use figret_topology::Topology;

const WINDOW: usize = 4;

fn geant_scenario() -> Scenario {
    Scenario::build(Topology::Geant, &ScenarioOptions { num_snapshots: 80, ..Default::default() })
}

fn serve_options() -> ServeSimOptions {
    ServeSimOptions {
        experiment: ExperimentOptions { window: WINDOW, snapshots: 80, ..Default::default() },
        topology: ServeTopology::Table1(Topology::Geant),
        demand: DemandMode::Dense,
        engine: ServeEngine::Lp,
        predictor: PredictorKind::LastValue,
        policy: ReconfigPolicy::always_update(),
        online_ticks: 0,
        max_ticks: None,
        use_plan: false,
        shards: 0,
        ..ServeSimOptions::new(ExperimentOptions::default())
    }
}

#[test]
fn serving_loop_matches_batch_prediction_on_geant() {
    let scenario = geant_scenario();
    let eval = EvalOptions {
        window: WINDOW,
        max_eval_snapshots: None,
        engine: SolverEngine::Auto,
        failure: None,
    };
    let batch = run_scheme(&scenario, &Scheme::Prediction(Predictor::LastSnapshot), &eval);
    let serve = serve_replay(&scenario, &serve_options());

    assert_eq!(serve.indices, batch.indices, "both paths must evaluate the same snapshots");
    assert_eq!(serve.log.update_count(), serve.log.len(), "unlimited budget deploys every tick");
    let serve_mlus = serve.log.realized_mlus();
    assert_eq!(serve_mlus.len(), batch.mlus.len());
    for ((a, b), t) in serve_mlus.iter().zip(&batch.mlus).zip(&batch.indices) {
        assert!(
            (a - b).abs() <= 1e-9,
            "snapshot {t}: serving MLU {a} vs batch MLU {b} (|Δ| = {})",
            (a - b).abs()
        );
    }
    // Total churn equals the sum over the deployed-config series, and the
    // batch run reports the matching mean churn over the same configs.
    let expected_total = batch.mean_churn * (batch.mlus.len() - 1) as f64;
    let first_update_churn = serve.log.records[0].churn;
    let serve_total = serve.log.total_churn() - first_update_churn;
    assert!(
        (serve_total - expected_total).abs() <= 1e-6,
        "churn after the initial deployment must match the batch series \
         (serve {serve_total} vs batch {expected_total})"
    );
}

/// Plan-vs-graph contract of the zero-alloc inference hot path (ISSUE 6):
/// replaying the same learned scenario through the compiled f32 plan and the
/// f64 autodiff graph must make bit-identical policy decisions (equal
/// `decision_digest`), with realized MLUs agreeing to well within the f32
/// quantization tolerance.
#[test]
fn plan_inference_reproduces_graph_decisions_in_replay() {
    let scenario = Scenario::build(
        Topology::MetaDbPod,
        &ScenarioOptions { num_snapshots: 60, ..Default::default() },
    );
    let graph_options = ServeSimOptions {
        experiment: ExperimentOptions {
            fast: true,
            snapshots: 60,
            window: WINDOW,
            ..Default::default()
        },
        topology: ServeTopology::Table1(Topology::MetaDbPod),
        demand: DemandMode::Dense,
        engine: ServeEngine::Learned,
        predictor: PredictorKind::LastValue,
        // A policy with real decisions to flip (hysteresis holds, a budget
        // that exhausts) — and fallback off, so a marginal audit cannot
        // diverge the two runs by design rather than by bug.
        policy: ReconfigPolicy {
            hysteresis: 0.05,
            budget: Some(UpdateBudget::per_window(3, 8)),
            fallback: FallbackPolicy::disabled(),
        },
        online_ticks: 0,
        max_ticks: Some(8),
        use_plan: false,
        shards: 0,
        ..ServeSimOptions::new(ExperimentOptions::default())
    };
    let plan_options = ServeSimOptions { use_plan: true, ..graph_options.clone() };

    let graph = serve_replay(&scenario, &graph_options);
    let plan = serve_replay(&scenario, &plan_options);

    assert_eq!(graph.log.len(), plan.log.len());
    assert_eq!(
        graph.log.decision_digest(),
        plan.log.decision_digest(),
        "plan and graph inference must deploy/hold identically"
    );
    for ((a, b), t) in
        graph.log.realized_mlus().iter().zip(&plan.log.realized_mlus()).zip(&graph.indices)
    {
        assert!(
            (a - b).abs() <= 1e-3 * a.abs().max(1.0),
            "snapshot {t}: graph MLU {a} vs plan MLU {b}"
        );
    }
}

/// Sparse-columnar equivalence contract of the demand–path core (ISSUE 7):
/// replaying GEANT through the sparse column entry points (SparseTrace +
/// scatter) must reproduce the dense replay's decision log bit for bit —
/// every action, MLU and churn value, hence equal digests.  CI additionally
/// diffs the printed digests across `RAYON_NUM_THREADS=1` and `=4`
/// processes and across `--demand dense`/`--demand sparse` runs.
#[test]
fn sparse_demand_replay_matches_dense_on_geant() {
    let scenario = geant_scenario();
    let dense_options = serve_options();
    let sparse_options = ServeSimOptions { demand: DemandMode::Sparse, ..dense_options.clone() };
    let dense = serve_replay(&scenario, &dense_options);
    let sparse = serve_replay(&scenario, &sparse_options);
    assert_eq!(dense.log.len(), sparse.log.len());
    assert_eq!(dense.log.records, sparse.log.records, "per-tick records must be identical");
    assert_eq!(dense.log.digest(), sparse.log.digest());
    assert_eq!(dense.log.decision_digest(), sparse.log.decision_digest());
    for (a, b) in dense.omniscient.iter().zip(&sparse.omniscient) {
        assert_eq!(a.to_bits(), b.to_bits(), "the omniscient normalizer must agree bitwise");
    }
}

#[test]
fn serving_omniscient_normalizer_matches_batch_oracle() {
    let scenario = geant_scenario();
    let eval = EvalOptions {
        window: WINDOW,
        max_eval_snapshots: None,
        engine: SolverEngine::Auto,
        failure: None,
    };
    let batch_oracle = omniscient_series(&scenario, &eval);
    let serve = serve_replay(&scenario, &serve_options());
    assert_eq!(serve.omniscient.len(), batch_oracle.len());
    for ((a, b), t) in serve.omniscient.iter().zip(&batch_oracle).zip(&serve.indices) {
        assert!((a - b).abs() <= 1e-9, "snapshot {t}: serving oracle {a} vs batch oracle {b}");
    }
    // Regret is therefore well-defined and at least 1 everywhere.
    let regret = serve.regret();
    assert!(regret.normalized_mlu.min >= 1.0 - 1e-6, "{:?}", regret.normalized_mlu);
}
