//! Acceptance contract of the serving subsystem (ISSUE 5): with the update
//! budget set to "unlimited" and the last-value predictor, the online
//! serving loop replaying a GEANT scenario must reproduce the per-snapshot
//! MLUs of the existing batch `run_scheme` prediction path within 1e-9 on
//! the same seed — the streaming controller is the batch evaluator plus
//! time, not a different optimizer.

use figret_eval::experiments::ExperimentOptions;
use figret_eval::runner::{omniscient_series, run_scheme, EvalOptions, Scheme};
use figret_eval::scenario::{Scenario, ScenarioOptions};
use figret_eval::serving::{serve_replay, ServeEngine, ServeSimOptions};
use figret_serve::{PredictorKind, ReconfigPolicy};
use figret_solvers::{Predictor, SolverEngine};
use figret_topology::Topology;

const WINDOW: usize = 4;

fn geant_scenario() -> Scenario {
    Scenario::build(Topology::Geant, &ScenarioOptions { num_snapshots: 80, ..Default::default() })
}

fn serve_options() -> ServeSimOptions {
    ServeSimOptions {
        experiment: ExperimentOptions { window: WINDOW, snapshots: 80, ..Default::default() },
        topology: Topology::Geant,
        engine: ServeEngine::Lp,
        predictor: PredictorKind::LastValue,
        policy: ReconfigPolicy::always_update(),
        online_ticks: 0,
        max_ticks: None,
    }
}

#[test]
fn serving_loop_matches_batch_prediction_on_geant() {
    let scenario = geant_scenario();
    let eval = EvalOptions {
        window: WINDOW,
        max_eval_snapshots: None,
        engine: SolverEngine::Auto,
        failure: None,
    };
    let batch = run_scheme(&scenario, &Scheme::Prediction(Predictor::LastSnapshot), &eval);
    let serve = serve_replay(&scenario, &serve_options());

    assert_eq!(serve.indices, batch.indices, "both paths must evaluate the same snapshots");
    assert_eq!(serve.log.update_count(), serve.log.len(), "unlimited budget deploys every tick");
    let serve_mlus = serve.log.realized_mlus();
    assert_eq!(serve_mlus.len(), batch.mlus.len());
    for ((a, b), t) in serve_mlus.iter().zip(&batch.mlus).zip(&batch.indices) {
        assert!(
            (a - b).abs() <= 1e-9,
            "snapshot {t}: serving MLU {a} vs batch MLU {b} (|Δ| = {})",
            (a - b).abs()
        );
    }
    // Total churn equals the sum over the deployed-config series, and the
    // batch run reports the matching mean churn over the same configs.
    let expected_total = batch.mean_churn * (batch.mlus.len() - 1) as f64;
    let first_update_churn = serve.log.records[0].churn;
    let serve_total = serve.log.total_churn() - first_update_churn;
    assert!(
        (serve_total - expected_total).abs() <= 1e-6,
        "churn after the initial deployment must match the batch series \
         (serve {serve_total} vs batch {expected_total})"
    );
}

#[test]
fn serving_omniscient_normalizer_matches_batch_oracle() {
    let scenario = geant_scenario();
    let eval = EvalOptions {
        window: WINDOW,
        max_eval_snapshots: None,
        engine: SolverEngine::Auto,
        failure: None,
    };
    let batch_oracle = omniscient_series(&scenario, &eval);
    let serve = serve_replay(&scenario, &serve_options());
    assert_eq!(serve.omniscient.len(), batch_oracle.len());
    for ((a, b), t) in serve.omniscient.iter().zip(&batch_oracle).zip(&serve.indices) {
        assert!((a - b).abs() <= 1e-9, "snapshot {t}: serving oracle {a} vs batch oracle {b}");
    }
    // Regret is therefore well-defined and at least 1 everywhere.
    let regret = serve.regret();
    assert!(regret.normalized_mlu.min >= 1.0 - 1e-6, "{:?}", regret.normalized_mlu);
}
