//! LP/iterative-based TE baselines of §5.1:
//!
//! * **Omniscient TE** — optimal MLU with perfect knowledge of the upcoming
//!   demand (the normalizer of every quality figure);
//! * **Demand-prediction-based TE** — predict the next demand from the history
//!   window (last snapshot or window mean) and optimize for the prediction;
//! * **Desensitization-based TE** — Google Jupiter's hedging: optimize for the
//!   element-wise *peak* matrix of the window under a uniform path-sensitivity
//!   cap; the fault-aware variant additionally knows which links will fail;
//! * **Heuristic fine-grained TE** (Appendix C) — the same scheme but with a
//!   per-pair sensitivity bound derived from the traffic-variance ordering via
//!   a linear or piecewise function.

use figret_te::{available_paths, PathSet, TeConfig};
use figret_topology::FailureScenario;
use figret_traffic::DemandMatrix;

use crate::engine::{
    normalized_bound_to_absolute, solve_min_mlu, MluProblem, SolveError, SolverEngine,
};

/// How demand-prediction-based TE forecasts the next demand matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predictor {
    /// Use the most recent snapshot unchanged (the paper's choice for TEAL and
    /// the default for prediction-based TE).
    LastSnapshot,
    /// Use the element-wise mean of the history window.
    WindowMean,
    /// Use the element-wise maximum of the history window (the "anticipated
    /// matrix composed of peak values" used by desensitization-based TE).
    WindowPeak,
}

/// Applies a predictor to a history window (most recent matrix last).
pub fn predict(history: &[DemandMatrix], predictor: Predictor) -> DemandMatrix {
    assert!(!history.is_empty(), "the history window must not be empty");
    match predictor {
        Predictor::LastSnapshot => history.last().expect("non-empty").clone(),
        Predictor::WindowMean => {
            let n = history[0].num_nodes();
            let mut acc = DemandMatrix::zeros(n);
            for m in history {
                acc = acc.axpy(1.0, m);
            }
            acc.scaled(1.0 / history.len() as f64)
        }
        Predictor::WindowPeak => {
            let mut acc = history[0].clone();
            for m in &history[1..] {
                acc = acc.element_max(m);
            }
            acc
        }
    }
}

/// Omniscient TE: optimize directly for the realized demand.
pub fn omniscient_config(
    paths: &PathSet,
    demand: &DemandMatrix,
    engine: SolverEngine,
) -> Result<TeConfig, SolveError> {
    solve_min_mlu(&MluProblem::new(paths, demand.flatten_pairs()), engine)
}

/// Demand-prediction-based TE: optimize for the predicted demand.
pub fn prediction_config(
    paths: &PathSet,
    history: &[DemandMatrix],
    predictor: Predictor,
    engine: SolverEngine,
) -> Result<TeConfig, SolveError> {
    let predicted = predict(history, predictor);
    solve_min_mlu(&MluProblem::new(paths, predicted.flatten_pairs()), engine)
}

/// Parameters of desensitization-based TE.
#[derive(Debug, Clone)]
pub struct DesensitizationSettings {
    /// Uniform path-sensitivity cap, expressed against normalized capacities
    /// (the smallest link counts as 1); the paper's "Original" setting in
    /// Appendix C is 2/3.
    pub sensitivity_bound: f64,
    /// Which prediction to optimize for (the paper uses the window peak).
    pub predictor: Predictor,
}

impl Default for DesensitizationSettings {
    fn default() -> Self {
        DesensitizationSettings { sensitivity_bound: 2.0 / 3.0, predictor: Predictor::WindowPeak }
    }
}

/// The per-pair sensitivity bounds desensitization-based TE applies, in
/// absolute units — the single source of the scheme's bound policy, shared by
/// the one-shot configs here and the series templates
/// ([`crate::template::MluTemplate::for_desensitization`]).
pub fn desensitization_bounds(paths: &PathSet, settings: &DesensitizationSettings) -> Vec<f64> {
    let min_cap = paths.edge_capacities().iter().cloned().fold(f64::INFINITY, f64::min);
    let bound_abs = normalized_bound_to_absolute(settings.sensitivity_bound, min_cap);
    vec![bound_abs; paths.num_pairs()]
}

/// Desensitization-based TE (Google Jupiter's hedging mechanism).
pub fn desensitization_config(
    paths: &PathSet,
    history: &[DemandMatrix],
    settings: &DesensitizationSettings,
    engine: SolverEngine,
) -> Result<TeConfig, SolveError> {
    let predicted = predict(history, settings.predictor);
    let problem = MluProblem::new(paths, predicted.flatten_pairs())
        .with_sensitivity_bounds(desensitization_bounds(paths, settings));
    solve_min_mlu(&problem, engine)
}

/// Fault-aware desensitization-based TE: the scheme additionally knows which
/// links will fail and optimizes only over the surviving paths (the "FA Des
/// TE" baseline of Figure 7).
pub fn fault_aware_desensitization_config(
    paths: &PathSet,
    history: &[DemandMatrix],
    settings: &DesensitizationSettings,
    scenario: &FailureScenario,
    engine: SolverEngine,
) -> Result<TeConfig, SolveError> {
    let predicted = predict(history, settings.predictor);
    let problem = MluProblem::new(paths, predicted.flatten_pairs())
        .with_sensitivity_bounds(desensitization_bounds(paths, settings))
        .with_available(available_paths(paths, scenario));
    solve_min_mlu(&problem, engine)
}

/// The heuristic per-pair sensitivity-constraint functions of Appendix C.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeuristicBound {
    /// Linear interpolation from `max` (most stable pair) down to `min` (most
    /// bursty pair) along the variance ordering (Figure 9).
    Linear {
        /// Bound applied to the most bursty pair.
        min: f64,
        /// Bound applied to the most stable pair.
        max: f64,
    },
    /// Piecewise: pairs below the breakpoint (fraction of the variance
    /// ordering) get `max`, pairs above it get `min` (Figure 11).
    Piecewise {
        /// Bound applied to bursty pairs (above the breakpoint).
        min: f64,
        /// Bound applied to stable pairs (below the breakpoint).
        max: f64,
        /// Fraction of pairs counted as stable (0..1).
        breakpoint: f64,
    },
}

/// Computes per-pair sensitivity bounds (normalized units) from the per-pair
/// traffic variances using one of the Appendix C heuristics.
pub fn heuristic_bounds(variances: &[f64], heuristic: HeuristicBound) -> Vec<f64> {
    let n = variances.len();
    if n == 0 {
        return Vec::new();
    }
    // Rank pairs by ascending variance.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| variances[a].partial_cmp(&variances[b]).expect("variances are finite"));
    let mut bounds = vec![0.0; n];
    for (rank, &pair) in order.iter().enumerate() {
        let frac = if n > 1 { rank as f64 / (n - 1) as f64 } else { 0.0 };
        bounds[pair] = match heuristic {
            HeuristicBound::Linear { min, max } => max - frac * (max - min),
            HeuristicBound::Piecewise { min, max, breakpoint } => {
                if frac <= breakpoint {
                    max
                } else {
                    min
                }
            }
        };
    }
    bounds
}

/// The predictor heuristic fine-grained TE optimizes for (the same window
/// peak the plain desensitization scheme hedges against).
pub const HEURISTIC_PREDICTOR: Predictor = Predictor::WindowPeak;

/// The per-pair heuristic bounds in absolute units — the single source of the
/// Appendix C bound policy, shared by [`heuristic_fine_grained_config`] and
/// [`crate::template::MluTemplate::for_heuristic_fine_grained`].
pub fn heuristic_absolute_bounds(
    paths: &PathSet,
    variances: &[f64],
    heuristic: HeuristicBound,
) -> Vec<f64> {
    assert_eq!(variances.len(), paths.num_pairs(), "one variance per SD pair is required");
    let min_cap = paths.edge_capacities().iter().cloned().fold(f64::INFINITY, f64::min);
    heuristic_bounds(variances, heuristic)
        .into_iter()
        .map(|b| normalized_bound_to_absolute(b, min_cap))
        .collect()
}

/// Desensitization-based TE with fine-grained (per-pair) heuristic bounds —
/// the Appendix C variant that retrofits FIGRET's idea onto Google's scheme.
pub fn heuristic_fine_grained_config(
    paths: &PathSet,
    history: &[DemandMatrix],
    variances: &[f64],
    heuristic: HeuristicBound,
    engine: SolverEngine,
) -> Result<TeConfig, SolveError> {
    let bounds = heuristic_absolute_bounds(paths, variances, heuristic);
    let predicted = predict(history, HEURISTIC_PREDICTOR);
    let problem = MluProblem::new(paths, predicted.flatten_pairs()).with_sensitivity_bounds(bounds);
    solve_min_mlu(&problem, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_te::{max_link_utilization, max_link_utilization_pairs, max_sensitivity};
    use figret_topology::{random_link_failures, Topology, TopologySpec};

    fn pod_setup() -> (PathSet, Vec<DemandMatrix>) {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let history: Vec<DemandMatrix> = (0..6)
            .map(|t| {
                let mut d = DemandMatrix::zeros(4);
                for s in 0..4 {
                    for dd in 0..4 {
                        if s != dd {
                            d.set(s, dd, 20.0 + 5.0 * ((t + s + dd) % 3) as f64);
                        }
                    }
                }
                d
            })
            .collect();
        (ps, history)
    }

    #[test]
    fn predictors_behave_as_documented() {
        let (_ps, history) = pod_setup();
        let last = predict(&history, Predictor::LastSnapshot);
        assert_eq!(&last, history.last().unwrap());
        let mean = predict(&history, Predictor::WindowMean);
        let peak = predict(&history, Predictor::WindowPeak);
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    assert!(peak.get(s, d) >= mean.get(s, d) - 1e-9);
                    assert!(peak.get(s, d) >= last.get(s, d) - 1e-9);
                }
            }
        }
    }

    #[test]
    fn omniscient_beats_or_matches_prediction() {
        let (ps, history) = pod_setup();
        let realized = history.last().unwrap().scaled(1.4);
        let omni = omniscient_config(&ps, &realized, SolverEngine::Lp).unwrap();
        let pred = prediction_config(
            &ps,
            &history[..history.len() - 1],
            Predictor::LastSnapshot,
            SolverEngine::Lp,
        )
        .unwrap();
        let omni_mlu = max_link_utilization(&ps, &omni, &realized);
        let pred_mlu = max_link_utilization(&ps, &pred, &realized);
        assert!(omni_mlu <= pred_mlu + 1e-9, "omniscient {omni_mlu} vs prediction {pred_mlu}");
    }

    #[test]
    fn desensitization_respects_the_uniform_cap() {
        let (ps, history) = pod_setup();
        let settings = DesensitizationSettings::default();
        let cfg = desensitization_config(&ps, &history, &settings, SolverEngine::Lp).unwrap();
        let min_cap = ps.edge_capacities().iter().cloned().fold(f64::INFINITY, f64::min);
        let bound_abs = normalized_bound_to_absolute(settings.sensitivity_bound, min_cap);
        assert!(max_sensitivity(&ps, &cfg) <= bound_abs + 1e-6);
        // The hedged config spreads traffic, so its normal-case MLU is at
        // least the omniscient one for the same matrix.
        let realized = history.last().unwrap().clone();
        let omni = omniscient_config(&ps, &realized, SolverEngine::Lp).unwrap();
        assert!(
            max_link_utilization(&ps, &cfg, &realized)
                >= max_link_utilization(&ps, &omni, &realized) - 1e-9
        );
    }

    #[test]
    fn fault_aware_variant_avoids_failed_paths() {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let (_, history) = pod_setup();
        let scenario = random_link_failures(&g, 1, 3).unwrap();
        let cfg = fault_aware_desensitization_config(
            &ps,
            &history,
            &DesensitizationSettings::default(),
            &scenario,
            SolverEngine::Lp,
        )
        .unwrap();
        let alive = available_paths(&ps, &scenario);
        for p in 0..ps.num_paths() {
            if !alive[p] {
                assert_eq!(cfg.ratio(p), 0.0);
            }
        }
    }

    #[test]
    fn heuristic_bounds_follow_the_variance_ordering() {
        let variances = vec![5.0, 1.0, 3.0, 10.0];
        let linear = heuristic_bounds(&variances, HeuristicBound::Linear { min: 0.4, max: 1.0 });
        // Most stable pair (index 1) gets the loosest bound, most bursty
        // (index 3) the tightest.
        assert!((linear[1] - 1.0).abs() < 1e-12);
        assert!((linear[3] - 0.4).abs() < 1e-12);
        assert!(linear[0] > linear[3] && linear[0] < linear[1]);
        let piecewise = heuristic_bounds(
            &variances,
            HeuristicBound::Piecewise { min: 0.5, max: 0.9, breakpoint: 0.5 },
        );
        assert_eq!(piecewise[1], 0.9);
        assert_eq!(piecewise[3], 0.5);
        assert!(heuristic_bounds(&[], HeuristicBound::Linear { min: 0.1, max: 1.0 }).is_empty());
    }

    #[test]
    fn fine_grained_heuristic_improves_normal_case_over_uniform_cap() {
        let (ps, history) = pod_setup();
        // Make one pair clearly bursty and the rest stable.
        let mut variances = vec![1.0; ps.num_pairs()];
        variances[0] = 100.0;
        let uniform = desensitization_config(
            &ps,
            &history,
            &DesensitizationSettings { sensitivity_bound: 0.5, predictor: Predictor::WindowPeak },
            SolverEngine::Lp,
        )
        .unwrap();
        let fine = heuristic_fine_grained_config(
            &ps,
            &history,
            &variances,
            HeuristicBound::Piecewise { min: 0.5, max: 1.0, breakpoint: 0.9 },
            SolverEngine::Lp,
        )
        .unwrap();
        let realized = history.last().unwrap().clone();
        let d = realized.flatten_pairs();
        let mlu_uniform = max_link_utilization_pairs(&ps, &uniform, &d);
        let mlu_fine = max_link_utilization_pairs(&ps, &fine, &d);
        assert!(
            mlu_fine <= mlu_uniform + 1e-9,
            "relaxing stable pairs must not hurt the normal case ({mlu_fine} vs {mlu_uniform})"
        );
    }
}
