//! # figret-solvers
//!
//! The LP/gradient-based TE baselines the paper compares FIGRET against
//! (§5.1), all built on the `figret-lp` simplex and the differentiable TE
//! expressions of `figret-te`:
//!
//! * [`schemes::omniscient_config`] — the normalizer of every quality figure;
//! * [`schemes::prediction_config`] — demand-prediction-based TE;
//! * [`schemes::desensitization_config`] — Google Jupiter's hedging (Des TE),
//!   plus its fault-aware variant and the heuristic fine-grained variant of
//!   Appendix C;
//! * [`oblivious::oblivious_config`] / [`oblivious::cope_config`] — worst-case
//!   schemes over a hose uncertainty set (substitution documented in
//!   DESIGN.md §5);
//! * [`engine`] — the shared min-MLU engines (exact LP and iterative).
//!
//! # Example
//!
//! ```
//! use figret_topology::{Topology, TopologySpec};
//! use figret_traffic::DemandMatrix;
//! use figret_te::{max_link_utilization, PathSet};
//! use figret_solvers::{omniscient_config, SolverEngine};
//!
//! let pod = TopologySpec::full_scale(Topology::MetaDbPod).build();
//! let paths = PathSet::k_shortest(&pod, 3);
//! let mut demand = DemandMatrix::zeros(4);
//! demand.set(0, 1, 80.0);
//! demand.set(2, 3, 40.0);
//! let config = omniscient_config(&paths, &demand, SolverEngine::Lp).unwrap();
//! assert!(max_link_utilization(&paths, &config, &demand) <= 0.81);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod oblivious;
pub mod schemes;
pub mod template;

pub use engine::{
    normalized_bound_to_absolute, solve_iterative, solve_lp, solve_min_mlu, IterativeSettings,
    MluProblem, SolveError, SolverEngine, AUTO_LP_PATH_LIMIT,
};
pub use oblivious::{
    cope_config, oblivious_config, worst_case_demand, CopeSettings, CuttingPlaneSettings,
    HoseModel, ObliviousResult,
};
pub use schemes::{
    desensitization_bounds, desensitization_config, fault_aware_desensitization_config,
    heuristic_absolute_bounds, heuristic_bounds, heuristic_fine_grained_config, omniscient_config,
    predict, prediction_config, DesensitizationSettings, HeuristicBound, Predictor,
    HEURISTIC_PREDICTOR,
};
pub use template::{MluTemplate, RestrictedMluTemplate, SeriesStats};

#[cfg(test)]
mod proptests {
    use super::*;
    use figret_te::{max_link_utilization_pairs, PathSet, TeConfig};
    use figret_topology::{Graph, NodeId};
    use proptest::prelude::*;

    fn ring_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_bidirectional(NodeId(i), NodeId((i + 1) % n), 10.0).unwrap();
            let j = (i + 2) % n;
            if !g.has_edge(NodeId(i), NodeId(j)) {
                g.add_bidirectional(NodeId(i), NodeId(j), 20.0).unwrap();
            }
        }
        g
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The omniscient LP must never be beaten by any ad-hoc configuration.
        #[test]
        fn omniscient_lp_is_a_lower_bound(
            n in 4usize..6,
            demand_scale in 1.0f64..50.0,
            raw in proptest::collection::vec(0.0f64..1.0, 200),
        ) {
            let g = ring_graph(n);
            let ps = PathSet::k_shortest(&g, 3);
            let demand: Vec<f64> = (0..ps.num_pairs()).map(|i| demand_scale * ((i % 5) as f64 + 1.0)).collect();
            let dm = figret_traffic::DemandMatrix::from_pairs(n, &demand).unwrap();
            let omni = omniscient_config(&ps, &dm, SolverEngine::Lp).unwrap();
            let omni_mlu = max_link_utilization_pairs(&ps, &omni, &demand);
            // Compare against an arbitrary valid configuration.
            let mut padded = raw.clone();
            padded.resize(ps.num_paths(), 0.5);
            let other = TeConfig::from_raw(&ps, &padded);
            let other_mlu = max_link_utilization_pairs(&ps, &other, &demand);
            prop_assert!(omni_mlu <= other_mlu + 1e-6,
                "omniscient {} beaten by arbitrary config {}", omni_mlu, other_mlu);
            // And against uniform / shortest-path.
            for cfg in [TeConfig::uniform(&ps), TeConfig::shortest_path(&ps)] {
                prop_assert!(omni_mlu <= max_link_utilization_pairs(&ps, &cfg, &demand) + 1e-6);
            }
        }
    }
}
