//! Warm-started min-MLU templates for snapshot series.
//!
//! Every LP-based scheme evaluated over a trace (omniscient TE, prediction
//! TE, desensitization TE) solves one min-MLU program *per snapshot*, and
//! consecutive programs differ only in the demand values: the path set, the
//! conservation rows, the sensitivity bounds and the availability mask are
//! all fixed for the series.  [`MluTemplate`] builds the program structure
//! once per (path set, bounds, availability) — the demand-dependent
//! coefficients are registered as [`figret_lp::CoeffHandle`]s, including the
//! explicit zeros of currently-silent pairs so the sparsity pattern never
//! changes — and each snapshot re-solve rewrites those values in place and
//! warm starts from the previous snapshot's optimal basis
//! ([`figret_lp::LpTemplate`]).  A series of `T` snapshots costs one cold
//! solve plus `T − 1` warm re-solves (typically a few pivots each, since
//! consecutive demand matrices are highly similar — the paper's Figure 4).
//!
//! Results are bit-identical in objective to [`crate::solve_lp`] on the same
//! instance up to solver tolerance: the template formulation only adds
//! explicitly stored zero coefficients, which do not change the feasible set.

use figret_lp::{CoeffHandle, Direction, LinearProgram, LpTemplate, Relation, SolveStats};
use figret_te::{available_paths, PathSet, TeConfig};
use figret_topology::FailureScenario;
use figret_traffic::ActivePairs;

use crate::engine::{apply_availability, MluProblem, SolveError};
use crate::schemes::{
    desensitization_bounds, heuristic_absolute_bounds, DesensitizationSettings, HeuristicBound,
};

/// A min-MLU program whose structure is built once and re-solved per snapshot
/// with warm starts; see the module docs.
#[derive(Debug)]
pub struct MluTemplate {
    template: LpTemplate,
    /// One entry per demand-dependent coefficient: the handle of path `p`'s
    /// coefficient in an edge row, and the SD pair whose demand feeds it.
    demand_entries: Vec<(CoeffHandle, usize)>,
    ratio_vars: Vec<usize>,
    num_pairs: usize,
    available: Option<Vec<bool>>,
}

impl MluTemplate {
    /// A plain min-MLU template (no sensitivity bounds, all paths available):
    /// the omniscient / prediction-TE series.
    pub fn new(paths: &PathSet) -> MluTemplate {
        MluTemplate::with_options(paths, None, None)
    }

    /// Template for a desensitization-TE series — bound policy taken from
    /// [`crate::schemes::desensitization_bounds`], so the series and the
    /// one-shot [`crate::schemes::desensitization_config`] always agree.
    pub fn for_desensitization(paths: &PathSet, settings: &DesensitizationSettings) -> MluTemplate {
        MluTemplate::with_options(paths, Some(desensitization_bounds(paths, settings)), None)
    }

    /// Template for a fault-aware desensitization-TE series (matches
    /// [`crate::schemes::fault_aware_desensitization_config`]).
    pub fn for_fault_aware_desensitization(
        paths: &PathSet,
        settings: &DesensitizationSettings,
        scenario: &FailureScenario,
    ) -> MluTemplate {
        MluTemplate::with_options(
            paths,
            Some(desensitization_bounds(paths, settings)),
            Some(available_paths(paths, scenario)),
        )
    }

    /// Template for an Appendix C heuristic fine-grained series (matches
    /// [`crate::schemes::heuristic_fine_grained_config`]; optimize for
    /// [`crate::schemes::HEURISTIC_PREDICTOR`] demands).
    pub fn for_heuristic_fine_grained(
        paths: &PathSet,
        variances: &[f64],
        heuristic: HeuristicBound,
    ) -> MluTemplate {
        MluTemplate::with_options(
            paths,
            Some(heuristic_absolute_bounds(paths, variances, heuristic)),
            None,
        )
    }

    /// Builds the template with the series-static options: optional per-pair
    /// sensitivity bounds (absolute units, as in
    /// [`MluProblem::with_sensitivity_bounds`]) and an optional path
    /// availability mask.  The bound relaxation matches [`crate::solve_lp`].
    pub fn with_options(
        paths: &PathSet,
        sensitivity_bounds: Option<Vec<f64>>,
        available: Option<Vec<bool>>,
    ) -> MluTemplate {
        // Reuse MluProblem's feasibility relaxation so template and one-shot
        // solves agree exactly; the dummy demand never reaches the LP.
        let mut probe = MluProblem::new(paths, vec![0.0; paths.num_pairs()]);
        probe.sensitivity_bounds = sensitivity_bounds;
        probe.available = available.clone();
        let bounds = probe.feasible_bounds();

        let mut lp = LinearProgram::new(Direction::Minimize);
        let theta = lp.add_variable(1.0);
        let ratio_vars: Vec<usize> = (0..paths.num_paths()).map(|_| lp.add_variable(0.0)).collect();

        // Per-pair conservation over the available paths.
        for pair in 0..paths.num_pairs() {
            let coeffs: Vec<(usize, f64)> = paths
                .paths_of_pair(pair)
                .filter(|&p| probe.is_available(p))
                .map(|p| (ratio_vars[p], 1.0))
                .collect();
            if coeffs.is_empty() {
                continue;
            }
            lp.add_constraint(coeffs, Relation::Equal, 1.0);
        }
        // Failed paths carry nothing.
        for p in 0..paths.num_paths() {
            if !probe.is_available(p) {
                lp.add_constraint(vec![(ratio_vars[p], 1.0)], Relation::LessEq, 0.0);
            }
        }
        // Edge rows: every available path on the edge appears with an
        // explicit (initially zero) demand coefficient so the pattern covers
        // any demand matrix; the capacity coefficient on theta is static.
        // `(row, path)` pairs are recorded to resolve handles after `lp` is
        // frozen into the template.
        let mut edge_rows: Vec<(usize, usize)> = Vec::new();
        for e in 0..paths.num_edges() {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            let mut row_paths: Vec<usize> = Vec::new();
            for &p in paths.paths_on_edge(e) {
                if probe.is_available(p) {
                    coeffs.push((ratio_vars[p], 0.0));
                    row_paths.push(p);
                }
            }
            if coeffs.is_empty() {
                continue;
            }
            coeffs.push((theta, -paths.edge_capacities()[e]));
            let row = lp.num_constraints();
            lp.add_constraint(coeffs, Relation::LessEq, 0.0);
            edge_rows.extend(row_paths.into_iter().map(|p| (row, p)));
        }
        // Sensitivity bounds: r_p <= bound(pair) * C_p where binding.
        if let Some(bounds) = bounds {
            for p in 0..paths.num_paths() {
                if !probe.is_available(p) {
                    continue;
                }
                let pair = paths.pair_of_path(p);
                let limit = bounds[pair] * paths.path_capacity(p);
                if limit < 1.0 {
                    lp.add_constraint(vec![(ratio_vars[p], 1.0)], Relation::LessEq, limit);
                }
            }
        }

        let template = LpTemplate::new(lp);
        let demand_entries: Vec<(CoeffHandle, usize)> = edge_rows
            .into_iter()
            .map(|(row, p)| {
                let handle = template
                    .coefficient(row, ratio_vars[p])
                    .expect("edge-row coefficients are stored by construction");
                (handle, paths.pair_of_path(p))
            })
            .collect();
        MluTemplate {
            template,
            demand_entries,
            ratio_vars,
            num_pairs: paths.num_pairs(),
            available,
        }
    }

    /// Solves the template for one demand matrix (`flatten_pairs` order),
    /// warm starting from the previous snapshot's basis when available.
    /// Returns the split-ratio configuration plus the solve's counters
    /// (`stats.warm_started` reports whether the seed was accepted).
    pub fn solve(
        &mut self,
        paths: &PathSet,
        demand_pairs: &[f64],
    ) -> Result<(TeConfig, SolveStats), SolveError> {
        assert_eq!(demand_pairs.len(), self.num_pairs, "one demand per SD pair is required");
        for &(handle, pair) in &self.demand_entries {
            self.template.set_coefficient(handle, demand_pairs[pair].max(0.0));
        }
        let solution = self.template.solve().map_err(SolveError::Lp)?;
        let raw: Vec<f64> = self.ratio_vars.iter().map(|&v| solution.values[v]).collect();
        let config = apply_availability(paths, raw, self.available.as_deref());
        Ok((config, solution.stats))
    }

    /// Whether the next solve will attempt a warm start.
    pub fn has_warm_basis(&self) -> bool {
        self.template.has_warm_basis()
    }

    /// Drops the stored basis, forcing the next solve to run cold.
    pub fn clear_basis(&mut self) {
        self.template.clear_basis();
    }

    /// Builds a min-MLU template restricted to the active pairs of a sparse
    /// demand universe: the program has one ratio variable per path of an
    /// *active* pair only, so on a 1% dense fabric the LP is ~1% of the dense
    /// program.  Demands supported on the active pairs yield the same optimal
    /// MLU as the full program (inactive pairs route zero traffic either
    /// way); solved configurations are expanded back onto the full path set
    /// with a uniform split on inactive pairs.
    pub fn restricted(paths: &PathSet, active: &ActivePairs) -> RestrictedMluTemplate {
        let (sub, path_map) = paths.restrict_to(active);
        let fallback = TeConfig::uniform(paths).ratios().to_vec();
        RestrictedMluTemplate { inner: MluTemplate::new(&sub), sub, path_map, fallback }
    }
}

/// An [`MluTemplate`] over the restricted pair universe of an
/// [`ActivePairs`] index; see [`MluTemplate::restricted`].
#[derive(Debug)]
pub struct RestrictedMluTemplate {
    inner: MluTemplate,
    /// The restricted path set the program is built over.
    sub: PathSet,
    /// Restricted global path index -> full-universe global path index.
    path_map: Vec<usize>,
    /// Full-universe ratios used for pairs outside the restricted program.
    fallback: Vec<f64>,
}

impl RestrictedMluTemplate {
    /// Solves for one sparse demand column (`values` in slot order of the
    /// `ActivePairs` the template was built with) and returns the
    /// full-universe configuration plus solve counters.  Warm starts behave
    /// exactly as in [`MluTemplate::solve`].
    pub fn solve(&mut self, demand_values: &[f64]) -> Result<(TeConfig, SolveStats), SolveError> {
        let (sub_config, stats) = self.inner.solve(&self.sub, demand_values)?;
        let mut ratios = self.fallback.clone();
        for (sub_pi, &full_pi) in self.path_map.iter().enumerate() {
            ratios[full_pi] = sub_config.ratio(sub_pi);
        }
        let config = TeConfig::from_ratios_unchecked(ratios);
        Ok((config, stats))
    }

    /// The restricted path set the program was built over.
    pub fn restricted_paths(&self) -> &PathSet {
        &self.sub
    }

    /// Whether the next solve will attempt a warm start.
    pub fn has_warm_basis(&self) -> bool {
        self.inner.has_warm_basis()
    }

    /// Drops the stored basis, forcing the next solve to run cold.
    pub fn clear_basis(&mut self) {
        self.inner.clear_basis();
    }
}

/// Accumulated solver-work counters over a series of template (or one-shot)
/// solves, threaded into the evaluation reports.  Callers that abandon the
/// template path mid-series (e.g. eval's parallel fallback when no warm seed
/// is accepted) record only the solves that ran through the template.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SeriesStats {
    /// Number of LP solves recorded.
    pub solves: usize,
    /// How many of them ran from an accepted warm basis.
    pub warm_solves: usize,
    /// Summed per-solve counters (pivots per phase, reinversions).
    pub totals: SolveStats,
}

impl SeriesStats {
    /// Records one solve.
    pub fn record(&mut self, stats: &SolveStats) {
        self.solves += 1;
        if stats.warm_started {
            self.warm_solves += 1;
        }
        self.totals.absorb(stats);
    }

    /// Merges another accumulator (parallel shards).
    pub fn merge(&mut self, other: &SeriesStats) {
        self.solves += other.solves;
        self.warm_solves += other.warm_solves;
        self.totals.absorb(&other.totals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{solve_min_mlu, SolverEngine};
    use crate::schemes::{desensitization_config, DesensitizationSettings};
    use figret_te::{available_paths, max_link_utilization_pairs};
    use figret_topology::{random_link_failures, Topology, TopologySpec};
    use figret_traffic::DemandMatrix;

    fn pod_paths() -> PathSet {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        PathSet::k_shortest(&g, 3)
    }

    fn demand_series(ps: &PathSet, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|t| {
                (0..ps.num_pairs())
                    .map(|i| 10.0 + 3.0 * (((t + i) % 5) as f64) + t as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn template_matches_one_shot_lp_across_a_series() {
        let ps = pod_paths();
        let mut template = MluTemplate::new(&ps);
        let mut stats = SeriesStats::default();
        for (t, demand) in demand_series(&ps, 6).iter().enumerate() {
            let (config, solve_stats) = template.solve(&ps, demand).unwrap();
            stats.record(&solve_stats);
            let one_shot =
                solve_min_mlu(&MluProblem::new(&ps, demand.clone()), SolverEngine::Lp).unwrap();
            let a = max_link_utilization_pairs(&ps, &config, demand);
            let b = max_link_utilization_pairs(&ps, &one_shot, demand);
            assert!((a - b).abs() < 1e-6, "snapshot {t}: template {a} vs one-shot {b}");
        }
        assert_eq!(stats.solves, 6);
        assert!(stats.warm_solves >= 4, "most re-solves must warm start ({stats:?})");
        assert_eq!(
            stats.totals.iterations,
            stats.totals.phase1_iterations + stats.totals.phase2_iterations
        );
    }

    #[test]
    fn warm_resolves_do_less_work_than_cold() {
        let ps = pod_paths();
        let series = demand_series(&ps, 5);
        let mut template = MluTemplate::new(&ps);
        let (_, cold) = template.solve(&ps, &series[0]).unwrap();
        assert!(!cold.warm_started);
        let mut warm_pivots = 0usize;
        for demand in &series[1..] {
            let (_, s) = template.solve(&ps, demand).unwrap();
            assert!(s.warm_started);
            warm_pivots = warm_pivots.max(s.iterations);
        }
        // On a pod-sized instance the crash-started cold solve is itself only
        // a handful of pivots, so "fewer than cold" is not meaningful; what
        // matters is that every warm re-solve stays a small constant amount
        // of work instead of re-running a full solve.
        assert!(
            warm_pivots <= cold.iterations + 16,
            "warm re-solves ({warm_pivots} pivots) must stay near the cold solve ({})",
            cold.iterations
        );
    }

    #[test]
    fn template_with_bounds_matches_desensitization_config() {
        let ps = pod_paths();
        let history: Vec<DemandMatrix> = (0..4)
            .map(|t| {
                let mut d = DemandMatrix::zeros(4);
                for s in 0..4 {
                    for dd in 0..4 {
                        if s != dd {
                            d.set(s, dd, 15.0 + 4.0 * ((t + s * dd) % 3) as f64);
                        }
                    }
                }
                d
            })
            .collect();
        let settings = DesensitizationSettings::default();
        let mut template = MluTemplate::for_desensitization(&ps, &settings);
        let predicted = crate::predict(&history, settings.predictor);
        let (config, _) = template.solve(&ps, &predicted.flatten_pairs()).unwrap();
        let reference = desensitization_config(&ps, &history, &settings, SolverEngine::Lp).unwrap();
        let d = history.last().unwrap().flatten_pairs();
        let a = max_link_utilization_pairs(&ps, &config, &d);
        let b = max_link_utilization_pairs(&ps, &reference, &d);
        assert!((a - b).abs() < 1e-6, "template {a} vs desensitization_config {b}");
    }

    #[test]
    fn template_with_availability_pins_failed_paths() {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let scenario = random_link_failures(&g, 1, 5).unwrap();
        let alive = available_paths(&ps, &scenario);
        let mut template = MluTemplate::with_options(&ps, None, Some(alive.clone()));
        let demand = demand_series(&ps, 1).remove(0);
        let (config, _) = template.solve(&ps, &demand).unwrap();
        for p in 0..ps.num_paths() {
            if !alive[p] {
                assert_eq!(config.ratio(p), 0.0, "failed path {p} must carry nothing");
            }
        }
    }

    #[test]
    fn restricted_template_matches_the_full_program_within_1e9() {
        use figret_topology::Topology as T;
        use figret_traffic::{ActivePairs, SparseDemand};
        use std::sync::Arc;

        let g = TopologySpec::full_scale(T::Geant).build();
        let ps = PathSet::k_shortest(&g, 3);
        let active = Arc::new(ActivePairs::sample_per_source(g.num_nodes(), 4, 29));
        let mut base = SparseDemand::zeros(Arc::clone(&active));
        for (slot, s, d) in active.iter() {
            base.set_slot(slot, 5.0 + ((s * 13 + d * 3) % 11) as f64);
        }

        let mut full = MluTemplate::new(&ps);
        let mut restricted = MluTemplate::restricted(&ps, &active);
        assert!(restricted.restricted_paths().num_pairs() == active.len());
        for scale in [1.0, 1.08, 0.93] {
            let col = base.scaled(scale);
            let mut dense_pairs = vec![0.0; ps.num_pairs()];
            col.scatter_pairs_into(&mut dense_pairs);
            let (cfg_full, _) = full.solve(&ps, &dense_pairs).unwrap();
            let (cfg_restricted, _) = restricted.solve(col.values()).unwrap();
            let a = max_link_utilization_pairs(&ps, &cfg_full, &dense_pairs);
            let b = max_link_utilization_pairs(&ps, &cfg_restricted, &dense_pairs);
            assert!((a - b).abs() < 1e-9, "full {a} vs restricted {b}");
            // The expanded configuration is valid over the full path set.
            assert!(cfg_restricted.is_valid(&ps));
        }
        assert!(restricted.has_warm_basis(), "re-solves must reuse the basis");
    }

    #[test]
    fn zero_demand_snapshots_are_handled() {
        let ps = pod_paths();
        let mut template = MluTemplate::new(&ps);
        let zeros = vec![0.0; ps.num_pairs()];
        let (config, _) = template.solve(&ps, &zeros).unwrap();
        let mlu = max_link_utilization_pairs(&ps, &config, &zeros);
        assert!(mlu.abs() < 1e-9);
        // And a normal demand right after.
        let demand = demand_series(&ps, 1).remove(0);
        let (config, _) = template.solve(&ps, &demand).unwrap();
        assert!(max_link_utilization_pairs(&ps, &config, &demand).is_finite());
    }
}
