//! Demand-oblivious TE and COPE.
//!
//! The paper's oblivious baseline [Applegate & Cohen] optimizes the worst-case
//! MLU over *all* traffic demands, and COPE [Wang et al.] optimizes over a set
//! of predicted demands while retaining a worst-case guarantee.  With a fixed
//! candidate-path set and a completely unbounded demand space the worst case
//! is degenerate, so — as is standard practice and documented in DESIGN.md §5 —
//! we bound demands with a **hose model** fitted from the training trace
//! (per-node ingress/egress totals) and solve both schemes with a
//! cutting-plane loop:
//!
//! 1. solve the routing LP for the current finite set of adversarial demands;
//! 2. for the resulting routing, find the hose-feasible demand that maximizes
//!    the utilization of each edge (a small transportation LP per edge) and add
//!    the worst one to the set;
//! 3. repeat until the adversary can no longer raise the MLU (or an iteration
//!    cap is hit).
//!
//! Both schemes pre-compute a single static configuration, exactly like in the
//! paper ("Oblivious & COPE ... precompute TE solutions but do not update them
//! thereafter", Table 2).

use figret_lp::{Direction, LinearProgram, Relation};
use figret_te::{max_link_utilization_pairs, PathSet, TeConfig};
use figret_traffic::TrafficTrace;

use crate::engine::{solve_min_mlu, MluProblem, SolveError, SolverEngine};

/// A hose uncertainty set: per-node egress and ingress caps.
#[derive(Debug, Clone, PartialEq)]
pub struct HoseModel {
    /// Maximum total traffic each node may send.
    pub egress: Vec<f64>,
    /// Maximum total traffic each node may receive.
    pub ingress: Vec<f64>,
}

impl HoseModel {
    /// Fits the hose caps from a trace range: the caps are the observed maxima
    /// of each node's row/column sums, scaled by `headroom` (≥ 1) to leave
    /// room for unseen bursts.
    pub fn fit(trace: &TrafficTrace, range: std::ops::Range<usize>, headroom: f64) -> HoseModel {
        assert!(headroom >= 1.0, "headroom must be at least 1");
        let n = trace.num_nodes();
        let mut egress = vec![0.0f64; n];
        let mut ingress = vec![0.0f64; n];
        for t in range {
            let m = trace.matrix(t);
            for s in 0..n {
                let row: f64 = (0..n).map(|d| m.get(s, d)).sum();
                egress[s] = egress[s].max(row);
            }
            for d in 0..n {
                let col: f64 = (0..n).map(|s| m.get(s, d)).sum();
                ingress[d] = ingress[d].max(col);
            }
        }
        for v in egress.iter_mut().chain(ingress.iter_mut()) {
            *v *= headroom;
        }
        HoseModel { egress, ingress }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.egress.len()
    }

    /// A uniform hose-feasible demand matrix (each pair gets an equal share of
    /// the tighter of its endpoints' caps); used to seed the cutting plane.
    pub fn seed_demand(&self, paths: &PathSet) -> Vec<f64> {
        let n = self.num_nodes();
        let mut demand = vec![0.0; paths.num_pairs()];
        for (i, &(s, d)) in paths.pairs().iter().enumerate() {
            let share = (self.egress[s.index()] / (n - 1) as f64)
                .min(self.ingress[d.index()] / (n - 1) as f64);
            demand[i] = share;
        }
        demand
    }
}

/// For a fixed routing, the hose-feasible demand that maximizes the MLU, and
/// that maximum.  Returns `None` when the hose caps are all zero.
pub fn worst_case_demand(
    paths: &PathSet,
    config: &TeConfig,
    hose: &HoseModel,
) -> Option<(f64, Vec<f64>)> {
    let n = hose.num_nodes();
    let mut best: Option<(f64, Vec<f64>)> = None;
    for e in 0..paths.num_edges() {
        // Coefficient of each pair's demand in this edge's utilization.
        let mut coeff = vec![0.0f64; paths.num_pairs()];
        for &p in paths.paths_on_edge(e) {
            coeff[paths.pair_of_path(p)] += config.ratio(p);
        }
        let capacity = paths.edge_capacities()[e];
        if coeff.iter().all(|c| *c == 0.0) {
            continue;
        }
        // max  (1/capacity) Σ coeff_i d_i  s.t. hose constraints.
        let mut lp = LinearProgram::new(Direction::Maximize);
        let vars: Vec<usize> =
            (0..paths.num_pairs()).map(|i| lp.add_variable(coeff[i] / capacity)).collect();
        for node in 0..n {
            let egress_coeffs: Vec<(usize, f64)> = paths
                .pairs()
                .iter()
                .enumerate()
                .filter(|(_, (s, _))| s.index() == node)
                .map(|(i, _)| (vars[i], 1.0))
                .collect();
            if !egress_coeffs.is_empty() {
                lp.add_constraint(egress_coeffs, Relation::LessEq, hose.egress[node]);
            }
            let ingress_coeffs: Vec<(usize, f64)> = paths
                .pairs()
                .iter()
                .enumerate()
                .filter(|(_, (_, d))| d.index() == node)
                .map(|(i, _)| (vars[i], 1.0))
                .collect();
            if !ingress_coeffs.is_empty() {
                lp.add_constraint(ingress_coeffs, Relation::LessEq, hose.ingress[node]);
            }
        }
        let solution = match figret_lp::solve(&lp) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let util = solution.objective_value;
        let demand: Vec<f64> = vars.iter().map(|&v| solution.values[v]).collect();
        if best.as_ref().map(|(b, _)| util > *b).unwrap_or(true) {
            best = Some((util, demand));
        }
    }
    best
}

/// Settings of the cutting-plane loop.
#[derive(Debug, Clone, Copy)]
pub struct CuttingPlaneSettings {
    /// Maximum number of adversary rounds.
    pub max_rounds: usize,
    /// Stop when the adversary cannot raise the MLU by more than this factor.
    pub tolerance: f64,
}

impl Default for CuttingPlaneSettings {
    fn default() -> Self {
        CuttingPlaneSettings { max_rounds: 6, tolerance: 0.01 }
    }
}

/// Result of the oblivious precomputation.
#[derive(Debug, Clone)]
pub struct ObliviousResult {
    /// The precomputed static configuration.
    pub config: TeConfig,
    /// The worst-case MLU of that configuration over the hose set.
    pub worst_case_mlu: f64,
    /// Number of cutting-plane rounds performed.
    pub rounds: usize,
}

/// Demand-oblivious TE: minimize the worst-case MLU over the hose set.
pub fn oblivious_config(
    paths: &PathSet,
    hose: &HoseModel,
    settings: CuttingPlaneSettings,
) -> Result<ObliviousResult, SolveError> {
    let mut demand_set: Vec<Vec<f64>> = vec![hose.seed_demand(paths)];
    let mut config = TeConfig::uniform(paths);
    let mut rounds = 0;
    for round in 0..settings.max_rounds {
        rounds = round + 1;
        let mut problem = MluProblem::new(paths, demand_set[0].clone());
        problem.demands = demand_set.clone();
        config = solve_min_mlu(&problem, SolverEngine::Lp)?;
        let current = demand_set
            .iter()
            .map(|d| max_link_utilization_pairs(paths, &config, d))
            .fold(0.0f64, f64::max);
        match worst_case_demand(paths, &config, hose) {
            Some((worst, demand)) => {
                if worst <= current * (1.0 + settings.tolerance) {
                    return Ok(ObliviousResult { config, worst_case_mlu: worst, rounds });
                }
                demand_set.push(demand);
            }
            None => break,
        }
    }
    let worst = worst_case_demand(paths, &config, hose).map(|(w, _)| w).unwrap_or(0.0);
    Ok(ObliviousResult { config, worst_case_mlu: worst, rounds })
}

/// COPE settings.
#[derive(Debug, Clone, Copy)]
pub struct CopeSettings {
    /// Worst-case penalty ratio β: the configuration's hose worst case must
    /// stay below `β ×` the oblivious optimum (the paper's "worst-case
    /// performance guarantee").
    pub penalty_ratio: f64,
    /// Cutting-plane settings shared with the oblivious precomputation.
    pub cutting_plane: CuttingPlaneSettings,
}

impl Default for CopeSettings {
    fn default() -> Self {
        CopeSettings { penalty_ratio: 1.3, cutting_plane: CuttingPlaneSettings::default() }
    }
}

/// COPE: optimize the MLU over a set of predicted demands while keeping the
/// hose worst case within `β ×` the oblivious optimum.
pub fn cope_config(
    paths: &PathSet,
    predicted_demands: &[Vec<f64>],
    hose: &HoseModel,
    settings: CopeSettings,
) -> Result<ObliviousResult, SolveError> {
    assert!(!predicted_demands.is_empty(), "COPE needs at least one predicted demand");
    // Worst-case budget from the oblivious optimum.
    let oblivious = oblivious_config(paths, hose, settings.cutting_plane)?;
    let budget = settings.penalty_ratio * oblivious.worst_case_mlu.max(1e-9);

    let mut adversarial: Vec<Vec<f64>> = vec![hose.seed_demand(paths)];
    let mut config = oblivious.config.clone();
    let mut rounds = 0;
    for round in 0..settings.cutting_plane.max_rounds {
        rounds = round + 1;
        let mut problem = MluProblem::new(paths, predicted_demands[0].clone());
        problem.demands = predicted_demands.to_vec();
        problem.capped_demands = adversarial.iter().map(|d| (d.clone(), budget)).collect();
        config = match solve_min_mlu(&problem, SolverEngine::Lp) {
            Ok(c) => c,
            // If the cap is too tight for the current cut set, fall back to the
            // oblivious configuration (which satisfies the budget by definition).
            Err(SolveError::Lp(figret_lp::LpError::Infeasible)) => oblivious.config.clone(),
            Err(e) => return Err(e),
        };
        match worst_case_demand(paths, &config, hose) {
            Some((worst, demand)) => {
                if worst <= budget * (1.0 + settings.cutting_plane.tolerance) {
                    return Ok(ObliviousResult { config, worst_case_mlu: worst, rounds });
                }
                adversarial.push(demand);
            }
            None => break,
        }
    }
    let worst = worst_case_demand(paths, &config, hose).map(|(w, _)| w).unwrap_or(0.0);
    Ok(ObliviousResult { config, worst_case_mlu: worst, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_topology::{Topology, TopologySpec};
    use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
    use figret_traffic::DemandMatrix;

    fn setup() -> (PathSet, TrafficTrace) {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let trace = pod_trace(&g, &PodTrafficConfig { num_snapshots: 60, ..Default::default() });
        (ps, trace)
    }

    #[test]
    fn hose_model_bounds_every_training_matrix() {
        let (_ps, trace) = setup();
        let hose = HoseModel::fit(&trace, 0..trace.len(), 1.0);
        for m in trace.matrices() {
            for s in 0..trace.num_nodes() {
                let row: f64 = (0..trace.num_nodes()).map(|d| m.get(s, d)).sum();
                assert!(row <= hose.egress[s] + 1e-9);
            }
        }
        let with_headroom = HoseModel::fit(&trace, 0..trace.len(), 1.5);
        assert!(with_headroom.egress[0] > hose.egress[0]);
    }

    #[test]
    fn worst_case_demand_exceeds_average_demand_mlu() {
        let (ps, trace) = setup();
        let hose = HoseModel::fit(&trace, 0..trace.len(), 1.0);
        let cfg = TeConfig::uniform(&ps);
        let (worst, demand) = worst_case_demand(&ps, &cfg, &hose).unwrap();
        assert!(worst > 0.0);
        assert_eq!(demand.len(), ps.num_pairs());
        // The adversarial demand must indeed achieve that MLU.
        let achieved = max_link_utilization_pairs(&ps, &cfg, &demand);
        assert!((achieved - worst).abs() < 1e-6);
        // And it must dominate the MLU of an ordinary training matrix.
        let ordinary = max_link_utilization_pairs(&ps, &cfg, &trace.matrix(0).flatten_pairs());
        assert!(worst >= ordinary - 1e-9);
    }

    #[test]
    fn oblivious_has_better_worst_case_than_shortest_path() {
        let (ps, trace) = setup();
        let hose = HoseModel::fit(&trace, 0..trace.len(), 1.0);
        let result = oblivious_config(&ps, &hose, CuttingPlaneSettings::default()).unwrap();
        assert!(result.rounds >= 1);
        let sp = TeConfig::shortest_path(&ps);
        let sp_worst = worst_case_demand(&ps, &sp, &hose).unwrap().0;
        assert!(
            result.worst_case_mlu <= sp_worst + 1e-6,
            "oblivious worst case {} must not exceed shortest-path worst case {sp_worst}",
            result.worst_case_mlu
        );
    }

    #[test]
    fn cope_trades_worst_case_for_average_case() {
        let (ps, trace) = setup();
        let hose = HoseModel::fit(&trace, 0..trace.len(), 1.0);
        let predicted: Vec<Vec<f64>> = (0..5).map(|t| trace.matrix(t).flatten_pairs()).collect();
        let cope = cope_config(&ps, &predicted, &hose, CopeSettings::default()).unwrap();
        let oblivious = oblivious_config(&ps, &hose, CuttingPlaneSettings::default()).unwrap();
        // COPE's worst case stays within the budget (with slack for the
        // cutting-plane tolerance).
        assert!(cope.worst_case_mlu <= 1.3 * oblivious.worst_case_mlu * 1.05 + 1e-6);
        // And its performance on the predicted demands is at least as good as
        // the oblivious configuration's.
        let avg = |cfg: &TeConfig| -> f64 {
            predicted.iter().map(|d| max_link_utilization_pairs(&ps, cfg, d)).sum::<f64>()
                / predicted.len() as f64
        };
        assert!(avg(&cope.config) <= avg(&oblivious.config) + 1e-6);
    }

    #[test]
    fn seed_demand_is_hose_feasible() {
        let (ps, trace) = setup();
        let hose = HoseModel::fit(&trace, 0..trace.len(), 1.0);
        let seed = hose.seed_demand(&ps);
        let dm = DemandMatrix::from_pairs(trace.num_nodes(), &seed).unwrap();
        for s in 0..trace.num_nodes() {
            let row: f64 = (0..trace.num_nodes()).map(|d| dm.get(s, d)).sum();
            assert!(row <= hose.egress[s] + 1e-9);
        }
    }
}
