//! Min-MLU solving engines.
//!
//! Every LP-based TE baseline in the paper reduces to the same core problem:
//! given a path set and one (or several) demand matrices, find split ratios
//! minimizing the maximum link utilization, optionally subject to per-path
//! sensitivity bounds (desensitization-based TE) and path availability
//! (fault-aware variants).  This module provides two interchangeable engines:
//!
//! * [`SolverEngine::Lp`] — the exact formulation solved with the sparse
//!   revised simplex of `figret-lp` (the substitute for Gurobi; DESIGN.md §5);
//! * [`SolverEngine::Iterative`] — a projected-gradient solver on the smooth
//!   MLU surrogate (`logsumexp`), which scales to the very large topologies
//!   where even a sparse simplex becomes impractical.  The problem is convex,
//!   so with enough iterations the result is near-optimal.
//!
//! [`SolverEngine::Auto`] picks the LP for small and medium instances and the
//! iterative engine otherwise, mirroring how the paper restricts its heaviest
//! baselines to the smaller topologies.  Snapshot *series* should prefer
//! [`crate::template::MluTemplate`], which builds the LP structure once and
//! warm starts every re-solve from the previous optimum's basis.

use figret_lp::{Direction, LinearProgram, LpError, Relation};
use figret_nn::{Adam, AdamConfig, Graph, Optimizer, Tensor};
use figret_te::{DiffTe, MluAggregation, PathSet, TeConfig};

/// Which engine to use for a min-MLU instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverEngine {
    /// Exact dense-simplex LP.
    Lp,
    /// Projected-gradient (Adam on a smooth MLU surrogate).
    Iterative(IterativeSettings),
    /// LP when the instance has at most [`AUTO_LP_PATH_LIMIT`] paths,
    /// iterative otherwise.
    Auto,
}

/// Instances with at most this many candidate paths use the LP under
/// [`SolverEngine::Auto`].
///
/// Calibration: the dense tableau solver could afford ~2000 paths; the sparse
/// revised simplex solves the same ToR-scale programs ≥5× faster cold (and
/// another ≥10× when warm started through [`crate::template::MluTemplate`]),
/// so the crossover against the iterative engine moved outward — see
/// BENCH_pr4.json and DESIGN.md §5.
pub const AUTO_LP_PATH_LIMIT: usize = 6000;

impl SolverEngine {
    /// Whether this engine solves an instance with the exact LP (`true`) or
    /// the iterative surrogate (`false`).  Capped demand matrices are only
    /// expressible in the LP, so they force the LP under [`SolverEngine::Auto`].
    pub fn uses_lp(&self, num_paths: usize, has_capped_demands: bool) -> bool {
        match self {
            SolverEngine::Lp => true,
            SolverEngine::Iterative(_) => false,
            SolverEngine::Auto => has_capped_demands || num_paths <= AUTO_LP_PATH_LIMIT,
        }
    }
}

/// Hyper-parameters of the iterative engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeSettings {
    /// Number of Adam steps.
    pub iterations: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight of the quadratic penalty enforcing sensitivity bounds.
    pub bound_penalty: f64,
}

impl Default for IterativeSettings {
    fn default() -> Self {
        IterativeSettings { iterations: 500, learning_rate: 0.05, bound_penalty: 50.0 }
    }
}

/// A min-MLU problem instance.
#[derive(Debug, Clone)]
pub struct MluProblem<'a> {
    /// Candidate paths.
    pub paths: &'a PathSet,
    /// Demands to optimize for (one per SD pair, `flatten_pairs` order).  The
    /// objective is the worst MLU over all of these matrices; most schemes
    /// pass exactly one.
    pub demands: Vec<Vec<f64>>,
    /// Optional per-pair upper bound on the sensitivity of every path serving
    /// that pair (`S_p = r_p / C_p ≤ bound`), in **absolute** capacity units.
    pub sensitivity_bounds: Option<Vec<f64>>,
    /// Optional per-path availability mask (`false` = path failed and must
    /// carry no traffic).
    pub available: Option<Vec<bool>>,
    /// Additional demand matrices whose MLU must stay below a fixed cap
    /// (used by COPE's worst-case guarantee): `(demand, cap)`.
    pub capped_demands: Vec<(Vec<f64>, f64)>,
}

impl<'a> MluProblem<'a> {
    /// A plain single-demand instance.
    pub fn new(paths: &'a PathSet, demand_pairs: Vec<f64>) -> MluProblem<'a> {
        assert_eq!(demand_pairs.len(), paths.num_pairs(), "one demand per SD pair is required");
        MluProblem {
            paths,
            demands: vec![demand_pairs],
            sensitivity_bounds: None,
            available: None,
            capped_demands: Vec::new(),
        }
    }

    /// Adds per-pair sensitivity bounds (absolute units, see
    /// [`normalized_bound_to_absolute`]).
    pub fn with_sensitivity_bounds(mut self, bounds: Vec<f64>) -> Self {
        assert_eq!(bounds.len(), self.paths.num_pairs(), "one bound per SD pair is required");
        self.sensitivity_bounds = Some(bounds);
        self
    }

    /// Restricts the usable paths.
    pub fn with_available(mut self, available: Vec<bool>) -> Self {
        assert_eq!(available.len(), self.paths.num_paths(), "one flag per path is required");
        self.available = Some(available);
        self
    }

    pub(crate) fn is_available(&self, path: usize) -> bool {
        self.available.as_ref().map(|a| a[path]).unwrap_or(true)
    }

    /// Loosens the per-pair bounds just enough that a feasible split exists
    /// (`Σ_p min(1, bound · C_p) ≥ 1` over the available paths of each pair).
    pub(crate) fn feasible_bounds(&self) -> Option<Vec<f64>> {
        let bounds = self.sensitivity_bounds.as_ref()?;
        let mut out = bounds.clone();
        for pair in 0..self.paths.num_pairs() {
            let caps: Vec<f64> = self
                .paths
                .paths_of_pair(pair)
                .filter(|&p| self.is_available(p))
                .map(|p| self.paths.path_capacity(p))
                .collect();
            if caps.is_empty() {
                continue;
            }
            let total_cap: f64 = caps.iter().sum();
            let min_needed = 1.0 / total_cap;
            if out[pair] < min_needed {
                out[pair] = min_needed * 1.000_001;
            }
        }
        Some(out)
    }
}

/// Converts a sensitivity bound expressed against normalized capacities (the
/// paper normalizes the smallest link to 1, Appendix C) into absolute units
/// for a path set whose smallest edge capacity is `min_capacity`.
pub fn normalized_bound_to_absolute(bound_normalized: f64, min_capacity: f64) -> f64 {
    assert!(min_capacity > 0.0, "capacities must be positive");
    bound_normalized / min_capacity
}

/// Errors returned by the solving engines.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The LP engine reported an error.
    Lp(LpError),
    /// The problem has no demands.
    NoDemand,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Lp(e) => write!(f, "LP engine failed: {e}"),
            SolveError::NoDemand => write!(f, "the problem has no demand matrices"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves a min-MLU instance with the requested engine.
pub fn solve_min_mlu(
    problem: &MluProblem<'_>,
    engine: SolverEngine,
) -> Result<TeConfig, SolveError> {
    if problem.demands.is_empty() {
        return Err(SolveError::NoDemand);
    }
    if engine.uses_lp(problem.paths.num_paths(), !problem.capped_demands.is_empty()) {
        solve_lp(problem)
    } else {
        let settings = match engine {
            SolverEngine::Iterative(settings) => settings,
            _ => IterativeSettings::default(),
        };
        Ok(solve_iterative(problem, settings))
    }
}

/// Exact LP formulation (Equation 9 of the paper, plus the optional
/// desensitization constraints of Equation 5).
pub fn solve_lp(problem: &MluProblem<'_>) -> Result<TeConfig, SolveError> {
    let paths = problem.paths;
    let mut lp = LinearProgram::new(Direction::Minimize);
    let theta = lp.add_variable(1.0);
    let ratio_vars: Vec<usize> = (0..paths.num_paths()).map(|_| lp.add_variable(0.0)).collect();

    // Per-pair conservation: the available paths' ratios sum to one.
    for pair in 0..paths.num_pairs() {
        let coeffs: Vec<(usize, f64)> = paths
            .paths_of_pair(pair)
            .filter(|&p| problem.is_available(p))
            .map(|p| (ratio_vars[p], 1.0))
            .collect();
        if coeffs.is_empty() {
            continue;
        }
        lp.add_constraint(coeffs, Relation::Equal, 1.0);
    }
    // Failed paths carry nothing.
    for p in 0..paths.num_paths() {
        if !problem.is_available(p) {
            lp.add_constraint(vec![(ratio_vars[p], 1.0)], Relation::LessEq, 0.0);
        }
    }
    // Edge utilization <= theta for every demand matrix in the objective set.
    for demand in &problem.demands {
        assert_eq!(demand.len(), paths.num_pairs(), "one demand per SD pair is required");
        add_edge_rows(&mut lp, paths, demand, &ratio_vars, Some(theta), 0.0);
    }
    // Edge utilization <= fixed cap for the capped demand matrices.
    for (demand, cap) in &problem.capped_demands {
        add_edge_rows(&mut lp, paths, demand, &ratio_vars, None, *cap);
    }
    // Sensitivity bounds: r_p <= bound(pair) * C_p.
    if let Some(bounds) = problem.feasible_bounds() {
        for p in 0..paths.num_paths() {
            if !problem.is_available(p) {
                continue;
            }
            let pair = paths.pair_of_path(p);
            let limit = bounds[pair] * paths.path_capacity(p);
            if limit < 1.0 {
                lp.add_constraint(vec![(ratio_vars[p], 1.0)], Relation::LessEq, limit);
            }
        }
    }

    let solution = figret_lp::solve(&lp).map_err(SolveError::Lp)?;
    let raw: Vec<f64> = ratio_vars.iter().map(|&v| solution.values[v]).collect();
    Ok(apply_availability(paths, raw, problem.available.as_deref()))
}

fn add_edge_rows(
    lp: &mut LinearProgram,
    paths: &PathSet,
    demand: &[f64],
    ratio_vars: &[usize],
    theta: Option<usize>,
    cap: f64,
) {
    for e in 0..paths.num_edges() {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for &p in paths.paths_on_edge(e) {
            let d = demand[paths.pair_of_path(p)];
            if d > 0.0 {
                coeffs.push((ratio_vars[p], d));
            }
        }
        if coeffs.is_empty() {
            continue;
        }
        let capacity = paths.edge_capacities()[e];
        match theta {
            Some(t) => {
                coeffs.push((t, -capacity));
                lp.add_constraint(coeffs, Relation::LessEq, 0.0);
            }
            None => {
                lp.add_constraint(coeffs, Relation::LessEq, cap * capacity);
            }
        }
    }
}

/// Iterative (projected-gradient) engine on the smooth MLU surrogate.
pub fn solve_iterative(problem: &MluProblem<'_>, settings: IterativeSettings) -> TeConfig {
    let paths = problem.paths;
    let diff = DiffTe::new(paths);
    let mut graph = Graph::new();
    let raw = graph.parameter(Tensor::zeros(1, paths.num_paths()));
    graph.seal();
    let mut adam = Adam::new(
        &graph,
        vec![raw],
        AdamConfig { learning_rate: settings.learning_rate, ..Default::default() },
    );

    // Initial scale of the utilizations, used to set the smoothing temperature.
    let uniform = TeConfig::uniform(paths);
    let initial_mlu = problem
        .demands
        .iter()
        .map(|d| figret_te::max_link_utilization_pairs(paths, &uniform, d))
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let bounds = problem.feasible_bounds();
    let bound_weight = settings.bound_penalty * initial_mlu;

    for step in 0..settings.iterations {
        graph.reset();
        // Anneal the temperature from 10% to ~0.5% of the initial MLU.
        let progress = step as f64 / settings.iterations.max(1) as f64;
        let temperature = (initial_mlu * 0.1) * (1.0 - progress) + (initial_mlu * 0.005) * progress;
        let ratios = diff.ratios_from_raw(&mut graph, raw);
        // Objective: worst smooth MLU over the demand set.
        let mut objective = None;
        for demand in &problem.demands {
            let mlu = diff.mlu(&mut graph, ratios, demand, MluAggregation::SmoothMax(temperature));
            objective = Some(match objective {
                None => mlu,
                Some(prev) => {
                    // Smooth max of the two scalars: logsumexp over a 2-vector
                    // is not directly available, so sum them; for the
                    // single-demand case (the common one) this is exact.
                    graph.add(prev, mlu)
                }
            });
        }
        let mut loss = objective.expect("at least one demand");
        // Sensitivity-bound penalty.
        if let Some(bounds) = &bounds {
            let per_pair = diff.max_sensitivity_per_pair(&mut graph, ratios);
            let neg_bounds =
                graph.input(Tensor::row(&bounds.iter().map(|b| -b).collect::<Vec<_>>()));
            let excess = graph.add(per_pair, neg_bounds);
            let violation = graph.relu(excess);
            let penalty = graph
                .dot_const(violation, std::sync::Arc::new(vec![bound_weight; paths.num_pairs()]));
            loss = graph.add(loss, penalty);
        }
        graph.backward(loss);
        adam.step(&mut graph);
    }

    graph.reset();
    let ratios_node = diff.ratios_from_raw(&mut graph, raw);
    let raw_ratios = graph.value(ratios_node).data().to_vec();
    apply_availability(paths, raw_ratios, problem.available.as_deref())
}

/// Zeroes unavailable paths and renormalizes.
pub(crate) fn apply_availability(
    paths: &PathSet,
    mut raw: Vec<f64>,
    available: Option<&[bool]>,
) -> TeConfig {
    if let Some(avail) = available {
        for (r, a) in raw.iter_mut().zip(avail) {
            if !a {
                *r = 0.0;
            }
        }
        // from_raw would re-uniform pairs with no available path; instead keep
        // their mass on the (failed) paths at zero by constructing via from_raw
        // and then re-zeroing — acceptable because those pairs cannot carry
        // traffic either way.
    }
    TeConfig::from_raw(paths, &raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_te::{max_link_utilization_pairs, max_sensitivity_per_pair, PathSet};
    use figret_topology::{Graph as Topo, NodeId, Topology, TopologySpec};

    /// Two parallel routes with different capacities between 0 and 2.
    fn unbalanced() -> PathSet {
        let mut g = Topo::new(3);
        g.add_bidirectional(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_bidirectional(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_bidirectional(NodeId(0), NodeId(2), 3.0).unwrap();
        PathSet::k_shortest(&g, 2)
    }

    fn demand_02(paths: &PathSet, volume: f64) -> Vec<f64> {
        let mut d = vec![0.0; paths.num_pairs()];
        let idx =
            paths.pairs().iter().position(|&(s, t)| s == NodeId(0) && t == NodeId(2)).unwrap();
        d[idx] = volume;
        d
    }

    #[test]
    fn lp_engine_balances_utilization() {
        let ps = unbalanced();
        let demand = demand_02(&ps, 4.0);
        let cfg = solve_min_mlu(&MluProblem::new(&ps, demand.clone()), SolverEngine::Lp).unwrap();
        let mlu = max_link_utilization_pairs(&ps, &cfg, &demand);
        // Optimal: put x on the capacity-3 direct path and 4-x on the thin
        // 2-hop path; MLU = max(x/3, (4-x)/1) minimized at x = 3 -> MLU = 1.
        assert!((mlu - 1.0).abs() < 1e-6, "LP MLU = {mlu}");
    }

    #[test]
    fn iterative_engine_is_close_to_lp() {
        let ps = unbalanced();
        let demand = demand_02(&ps, 4.0);
        let lp_cfg =
            solve_min_mlu(&MluProblem::new(&ps, demand.clone()), SolverEngine::Lp).unwrap();
        let it_cfg = solve_min_mlu(
            &MluProblem::new(&ps, demand.clone()),
            SolverEngine::Iterative(IterativeSettings { iterations: 800, ..Default::default() }),
        )
        .unwrap();
        let lp_mlu = max_link_utilization_pairs(&ps, &lp_cfg, &demand);
        let it_mlu = max_link_utilization_pairs(&ps, &it_cfg, &demand);
        assert!(it_mlu <= lp_mlu * 1.05 + 1e-6, "iterative {it_mlu} vs LP {lp_mlu}");
    }

    #[test]
    fn sensitivity_bounds_are_respected() {
        let ps = unbalanced();
        let demand = demand_02(&ps, 1.0);
        // Bound of 0.25 (absolute) forces traffic away from the thin path.
        let bounds = vec![0.25; ps.num_pairs()];
        let problem = MluProblem::new(&ps, demand).with_sensitivity_bounds(bounds.clone());
        let cfg = solve_min_mlu(&problem, SolverEngine::Lp).unwrap();
        let per_pair = max_sensitivity_per_pair(&ps, &cfg);
        for pair in 0..ps.num_pairs() {
            // Bounds may have been relaxed for feasibility; recompute the
            // effective bound the same way the solver does.
            let total_cap: f64 = ps.paths_of_pair(pair).map(|p| ps.path_capacity(p)).sum();
            let effective = bounds[pair].max(1.000_001 / total_cap);
            assert!(
                per_pair[pair] <= effective + 1e-6,
                "pair {pair}: sensitivity {} exceeds bound {effective}",
                per_pair[pair]
            );
        }
    }

    #[test]
    fn availability_masks_failed_paths() {
        let ps = unbalanced();
        let demand = demand_02(&ps, 1.0);
        // Fail every path that uses edge 4 (the 0 -> 2 direct edge).
        let available: Vec<bool> =
            (0..ps.num_paths()).map(|p| !ps.path_edges(p).contains(&4usize)).collect();
        let problem = MluProblem::new(&ps, demand.clone()).with_available(available.clone());
        for engine in [SolverEngine::Lp, SolverEngine::Iterative(IterativeSettings::default())] {
            let cfg = solve_min_mlu(&problem, engine).unwrap();
            for p in 0..ps.num_paths() {
                if !available[p] {
                    assert_eq!(cfg.ratio(p), 0.0, "failed path {p} must carry nothing");
                }
            }
        }
    }

    #[test]
    fn auto_engine_uses_lp_for_small_instances() {
        let topo = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&topo, 3);
        let demand = vec![10.0; ps.num_pairs()];
        let auto =
            solve_min_mlu(&MluProblem::new(&ps, demand.clone()), SolverEngine::Auto).unwrap();
        let lp = solve_min_mlu(&MluProblem::new(&ps, demand.clone()), SolverEngine::Lp).unwrap();
        let a = max_link_utilization_pairs(&ps, &auto, &demand);
        let l = max_link_utilization_pairs(&ps, &lp, &demand);
        assert!((a - l).abs() < 1e-6);
    }

    #[test]
    fn capped_demands_constrain_the_solution() {
        let ps = unbalanced();
        let normal = demand_02(&ps, 1.0);
        // A hypothetical burst demand whose utilization must stay below 2.0.
        let burst = demand_02(&ps, 5.0);
        let mut problem = MluProblem::new(&ps, normal.clone());
        problem.capped_demands.push((burst.clone(), 2.0));
        let cfg = solve_min_mlu(&problem, SolverEngine::Lp).unwrap();
        let burst_mlu = max_link_utilization_pairs(&ps, &cfg, &burst);
        assert!(burst_mlu <= 2.0 + 1e-6, "burst MLU {burst_mlu} violates the cap");
    }

    #[test]
    fn empty_problem_is_an_error() {
        let ps = unbalanced();
        let mut p = MluProblem::new(&ps, vec![0.0; ps.num_pairs()]);
        p.demands.clear();
        assert!(matches!(solve_min_mlu(&p, SolverEngine::Lp), Err(SolveError::NoDemand)));
    }

    #[test]
    fn bound_conversion() {
        assert!((normalized_bound_to_absolute(0.5, 10.0) - 0.05).abs() < 1e-12);
    }
}
