//! Manual timing probe (ignored by default):
//! `cargo test -p figret-solvers --release --test timing -- --ignored --nocapture`
use figret_solvers::{omniscient_config, IterativeSettings, SolverEngine};
use figret_te::{max_link_utilization, PathSet};
use figret_topology::{Topology, TopologySpec};
use figret_traffic::wan::{wan_trace, WanTrafficConfig};

#[test]
#[ignore]
fn timing_geant_engines() {
    let g = TopologySpec::full_scale(Topology::Geant).build();
    let ps = PathSet::k_shortest(&g, 3);
    let trace = wan_trace(&g, &WanTrafficConfig { num_snapshots: 3, ..Default::default() });
    let d = trace.matrix(2);
    let t0 = std::time::Instant::now();
    let lp = omniscient_config(&ps, d, SolverEngine::Lp).unwrap();
    let lp_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let it = omniscient_config(
        &ps,
        d,
        SolverEngine::Iterative(IterativeSettings { iterations: 500, ..Default::default() }),
    )
    .unwrap();
    let it_time = t1.elapsed();
    println!(
        "GEANT paths={} LP: {:?} mlu={:.4}  Iterative: {:?} mlu={:.4}",
        ps.num_paths(),
        lp_time,
        max_link_utilization(&ps, &lp, d),
        it_time,
        max_link_utilization(&ps, &it, d)
    );
}
