//! Out-of-band observability for the FIGRET serving stack (DESIGN.md §10).
//!
//! The serving loop's determinism contract digests only *decisions*; this
//! crate holds everything that is *measured*: counters, gauges and
//! fixed-log-bucket latency [`Histogram`]s collected in a [`Registry`],
//! phase-scoped span timing via [`Stopwatch`], and two sinks — a
//! Prometheus-style text [`exposition`] snapshot and a [`JsonlSink`] event
//! stream.  Three rules keep telemetry from perturbing the system it
//! observes:
//!
//! 1. **Out-of-band.**  Nothing in a registry is ever folded into
//!    `ServeLog::digest()` / `decision_digest()`.  Arming telemetry must
//!    leave both digests bit-identical at any `RAYON_NUM_THREADS`.
//! 2. **Zero-alloc steady state.**  Metric names are interned once at
//!    registration; the hot path touches metrics only through typed index
//!    handles ([`CounterId`], [`GaugeId`], [`HistogramId`]) — an array
//!    increment, no hashing, no allocation.
//! 3. **Stable-order aggregation.**  Per-shard registries merge by metric
//!    name in sorted order ([`Registry::merge_from`]), so a fleet snapshot
//!    is identical whichever rayon thread finished first.

#![warn(missing_docs)]

mod hist;
mod registry;
mod sinks;

pub use hist::{Histogram, BUCKETS, GROWTH};
pub use registry::{CounterId, GaugeId, HistogramId, Registry};
pub use sinks::{exposition, json_escape, lint_exposition, JsonObject, JsonlSink};

use std::time::Instant;

/// A lap timer for phase-scoped span measurement.
///
/// One stopwatch per tick, one [`lap`](Stopwatch::lap) call per phase
/// boundary: each lap returns the seconds since the previous lap (or since
/// construction), so consecutive laps partition the tick into disjoint
/// self-time spans.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    last: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { last: Instant::now() }
    }

    /// Seconds since the previous lap (or start), and resets the lap mark.
    pub fn lap(&mut self) -> f64 {
        let now = Instant::now();
        let seconds = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        seconds
    }

    /// Seconds since the previous lap mark, without resetting it.
    pub fn peek(&self) -> f64 {
        self.last.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_laps_are_nonnegative_and_partition_time() {
        let mut w = Stopwatch::start();
        let a = w.lap();
        let b = w.lap();
        assert!(a >= 0.0 && b >= 0.0);
        assert!(w.peek() >= 0.0);
    }
}
