//! Metric sinks: Prometheus-style text exposition and a JSONL event
//! stream, plus the format checker CI lints exposition output with.
//!
//! Both sinks are *renderings* of a [`Registry`] snapshot — they never
//! feed back into the serving loop, and the exposition is byte-stable for
//! a given registry state (name-sorted iteration, fixed float formatting).

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::hist::Histogram;
use crate::registry::Registry;

/// Splits a metric name into `(base, labels)` — the optional `{...}`
/// suffix carries static labels baked into the registered name.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) if name.ends_with('}') => (&name[..open], Some(&name[open + 1..name.len() - 1])),
        _ => (name, None),
    }
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn push_sample(out: &mut String, base: &str, suffix: &str, labels: &[&str], value: &str) {
    out.push_str(base);
    out.push_str(suffix);
    let labels: Vec<&str> = labels.iter().copied().filter(|l| !l.is_empty()).collect();
    if !labels.is_empty() {
        out.push('{');
        out.push_str(&labels.join(","));
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Renders a registry as Prometheus-style text exposition.
///
/// Counters and gauges emit one sample each; histograms emit a summary
/// family: `quantile="0.5|0.9|0.99"` samples plus `_sum` and `_count`.
/// A `# TYPE` line precedes the first sample of every family.
pub fn exposition(registry: &Registry) -> String {
    let mut out = String::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut declare = |out: &mut String, base: &str, kind: &str| {
        if typed.insert(base.to_string(), kind.to_string()).is_none() {
            out.push_str(&format!("# TYPE {base} {kind}\n"));
        }
    };
    for (name, value) in registry.counters() {
        let (base, labels) = split_labels(name);
        declare(&mut out, base, "counter");
        push_sample(&mut out, base, "", &[labels.unwrap_or("")], &value.to_string());
    }
    for (name, value) in registry.gauges() {
        let (base, labels) = split_labels(name);
        declare(&mut out, base, "gauge");
        push_sample(&mut out, base, "", &[labels.unwrap_or("")], &format_value(value));
    }
    for (name, hist) in registry.histograms() {
        let (base, labels) = split_labels(name);
        let labels = labels.unwrap_or("");
        declare(&mut out, base, "summary");
        for q in ["0.5", "0.9", "0.99"] {
            let quantile = format!("quantile=\"{q}\"");
            let value = format_value(hist.quantile(q.parse().expect("static quantile")));
            push_sample(&mut out, base, "", &[labels, &quantile], &value);
        }
        push_sample(&mut out, base, "_sum", &[labels], &format_value(hist.sum()));
        push_sample(&mut out, base, "_count", &[labels], &hist.count().to_string());
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_labels(body: &str) -> bool {
    // key="value" pairs, comma separated; values may escape `\"` and `\\`.
    let mut rest = body;
    loop {
        let Some(eq) = rest.find("=\"") else { return false };
        if !valid_metric_name(&rest[..eq]) {
            return false;
        }
        let mut chars = rest[eq + 2..].char_indices();
        let mut close = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    close = Some(eq + 2 + i);
                    break;
                }
                _ => {}
            }
        }
        let Some(close) = close else { return false };
        rest = &rest[close + 1..];
        if rest.is_empty() {
            return true;
        }
        let Some(stripped) = rest.strip_prefix(',') else { return false };
        rest = stripped;
    }
}

/// Validates Prometheus-style exposition text: metric-name syntax, label
/// syntax, parseable sample values, and a `# TYPE` declaration preceding
/// every family's first sample.  Returns the number of sample lines.
pub fn lint_exposition(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {lineno}: malformed TYPE declaration"));
            };
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: invalid metric name '{name}'"));
            }
            if !["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind) {
                return Err(format!("line {lineno}: unknown metric type '{kind}'"));
            }
            if types.insert(name, kind).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for '{name}'"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find([' ', '\t']) {
            Some(split) => (&line[..split], line[split..].trim()),
            None => return Err(format!("line {lineno}: sample line without a value")),
        };
        if value_part.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: unparseable sample value '{value_part}'"));
        }
        let (name, labels) = split_labels(name_part);
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: invalid metric name '{name}'"));
        }
        if let Some(labels) = labels {
            if !valid_labels(labels) {
                return Err(format!("line {lineno}: malformed labels '{{{labels}}}'"));
            }
        }
        // Resolve the family: `_sum`/`_count`/`_bucket` suffixes belong to
        // a summary/histogram family of the stripped name.
        let family = ["_sum", "_count", "_bucket"]
            .iter()
            .find_map(|suffix| {
                let stripped = name.strip_suffix(suffix)?;
                match types.get(stripped) {
                    Some(&"summary") | Some(&"histogram") => Some(stripped),
                    _ => None,
                }
            })
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(format!("line {lineno}: sample for '{name}' precedes its TYPE line"));
        }
        samples += 1;
    }
    Ok(samples)
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for one JSON object (the workspace vendors no
/// serde; metric events are flat enough to hand-roll).
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> JsonObject {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&json_escape(key));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&json_escape(value));
        self.buf.push('"');
        self
    }

    /// Adds an integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) -> &mut JsonObject {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (non-finite values are encoded as `null`).
    pub fn field_f64(&mut self, key: &str, value: f64) -> &mut JsonObject {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a pre-rendered JSON value (object, array, ...).
    pub fn field_raw(&mut self, key: &str, value: &str) -> &mut JsonObject {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

fn histogram_json(hist: &Histogram) -> String {
    let mut o = JsonObject::new();
    o.field_u64("count", hist.count())
        .field_f64("sum", hist.sum())
        .field_f64("p50", hist.quantile(0.5))
        .field_f64("p90", hist.quantile(0.9))
        .field_f64("p99", hist.quantile(0.99))
        .field_f64("max", hist.max());
    o.finish()
}

/// A line-buffered JSONL event stream.
///
/// Each line is one JSON object with at least `"event"` and `"tick"`
/// fields; [`snapshot`](JsonlSink::snapshot) events embed the full
/// registry state (counters, gauges, histogram summaries).
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates (truncating) the stream file.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink { out: BufWriter::new(File::create(path)?), path: path.to_path_buf() })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one pre-rendered JSON line.
    pub fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")
    }

    /// Writes an `"event"`-tagged object with extra string fields.
    pub fn event(
        &mut self,
        event: &str,
        tick: u64,
        fields: &[(&str, &str)],
    ) -> std::io::Result<()> {
        let mut o = JsonObject::new();
        o.field_str("event", event).field_u64("tick", tick);
        for (key, value) in fields {
            o.field_str(key, value);
        }
        self.write_line(&o.finish())
    }

    /// Writes a full registry snapshot event.
    pub fn snapshot(&mut self, tick: u64, registry: &Registry) -> std::io::Result<()> {
        let mut counters = JsonObject::new();
        for (name, value) in registry.counters() {
            counters.field_u64(name, value);
        }
        let mut gauges = JsonObject::new();
        for (name, value) in registry.gauges() {
            gauges.field_f64(name, value);
        }
        let mut histograms = JsonObject::new();
        for (name, hist) in registry.histograms() {
            histograms.field_raw(name, &histogram_json(hist));
        }
        let mut o = JsonObject::new();
        o.field_str("event", "snapshot")
            .field_u64("tick", tick)
            .field_raw("counters", &counters.finish())
            .field_raw("gauges", &gauges.finish())
            .field_raw("histograms", &histograms.finish());
        self.write_line(&o.finish())
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        let c = r.counter("figret_serve_ticks_total");
        r.add(c, 80);
        let c2 = r.counter("figret_fleet_phase_ticks_total{phase=\"scatter\"}");
        r.add(c2, 4);
        let g = r.gauge("figret_recovery_cusum_level");
        r.set(g, 0.25);
        let h = r.histogram("figret_serve_decision_seconds");
        for i in 1..=100 {
            r.observe(h, i as f64 * 1e-6);
        }
        let h2 = r.histogram("figret_fleet_phase_seconds{phase=\"merge\"}");
        r.observe(h2, 3e-4);
        r
    }

    #[test]
    fn exposition_round_trips_through_the_linter() {
        let text = exposition(&sample_registry());
        let samples = lint_exposition(&text).expect("exposition must lint clean");
        // 2 counters + 1 gauge + 2 histograms × 5 lines each.
        assert_eq!(samples, 13);
        assert!(text.contains("# TYPE figret_serve_decision_seconds summary"));
        assert!(text.contains("figret_serve_decision_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("figret_fleet_phase_seconds{phase=\"merge\",quantile=\"0.99\"}"));
        assert!(text.contains("figret_serve_decision_seconds_count 100"));
        assert!(text.contains("figret_serve_ticks_total 80"));
    }

    #[test]
    fn exposition_is_byte_stable() {
        assert_eq!(exposition(&sample_registry()), exposition(&sample_registry()));
    }

    #[test]
    fn linter_rejects_malformed_text() {
        assert!(lint_exposition("no_type_line 1\n").is_err());
        assert!(lint_exposition("# TYPE x counter\nx notanumber\n").is_err());
        assert!(lint_exposition("# TYPE x counter\nx{bad labels} 1\n").is_err());
        assert!(lint_exposition("# TYPE 9bad counter\n").is_err());
        assert!(lint_exposition("# TYPE x counter\n# TYPE x counter\n").is_err());
        assert!(lint_exposition("# TYPE x wibble\n").is_err());
        assert_eq!(lint_exposition("# TYPE x counter\nx 1\nx{l=\"v\"} 2\n"), Ok(2));
    }

    #[test]
    fn jsonl_snapshot_lines_are_valid_json_shape() {
        let dir = std::env::temp_dir().join("figret_telemetry_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.snapshot(7, &sample_registry()).unwrap();
        sink.event("transition", 9, &[("kind", "Degraded")]).unwrap();
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"snapshot\",\"tick\":7,"));
        assert!(lines[0].contains("\"figret_serve_ticks_total\":80"));
        assert!(lines[0].contains("\\\"scatter\\\""), "label quotes must be escaped");
        assert!(lines[0].ends_with('}'));
        assert_eq!(lines[1], "{\"event\":\"transition\",\"tick\":9,\"kind\":\"Degraded\"}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
