//! Fixed-log-bucket latency histogram.
//!
//! Buckets are geometric with ratio [`GROWTH`] = 2^(1/4) (four buckets per
//! octave), spanning 1 ns to ~780 s, plus an underflow bucket at index 0
//! and an unbounded overflow bucket at the top.  The layout is *fixed* —
//! every histogram in the process shares it — so merging two histograms is
//! a bucket-wise add and never re-bins, and a quantile read is exact to
//! one bucket width (≲19% relative error) regardless of how many shards
//! contributed.

/// Number of buckets (underflow + 158 log-spaced + overflow).
pub const BUCKETS: usize = 160;

/// Geometric growth factor between consecutive bucket bounds: 2^(1/4).
pub const GROWTH: f64 = 1.189_207_115_002_721;

/// Lower bound of the first log-spaced bucket (1 ns, in seconds).
const FIRST_BOUND: f64 = 1e-9;

/// A latency/size histogram over the fixed log-bucket layout.
///
/// Records are O(1) with no allocation (the bucket array is allocated at
/// construction), quantiles are read by cumulative walk and returned as
/// the containing bucket's upper bound clamped to the observed `[min,
/// max]` range — monotone in `q` and within one bucket width of the exact
/// sample quantile.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram over the fixed bucket layout.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a histogram from a sample slice.
    pub fn from_samples(samples: &[f64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in samples {
            h.record(v);
        }
        h
    }

    /// The bucket index a value lands in.  Non-finite and non-positive
    /// values land in the underflow bucket.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value < FIRST_BOUND {
            return 0;
        }
        if value.is_infinite() {
            return BUCKETS - 1;
        }
        let octaves = (value / FIRST_BOUND).log2();
        let idx = 1 + (octaves * 4.0).floor() as usize;
        idx.min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i` (`+inf` for the overflow bucket).
    pub fn bucket_upper_bound(i: usize) -> f64 {
        if i >= BUCKETS - 1 {
            return f64::INFINITY;
        }
        FIRST_BOUND * GROWTH.powi(i as i32)
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 { value } else { 0.0 };
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The quantile `q ∈ [0, 1]` of the recorded distribution, to bucket
    /// resolution: the upper bound of the bucket containing the
    /// nearest-rank sample, clamped to the observed `[min, max]`.
    /// Monotone non-decreasing in `q`; 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return Self::bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Bucket-wise merge of another histogram into this one.  Equivalent
    /// (to bucket resolution) to having recorded all of `other`'s samples
    /// here: counts, min, max and every quantile match exactly; `sum`
    /// matches up to floating-point summation order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, in bound order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_upper_bound(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn single_value_quantiles_return_the_value() {
        let mut h = Histogram::new();
        h.record(1.5e-5);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            // One sample: every quantile clamps to the observed max.
            assert_eq!(h.quantile(q), 1.5e-5);
        }
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 1.5e-5).abs() < 1e-18);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0;
        let mut v = 1e-10;
        while v < 1e4 {
            let i = Histogram::bucket_index(v);
            assert!(i >= last, "bucket index decreased at {v}");
            assert!(i < BUCKETS);
            last = i;
            v *= 1.07;
        }
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(f64::INFINITY), BUCKETS - 1);
    }

    #[test]
    fn quantile_tracks_exact_to_one_bucket() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-6).collect();
        let h = Histogram::from_samples(&samples);
        for q in [0.1f64, 0.5, 0.9, 0.99] {
            let exact = samples[((q * 999.0).ceil() as usize).min(999)];
            let approx = h.quantile(q);
            let eb = Histogram::bucket_index(exact);
            let ab = Histogram::bucket_index(approx);
            assert!(
                ab.abs_diff(eb) <= 1,
                "q={q}: approx {approx} (bucket {ab}) vs exact {exact} (bucket {eb})"
            );
        }
    }

    #[test]
    fn negative_and_nan_values_clamp_to_underflow() {
        let mut h = Histogram::new();
        h.record(-3.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.sum(), 0.0);
    }
}
