//! The metrics registry: named counters, gauges and histograms with
//! typed index handles.
//!
//! Names follow the Prometheus convention documented in DESIGN.md §10:
//! `figret_<subsystem>_<quantity>[_total|_seconds]`, optionally with a
//! `{label="value"}` suffix baked into the name (labels are static in
//! this codebase, so interning the full labeled name keeps lookups off
//! the hot path entirely).  Registration allocates; everything after
//! registration is an index into a dense `Vec` — the zero-alloc
//! steady-state contract.

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone, Copy)]
enum MetricSlot {
    Counter(usize),
    Gauge(usize),
    Histogram(usize),
}

/// A collection of named metrics with get-or-create registration and
/// stable-order (name-sorted) iteration, exposition and merging.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    index: BTreeMap<String, MetricSlot>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or finds) a counter by name.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(slot) = self.index.get(name) {
            match *slot {
                MetricSlot::Counter(i) => return CounterId(i),
                _ => panic!("metric '{name}' already registered with a different kind"),
            }
        }
        let i = self.counters.len();
        self.counters.push((name.to_string(), 0));
        self.index.insert(name.to_string(), MetricSlot::Counter(i));
        CounterId(i)
    }

    /// Registers (or finds) a gauge by name.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(slot) = self.index.get(name) {
            match *slot {
                MetricSlot::Gauge(i) => return GaugeId(i),
                _ => panic!("metric '{name}' already registered with a different kind"),
            }
        }
        let i = self.gauges.len();
        self.gauges.push((name.to_string(), 0.0));
        self.index.insert(name.to_string(), MetricSlot::Gauge(i));
        GaugeId(i)
    }

    /// Registers (or finds) a histogram by name.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(slot) = self.index.get(name) {
            match *slot {
                MetricSlot::Histogram(i) => return HistogramId(i),
                _ => panic!("metric '{name}' already registered with a different kind"),
            }
        }
        let i = self.histograms.len();
        self.histograms.push((name.to_string(), Histogram::new()));
        self.index.insert(name.to_string(), MetricSlot::Histogram(i));
        HistogramId(i)
    }

    /// Increments a counter by 1.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.record(value);
    }

    /// Current value of a counter handle.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current value of a gauge handle.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// The histogram behind a handle.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Looks up a counter's value by name.
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        match self.index.get(name) {
            Some(&MetricSlot::Counter(i)) => Some(self.counters[i].1),
            _ => None,
        }
    }

    /// Looks up a gauge's value by name.
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        match self.index.get(name) {
            Some(&MetricSlot::Gauge(i)) => Some(self.gauges[i].1),
            _ => None,
        }
    }

    /// Looks up a histogram by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        match self.index.get(name) {
            Some(&MetricSlot::Histogram(i)) => Some(&self.histograms[i].1),
            _ => None,
        }
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counters(&self) -> Vec<(&str, u64)> {
        self.index
            .iter()
            .filter_map(|(name, slot)| match *slot {
                MetricSlot::Counter(i) => Some((name.as_str(), self.counters[i].1)),
                _ => None,
            })
            .collect()
    }

    /// All gauges as `(name, value)`, sorted by name.
    pub fn gauges(&self) -> Vec<(&str, f64)> {
        self.index
            .iter()
            .filter_map(|(name, slot)| match *slot {
                MetricSlot::Gauge(i) => Some((name.as_str(), self.gauges[i].1)),
                _ => None,
            })
            .collect()
    }

    /// All histograms as `(name, histogram)`, sorted by name.
    pub fn histograms(&self) -> Vec<(&str, &Histogram)> {
        self.index
            .iter()
            .filter_map(|(name, slot)| match *slot {
                MetricSlot::Histogram(i) => Some((name.as_str(), &self.histograms[i].1)),
                _ => None,
            })
            .collect()
    }

    /// `true` when no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Merges another registry into this one *by name, in sorted name
    /// order*: counters add, histograms merge bucket-wise, gauges take the
    /// other registry's value.  Missing metrics are registered first, so
    /// merging per-shard registries in a fixed shard order yields a fleet
    /// snapshot independent of rayon scheduling.
    pub fn merge_from(&mut self, other: &Registry) {
        for (name, value) in other.counters() {
            let id = self.counter(name);
            self.add(id, value);
        }
        for (name, value) in other.gauges() {
            let id = self.gauge(name);
            self.set(id, value);
        }
        for (name, hist) in other.histograms() {
            let id = self.histogram(name);
            self.histograms[id.0].1.merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_handle() {
        let mut r = Registry::new();
        let a = r.counter("figret_test_total");
        let b = r.counter("figret_test_total");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value(a), 3);
        assert_eq!(r.counter_by_name("figret_test_total"), Some(3));
        assert_eq!(r.counter_by_name("missing"), None);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let mut r = Registry::new();
        r.counter("figret_test_total");
        r.gauge("figret_test_total");
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = Registry::new();
        let ca = a.counter("x_total");
        a.add(ca, 5);
        let ha = a.histogram("y_seconds");
        a.observe(ha, 1e-4);

        let mut b = Registry::new();
        let hb = b.histogram("y_seconds");
        b.observe(hb, 2e-4);
        let cb = b.counter("x_total");
        b.add(cb, 7);
        let gb = b.gauge("z_level");
        b.set(gb, 1.5);

        a.merge_from(&b);
        assert_eq!(a.counter_by_name("x_total"), Some(12));
        assert_eq!(a.histogram_by_name("y_seconds").unwrap().count(), 2);
        assert_eq!(a.gauge_by_name("z_level"), Some(1.5));
    }

    #[test]
    fn merge_order_of_shards_does_not_matter_for_values() {
        let build = |seed: u64| {
            let mut r = Registry::new();
            let c = r.counter("figret_serve_ticks_total");
            r.add(c, seed);
            let h = r.histogram("figret_serve_decision_seconds");
            r.observe(h, seed as f64 * 1e-6);
            r
        };
        let shards = [build(3), build(8), build(21)];
        let mut forward = Registry::new();
        for s in &shards {
            forward.merge_from(s);
        }
        let mut backward = Registry::new();
        for s in shards.iter().rev() {
            backward.merge_from(s);
        }
        assert_eq!(
            forward.counter_by_name("figret_serve_ticks_total"),
            backward.counter_by_name("figret_serve_ticks_total")
        );
        let fh = forward.histogram_by_name("figret_serve_decision_seconds").unwrap();
        let bh = backward.histogram_by_name("figret_serve_decision_seconds").unwrap();
        assert_eq!(fh.count(), bh.count());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(fh.quantile(q), bh.quantile(q));
        }
    }
}
