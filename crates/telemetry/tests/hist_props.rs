//! Property tests for the fixed-log-bucket histogram (ISSUE 10 satellite):
//! quantiles are monotone in `q`, merge(a, b) is equivalent to recording
//! all samples into one histogram, and every quantile read lands within
//! one bucket of the exact sample quantile.

use figret_telemetry::Histogram;
use proptest::{proptest, ProptestConfig};

fn exact_quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = (q * (sorted.len() - 1) as f64).ceil() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_are_monotone_in_q(
        samples in proptest::collection::vec(1e-9f64..10.0, 1..200),
        qs in proptest::collection::vec(0.0f64..1.0, 2..8),
    ) {
        let h = Histogram::from_samples(&samples);
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut last = f64::NEG_INFINITY;
        for &q in &qs {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} dropped below {last}");
            last = v;
        }
    }

    #[test]
    fn merge_matches_recording_all_samples(
        a in proptest::collection::vec(1e-8f64..1.0, 0..120),
        b in proptest::collection::vec(1e-8f64..1.0, 0..120),
    ) {
        let mut merged = Histogram::from_samples(&a);
        merged.merge(&Histogram::from_samples(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = Histogram::from_samples(&all);
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.min(), direct.min());
        assert_eq!(merged.max(), direct.max());
        // Bucket counts are integers: quantiles must agree exactly.
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), direct.quantile(q), "q = {q}");
        }
        // Sums differ only by floating-point association order.
        let tol = 1e-12 * (1.0 + direct.sum().abs());
        assert!((merged.sum() - direct.sum()).abs() <= tol);
    }

    #[test]
    fn quantile_is_within_one_bucket_of_exact(
        samples in proptest::collection::vec(1e-9f64..100.0, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::from_samples(&samples);
        let exact = exact_quantile(&samples, q);
        let approx = h.quantile(q);
        let eb = Histogram::bucket_index(exact);
        let ab = Histogram::bucket_index(approx);
        assert!(
            ab.abs_diff(eb) <= 1,
            "q={q}: approx {approx} (bucket {ab}) vs exact {exact} (bucket {eb})"
        );
    }
}
