//! Hyper-parameters of FIGRET (and of the DOTE / TEAL-like baselines derived
//! from it).

/// Hyper-parameters of a FIGRET model.
///
/// The defaults follow the paper (Appendix D.4): a history window of `H = 12`
/// demand matrices, five fully connected hidden layers of 128 neurons, a
/// sigmoid output normalized per SD pair, the Adam optimizer, and the
/// burst-aware loss `L = M(R_t, D_t) + α · Σ_sd σ²_sd · Sᵐᵃˣ_sd`.
#[derive(Debug, Clone)]
pub struct FigretConfig {
    /// History window length `H`.
    pub history_window: usize,
    /// Hidden-layer sizes.
    pub hidden: Vec<usize>,
    /// Robustness weight `α` applied to the sensitivity penalty.  `0` turns
    /// FIGRET into DOTE (pure MLU loss).
    pub robustness_weight: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size: samples per optimizer step.  `1` recovers the
    /// original per-sample SGD; larger batches run one batched
    /// forward/backward pass (data-parallel across fixed-size microbatches)
    /// and a single Adam step on the mean gradient.
    pub batch_size: usize,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl Default for FigretConfig {
    fn default() -> Self {
        FigretConfig {
            history_window: 12,
            hidden: vec![128; 5],
            robustness_weight: 1.0,
            epochs: 12,
            learning_rate: 1e-3,
            batch_size: 32,
            seed: 23,
        }
    }
}

impl FigretConfig {
    /// The DOTE baseline: identical architecture and training, but no
    /// robustness term (`α = 0`), exactly as described in §5.1.
    pub fn dote() -> FigretConfig {
        FigretConfig { robustness_weight: 0.0, ..FigretConfig::default() }
    }

    /// A small configuration for unit tests and quick examples.
    pub fn fast_test() -> FigretConfig {
        FigretConfig {
            history_window: 4,
            hidden: vec![32, 32],
            robustness_weight: 1.0,
            epochs: 4,
            learning_rate: 2e-3,
            batch_size: 8,
            seed: 23,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = FigretConfig::default();
        assert_eq!(c.history_window, 12);
        assert_eq!(c.hidden, vec![128; 5]);
        assert!(c.robustness_weight > 0.0);
    }

    #[test]
    fn dote_disables_the_penalty() {
        assert_eq!(FigretConfig::dote().robustness_weight, 0.0);
        assert_eq!(FigretConfig::dote().hidden, FigretConfig::default().hidden);
    }

    #[test]
    fn fast_test_is_small() {
        let c = FigretConfig::fast_test();
        assert!(c.hidden.iter().all(|h| *h <= 64));
        assert!(c.epochs <= 8);
    }

    #[test]
    fn batch_size_defaults_are_positive() {
        assert!(FigretConfig::default().batch_size > 1);
        assert!(FigretConfig::fast_test().batch_size > 1);
    }
}
