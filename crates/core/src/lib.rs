//! # figret
//!
//! The paper's primary contribution: **FIGRET**, fine-grained
//! robustness-enhanced traffic engineering.  A fully connected network maps a
//! window of recent demand matrices directly to split ratios; the training
//! loss combines the maximum link utilization with a per-SD-pair sensitivity
//! penalty weighted by each pair's historical traffic variance, so bursty
//! pairs are hedged and stable pairs keep their best paths.
//!
//! The crate also provides the two learning-based baselines derived from the
//! same machinery: DOTE ([`FigretConfig::dote`], robustness weight `α = 0`) and
//! a TEAL-like per-demand amortized optimizer ([`TealLikeModel`]).
//!
//! # Example
//!
//! ```
//! use figret::{FigretConfig, FigretModel};
//! use figret_te::{max_link_utilization, PathSet, TeConfig};
//! use figret_topology::{Topology, TopologySpec};
//! use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
//! use figret_traffic::{per_pair_variance_range, TrainTestSplit, WindowDataset};
//!
//! let pod = TopologySpec::full_scale(Topology::MetaDbPod).build();
//! let paths = PathSet::k_shortest(&pod, 3);
//! let trace = pod_trace(&pod, &PodTrafficConfig { num_snapshots: 60, ..Default::default() });
//! let split = TrainTestSplit::chronological(trace.len(), 0.75);
//! let variances = per_pair_variance_range(&trace, split.train.clone());
//!
//! let config = FigretConfig { epochs: 2, ..FigretConfig::fast_test() };
//! let dataset = WindowDataset::from_trace(&trace, config.history_window, split.train.clone());
//! let mut model = FigretModel::new(&paths, &variances, config);
//! model.train(&dataset);
//!
//! let history = &trace.matrices()[trace.len() - 5..trace.len() - 1];
//! let te_config = model.predict(&paths, history);
//! assert!(te_config.is_valid(&paths));
//! let mlu = max_link_utilization(&paths, &te_config, trace.matrix(trace.len() - 1));
//! assert!(mlu.is_finite());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod model;

pub use config::FigretConfig;
pub use figret_nn::InferencePlan;
pub use model::{EpochStats, FigretModel, TealLikeModel, TrainingReport};
