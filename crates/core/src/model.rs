//! The FIGRET model: a history-window MLP trained with the burst-aware loss.
//!
//! FIGRET maps the flattened history window `{D_{t-H}, …, D_{t-1}}` to split
//! ratios `R_t` (§4.3 / §4.4 of the paper).  Training minimizes
//!
//! ```text
//! L(R_t, D_t) = M(R_t, D_t) + α · Σ_sd σ²_sd · Sᵐᵃˣ_sd(R_t)
//! ```
//!
//! where `σ²_sd` is the per-pair demand variance measured on the training
//! prefix and normalized to `[0, 1]` (the paper normalizes the variances when
//! analysing them; the normalization also keeps the two loss terms on
//! comparable scales).  Setting `α = 0` recovers DOTE.

use figret_nn::{
    Adam, AdamConfig, Graph, InferencePlan, Mlp, MlpConfig, Optimizer, OutputActivation, Tensor,
};
use figret_te::{DiffTe, MluAggregation, PathSet, TeConfig};
use figret_traffic::{DemandMatrix, FlatWindowDataset, WindowDataset, WindowSample};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::config::FigretConfig;

/// Fixed number of samples per data-parallel gradient task.  Chunk boundaries
/// depend only on this constant (never on the worker-thread count), and the
/// per-chunk gradients are summed in chunk order, so training is bit-for-bit
/// deterministic for a given seed on any machine.
const MICROBATCH: usize = 8;

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean total loss over the epoch.
    pub mean_loss: f64,
    /// Mean MLU term over the epoch.
    pub mean_mlu: f64,
    /// Mean robustness penalty (already weighted by α).
    pub mean_penalty: f64,
}

/// Summary of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
    /// Wall-clock training time in seconds.
    pub wall_seconds: f64,
    /// Number of samples per epoch.
    pub samples_per_epoch: usize,
}

impl TrainingReport {
    /// Loss of the final epoch (`None` if no epochs ran).
    pub fn final_loss(&self) -> Option<f64> {
        self.epochs.last().map(|e| e.mean_loss)
    }
}

/// A trained (or trainable) FIGRET model bound to a specific path set.
pub struct FigretModel {
    config: FigretConfig,
    graph: Graph,
    mlp: Mlp,
    diff: DiffTe,
    num_pairs: usize,
    /// Normalized per-pair variance weights used by the robustness term.
    variance_weights: Vec<f64>,
    /// Scale applied to input features so they are O(1).
    feature_scale: f64,
}

impl std::fmt::Debug for FigretModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FigretModel")
            .field("config", &self.config)
            .field("num_pairs", &self.num_pairs)
            .field("feature_scale", &self.feature_scale)
            .finish()
    }
}

impl FigretModel {
    /// Creates an untrained model for the given path set.
    ///
    /// `variances` are the per-SD-pair demand variances over the training
    /// prefix (Equation 8); they are normalized internally.  Pass all zeros
    /// (or use [`FigretConfig::dote`]) for the DOTE baseline.
    pub fn new(paths: &PathSet, variances: &[f64], config: FigretConfig) -> FigretModel {
        assert_eq!(variances.len(), paths.num_pairs(), "one variance per SD pair is required");
        let num_pairs = paths.num_pairs();
        let input_dim = config.history_window * num_pairs;
        let mut graph = Graph::new();
        let mlp = Mlp::new(
            &mut graph,
            MlpConfig {
                input_dim,
                hidden: config.hidden.clone(),
                output_dim: paths.num_paths(),
                output_activation: OutputActivation::Sigmoid,
                seed: config.seed,
            },
        );
        graph.seal();
        let diff = DiffTe::new(paths);
        let max_var = variances.iter().cloned().fold(0.0, f64::max);
        let variance_weights: Vec<f64> = if max_var > 0.0 {
            variances.iter().map(|v| v / max_var).collect()
        } else {
            vec![0.0; num_pairs]
        };
        FigretModel { config, graph, mlp, diff, num_pairs, variance_weights, feature_scale: 1.0 }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &FigretConfig {
        &self.config
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.mlp.num_parameters(&self.graph)
    }

    fn features_from_history(&self, history: &[DemandMatrix]) -> Vec<f64> {
        assert_eq!(
            history.len(),
            self.config.history_window,
            "history must contain exactly H demand matrices"
        );
        let mut features = Vec::with_capacity(self.config.history_window * self.num_pairs);
        for m in history {
            features.extend(m.flatten_pairs());
        }
        for f in &mut features {
            *f /= self.feature_scale;
        }
        features
    }

    /// Columnar counterpart of [`FigretModel::features_from_history`]: the
    /// same concatenate-and-scale arithmetic over flat per-tick columns, so
    /// the two paths produce bit-identical features for equivalent data.
    fn features_from_columns(&self, history: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(
            history.len(),
            self.config.history_window,
            "history must contain exactly H demand columns"
        );
        let mut features = Vec::with_capacity(self.config.history_window * self.num_pairs);
        for row in history {
            assert_eq!(row.len(), self.num_pairs, "one demand value per pair is required");
            features.extend_from_slice(row);
        }
        for f in &mut features {
            *f /= self.feature_scale;
        }
        features
    }

    /// Trains the model on a window dataset (as produced by
    /// [`WindowDataset::from_trace`] over the training split) with shuffled
    /// mini-batch SGD.
    ///
    /// Each mini-batch of [`FigretConfig::batch_size`] samples is split into
    /// fixed-size microbatches whose gradients are computed in parallel
    /// (rayon) on cloned parameter tapes, summed in stable chunk order,
    /// averaged, and applied with one Adam step.  `batch_size = 1` recovers
    /// the original per-sample update rule exactly.
    pub fn train(&mut self, dataset: &WindowDataset) -> TrainingReport {
        assert!(!dataset.is_empty(), "the training dataset is empty");
        assert_eq!(
            dataset.window, self.config.history_window,
            "dataset window must match the configured history window"
        );
        let start = std::time::Instant::now();
        // Feature scale: the largest demand seen in training, so inputs are O(1).
        let max_demand = dataset
            .samples
            .iter()
            .flat_map(|s| s.history.iter().map(|m| m.max_entry()))
            .fold(0.0f64, f64::max);
        self.feature_scale = if max_demand > 0.0 { max_demand } else { 1.0 };

        let mut adam = Adam::new(
            &self.graph,
            self.mlp.parameters(),
            AdamConfig { learning_rate: self.config.learning_rate, ..Default::default() },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x7a11_5eed);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut report = TrainingReport { samples_per_epoch: dataset.len(), ..Default::default() };
        let batch_size = self.config.batch_size.max(1);

        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut sum_loss = 0.0;
            let mut sum_mlu = 0.0;
            let mut sum_penalty = 0.0;
            for batch in order.chunks(batch_size) {
                // Keep only the sealed parameter prefix so per-worker clones
                // stay minimal.
                self.graph.reset();
                let samples: Vec<&WindowSample> =
                    batch.iter().map(|&idx| &dataset.samples[idx]).collect();
                // Data-parallel gradient computation over fixed-size
                // microbatches; `collect` preserves chunk order.
                let partials: Vec<MicrobatchGradients> = samples
                    .par_chunks(MICROBATCH)
                    .map(|chunk| self.microbatch_gradients(chunk))
                    .collect();
                let (loss, mlu, penalty) = self.reduce_and_step(&mut adam, &partials, batch.len());
                sum_loss += loss;
                sum_mlu += mlu;
                sum_penalty += penalty;
            }
            let n = dataset.len() as f64;
            report.epochs.push(EpochStats {
                mean_loss: sum_loss / n,
                mean_mlu: sum_mlu / n,
                mean_penalty: sum_penalty / n,
            });
        }
        report.wall_seconds = start.elapsed().as_secs_f64();
        report
    }

    /// Trains the model on a flat columnar dataset (observed demand columns,
    /// e.g. drained from a serving controller's history window) with the
    /// same shuffled, microbatched, deterministically reduced mini-batch SGD
    /// as [`FigretModel::train`].  On a dense universe the two trainers are
    /// bit-identical for equivalent data: same shuffle order, same chunk
    /// boundaries, same feature and gradient arithmetic.  This is the
    /// online-retraining path of the serving recovery subsystem — and it
    /// works on restricted shard universes, where no dense `N×N` matrices
    /// exist to build a [`WindowDataset`] from.
    pub fn train_flat(&mut self, dataset: &FlatWindowDataset) -> TrainingReport {
        assert!(!dataset.is_empty(), "the training dataset is empty");
        assert_eq!(
            dataset.window(),
            self.config.history_window,
            "dataset window must match the configured history window"
        );
        assert_eq!(dataset.num_pairs(), self.num_pairs, "one demand value per pair is required");
        let start = std::time::Instant::now();
        // Feature scale: the largest demand seen in any history window, the
        // exact statistic the dense trainer computes.
        let max_demand = dataset.max_history_entry();
        self.feature_scale = if max_demand > 0.0 { max_demand } else { 1.0 };

        let mut adam = Adam::new(
            &self.graph,
            self.mlp.parameters(),
            AdamConfig { learning_rate: self.config.learning_rate, ..Default::default() },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x7a11_5eed);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut report = TrainingReport { samples_per_epoch: dataset.len(), ..Default::default() };
        let batch_size = self.config.batch_size.max(1);

        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut sum_loss = 0.0;
            let mut sum_mlu = 0.0;
            let mut sum_penalty = 0.0;
            for batch in order.chunks(batch_size) {
                self.graph.reset();
                let partials: Vec<MicrobatchGradients> = batch
                    .par_chunks(MICROBATCH)
                    .map(|chunk| self.microbatch_gradients_flat(dataset, chunk))
                    .collect();
                let (loss, mlu, penalty) = self.reduce_and_step(&mut adam, &partials, batch.len());
                sum_loss += loss;
                sum_mlu += mlu;
                sum_penalty += penalty;
            }
            let n = dataset.len() as f64;
            report.epochs.push(EpochStats {
                mean_loss: sum_loss / n,
                mean_mlu: sum_mlu / n,
                mean_penalty: sum_penalty / n,
            });
        }
        report.wall_seconds = start.elapsed().as_secs_f64();
        report
    }

    /// Stable-order batch reduction shared by both trainers: sums the
    /// per-microbatch gradient sums in chunk order, averages over the batch,
    /// and applies one Adam step.  Returns the summed (loss, MLU, penalty)
    /// terms of the batch.  `graph.reset()` must have run before the
    /// microbatch pass, so the merged gradients are the only writes.
    fn reduce_and_step(
        &mut self,
        adam: &mut Adam,
        partials: &[MicrobatchGradients],
        batch_len: usize,
    ) -> (f64, f64, f64) {
        let params = self.mlp.parameters();
        let scale = 1.0 / batch_len as f64;
        let mut accumulated: Vec<Tensor> = params
            .iter()
            .map(|&p| Tensor::zeros(self.graph.value(p).rows(), self.graph.value(p).cols()))
            .collect();
        let (mut loss, mut mlu, mut penalty) = (0.0, 0.0, 0.0);
        for partial in partials {
            for (acc, g) in accumulated.iter_mut().zip(&partial.grads) {
                acc.add_assign(g);
            }
            loss += partial.loss_sum;
            mlu += partial.mlu_sum;
            penalty += partial.penalty_sum;
        }
        for (p, mut acc) in params.iter().zip(accumulated) {
            for v in acc.data_mut() {
                *v *= scale;
            }
            self.graph.add_grad(*p, &acc);
        }
        adam.step(&mut self.graph);
        (loss, mlu, penalty)
    }

    /// Runs one batched forward/backward pass over a microbatch on a clone of
    /// the parameter tape and returns the *sums* (not means) of the parameter
    /// gradients and loss terms over the microbatch's samples.
    fn microbatch_gradients(&self, chunk: &[&WindowSample]) -> MicrobatchGradients {
        let feature_rows: Vec<Vec<f64>> =
            chunk.iter().map(|s| self.features_from_history(&s.history)).collect();
        let mut demand_rows = Vec::with_capacity(chunk.len() * self.num_pairs);
        for sample in chunk {
            demand_rows.extend(sample.target.flatten_pairs());
        }
        self.microbatch_gradients_rows(&feature_rows, &demand_rows)
    }

    /// Columnar counterpart of [`FigretModel::microbatch_gradients`]: sample
    /// indices into a [`FlatWindowDataset`] instead of owned window samples.
    /// The feature and target arithmetic is identical, so the flat trainer
    /// bit-matches the dense trainer on equivalent data.
    fn microbatch_gradients_flat(
        &self,
        dataset: &FlatWindowDataset,
        chunk: &[usize],
    ) -> MicrobatchGradients {
        let feature_rows: Vec<Vec<f64>> =
            chunk.iter().map(|&i| self.features_from_columns(dataset.history(i))).collect();
        let mut demand_rows = Vec::with_capacity(chunk.len() * self.num_pairs);
        for &i in chunk {
            demand_rows.extend_from_slice(dataset.target(i));
        }
        self.microbatch_gradients_rows(&feature_rows, &demand_rows)
    }

    /// The shared forward/backward core of both trainers, over prepared
    /// (already feature-scaled) input rows and raw target demand rows.
    fn microbatch_gradients_rows(
        &self,
        feature_rows: &[Vec<f64>],
        demand_rows: &[f64],
    ) -> MicrobatchGradients {
        let mut graph = self.graph.clone();
        let feature_refs: Vec<&[f64]> = feature_rows.iter().map(|r| r.as_slice()).collect();
        let input = graph.input(Tensor::stack_rows(&feature_refs));
        let raw = self.mlp.forward(&mut graph, input);
        let ratios = self.diff.normalize(&mut graph, raw);
        let mlu_col = self.diff.mlu_batch(&mut graph, ratios, demand_rows, MluAggregation::Max);
        let mlu_sum: f64 = graph.value(mlu_col).data().iter().sum();
        let (loss_col, penalty_sum) = if self.config.robustness_weight > 0.0 {
            let penalty = self.diff.sensitivity_penalty(&mut graph, ratios, &self.variance_weights);
            let weighted = graph.scale(penalty, self.config.robustness_weight);
            let penalty_sum: f64 = graph.value(weighted).data().iter().sum();
            (graph.add(mlu_col, weighted), penalty_sum)
        } else {
            (mlu_col, 0.0)
        };
        let loss = graph.sum(loss_col);
        let loss_sum = graph.value(loss).as_scalar();
        graph.backward(loss);
        let grads = self.mlp.parameters().iter().map(|&p| graph.grad(p).clone()).collect();
        MicrobatchGradients { grads, loss_sum, mlu_sum, penalty_sum }
    }

    /// Compiles the trained weights into an allocation-free f32
    /// [`InferencePlan`] for the serving hot path (see `figret_nn::plan`).
    ///
    /// The plan folds the feature scale into its input load and performs the
    /// per-pair normalization itself, so callers feed it *raw* flattened
    /// history features and obtain normalized split ratios.  Compile once
    /// after training; the plan snapshots the weights and does not track
    /// later updates.
    pub fn compile_plan(&self) -> InferencePlan {
        InferencePlan::compile(
            &self.graph,
            &self.mlp,
            self.diff.segments().to_vec(),
            self.feature_scale,
        )
    }

    /// Computes the TE configuration for the next snapshot from a history
    /// window of `H` demand matrices (most recent last).
    pub fn predict(&mut self, paths: &PathSet, history: &[DemandMatrix]) -> TeConfig {
        let features = self.features_from_history(history);
        self.graph.reset();
        let input = self.graph.input(Tensor::row(&features));
        let raw = self.mlp.forward(&mut self.graph, input);
        let ratios = self.diff.normalize(&mut self.graph, raw);
        TeConfig::from_raw(paths, self.graph.value(ratios).data())
    }

    /// Computes the TE configuration from a history window of `H` flat
    /// demand columns (most recent last), one value per pair of the path
    /// set's universe in slot order.
    ///
    /// Feature construction runs the same arithmetic as
    /// [`FigretModel::predict`] (concatenate, divide by the feature scale),
    /// so on a dense universe this is bit-identical to `predict` fed the
    /// matrices those columns flatten to.  This is the serving controller's
    /// path — it keeps columnar history and never materializes `N×N`
    /// matrices, which is what lets learned serving scale to restricted
    /// fabric universes.
    pub fn predict_flat(&mut self, paths: &PathSet, history: &[Vec<f64>]) -> TeConfig {
        assert_eq!(
            history.len(),
            self.config.history_window,
            "history must contain exactly H demand columns"
        );
        let mut features = Vec::with_capacity(self.config.history_window * self.num_pairs);
        for row in history {
            assert_eq!(row.len(), self.num_pairs, "one demand value per pair is required");
            features.extend_from_slice(row);
        }
        for f in &mut features {
            *f /= self.feature_scale;
        }
        self.graph.reset();
        let input = self.graph.input(Tensor::row(&features));
        let raw = self.mlp.forward(&mut self.graph, input);
        let ratios = self.diff.normalize(&mut self.graph, raw);
        TeConfig::from_raw(paths, self.graph.value(ratios).data())
    }

    /// Computes TE configurations for many history windows with a single
    /// batch-major forward pass (the fast path of the evaluation runner).
    pub fn predict_batch(
        &mut self,
        paths: &PathSet,
        histories: &[Vec<DemandMatrix>],
    ) -> Vec<TeConfig> {
        if histories.is_empty() {
            return Vec::new();
        }
        let feature_rows: Vec<Vec<f64>> =
            histories.iter().map(|h| self.features_from_history(h)).collect();
        let feature_refs: Vec<&[f64]> = feature_rows.iter().map(|r| r.as_slice()).collect();
        self.graph.reset();
        let input = self.graph.input(Tensor::stack_rows(&feature_refs));
        let raw = self.mlp.forward(&mut self.graph, input);
        let ratios = self.diff.normalize(&mut self.graph, raw);
        let out = self.graph.value(ratios);
        (0..out.rows()).map(|r| TeConfig::from_raw(paths, out.row_slice(r))).collect()
    }
}

/// Per-microbatch result of the data-parallel gradient pass: gradient sums
/// (one tensor per MLP parameter, in parameter order) plus loss-term sums.
struct MicrobatchGradients {
    grads: Vec<Tensor>,
    loss_sum: f64,
    mlu_sum: f64,
    penalty_sum: f64,
}

/// A TEAL-like baseline: the same architecture, but it receives only the most
/// recent demand matrix and is trained to optimize the MLU of *that same*
/// matrix (an amortized per-demand optimizer).  At evaluation time the
/// configuration computed from `D_{t-1}` is applied to `D_t`, exactly as the
/// paper does ("we apply the TE solution computed from the traffic demand of
/// the preceding time snapshot to the next time snapshot", §5.1).  See
/// DESIGN.md §5 for the substitution rationale (no GNN/RL).
pub struct TealLikeModel {
    inner: FigretModel,
}

impl std::fmt::Debug for TealLikeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TealLikeModel").field("inner", &self.inner).finish()
    }
}

impl TealLikeModel {
    /// Creates an untrained TEAL-like model.
    pub fn new(paths: &PathSet, config: FigretConfig) -> TealLikeModel {
        let cfg = FigretConfig { history_window: 1, robustness_weight: 0.0, ..config };
        TealLikeModel { inner: FigretModel::new(paths, &vec![0.0; paths.num_pairs()], cfg) }
    }

    /// Trains the model to minimize the MLU of the snapshot it receives.
    pub fn train(&mut self, dataset: &WindowDataset) -> TrainingReport {
        // Re-target every sample: the "history" is the target snapshot itself.
        let mut same_snapshot = dataset.clone();
        same_snapshot.window = 1;
        for s in &mut same_snapshot.samples {
            s.history = vec![s.target.clone()];
        }
        self.inner.train(&same_snapshot)
    }

    /// Computes a configuration for the *given* demand matrix (apply it to the
    /// following snapshot to reproduce the paper's evaluation protocol).
    pub fn predict(&mut self, paths: &PathSet, demand: &DemandMatrix) -> TeConfig {
        self.inner.predict(paths, std::slice::from_ref(demand))
    }

    /// Batched counterpart of [`TealLikeModel::predict`]: one configuration
    /// per demand matrix via a single forward pass.
    pub fn predict_batch(&mut self, paths: &PathSet, demands: &[DemandMatrix]) -> Vec<TeConfig> {
        let histories: Vec<Vec<DemandMatrix>> = demands.iter().map(|d| vec![d.clone()]).collect();
        self.inner.predict_batch(paths, &histories)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_te::max_link_utilization;
    use figret_topology::{Topology, TopologySpec};
    use figret_traffic::datacenter::{pod_trace, PodTrafficConfig};
    use figret_traffic::{per_pair_variance_range, TrainTestSplit};

    fn setup() -> (PathSet, figret_traffic::TrafficTrace) {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let ps = PathSet::k_shortest(&g, 3);
        let trace = pod_trace(&g, &PodTrafficConfig { num_snapshots: 120, ..Default::default() });
        (ps, trace)
    }

    #[test]
    fn training_reduces_the_loss() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let variances = per_pair_variance_range(&trace, split.train.clone());
        let config = FigretConfig { epochs: 6, ..FigretConfig::fast_test() };
        let dataset = WindowDataset::from_trace(&trace, config.history_window, split.train.clone());
        let mut model = FigretModel::new(&ps, &variances, config);
        assert!(model.num_parameters() > 0);
        let report = model.train(&dataset);
        assert_eq!(report.epochs.len(), 6);
        let first = report.epochs.first().unwrap().mean_loss;
        let last = report.final_loss().unwrap();
        assert!(last < first, "training must reduce the loss ({first} -> {last})");
        assert!(report.wall_seconds > 0.0);
        assert_eq!(report.samples_per_epoch, dataset.len());
    }

    #[test]
    fn trained_model_beats_uniform_splitting() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let variances = per_pair_variance_range(&trace, split.train.clone());
        let config = FigretConfig::fast_test();
        let h = config.history_window;
        let train = WindowDataset::from_trace(&trace, h, split.train.clone());
        let test = WindowDataset::from_trace(&trace, h, split.test.clone());
        let mut model = FigretModel::new(&ps, &variances, config);
        model.train(&train);
        let uniform = TeConfig::uniform(&ps);
        let mut model_total = 0.0;
        let mut uniform_total = 0.0;
        for sample in &test.samples {
            let cfg = model.predict(&ps, &sample.history);
            assert!(cfg.is_valid(&ps));
            model_total += max_link_utilization(&ps, &cfg, &sample.target);
            uniform_total += max_link_utilization(&ps, &uniform, &sample.target);
        }
        assert!(
            model_total < uniform_total,
            "trained FIGRET ({model_total:.3}) should beat uniform splitting ({uniform_total:.3})"
        );
    }

    #[test]
    fn dote_is_figret_without_penalty() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let variances = per_pair_variance_range(&trace, split.train.clone());
        let config =
            FigretConfig { robustness_weight: 0.0, epochs: 2, ..FigretConfig::fast_test() };
        let dataset = WindowDataset::from_trace(&trace, config.history_window, split.train.clone());
        let mut dote = FigretModel::new(&ps, &variances, config);
        let report = dote.train(&dataset);
        for e in &report.epochs {
            assert_eq!(e.mean_penalty, 0.0, "DOTE must not accumulate a robustness penalty");
            assert!((e.mean_loss - e.mean_mlu).abs() < 1e-12);
        }
    }

    #[test]
    fn figret_penalizes_sensitive_configs_more_than_dote() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let variances = per_pair_variance_range(&trace, split.train.clone());
        let figret_cfg =
            FigretConfig { robustness_weight: 2.0, epochs: 3, ..FigretConfig::fast_test() };
        let h = figret_cfg.history_window;
        let dataset = WindowDataset::from_trace(&trace, h, split.train.clone());
        let mut figret = FigretModel::new(&ps, &variances, figret_cfg);
        let report = figret.train(&dataset);
        // The penalty term must be active (non-zero) for FIGRET.
        assert!(report.epochs.iter().any(|e| e.mean_penalty > 0.0));
    }

    #[test]
    fn teal_like_model_trains_and_predicts() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let config = FigretConfig { epochs: 3, ..FigretConfig::fast_test() };
        let dataset = WindowDataset::from_trace(&trace, config.history_window, split.train.clone());
        let mut teal = TealLikeModel::new(&ps, config);
        let report = teal.train(&dataset);
        assert!(!report.epochs.is_empty());
        let cfg = teal.predict(&ps, trace.matrix(trace.len() - 2));
        assert!(cfg.is_valid(&ps));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let variances = per_pair_variance_range(&trace, split.train.clone());
        let config = FigretConfig { epochs: 2, ..FigretConfig::fast_test() };
        let dataset = WindowDataset::from_trace(&trace, config.history_window, split.train.clone());
        let run = |cfg: FigretConfig| {
            let mut model = FigretModel::new(&ps, &variances, cfg);
            let report = model.train(&dataset);
            report.epochs.iter().map(|e| e.mean_loss).collect::<Vec<_>>()
        };
        // Identical loss trajectories regardless of when/where the parallel
        // microbatch gradients were computed.
        assert_eq!(run(config.clone()), run(config));
    }

    #[test]
    fn train_flat_bit_matches_dense_training() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let variances = per_pair_variance_range(&trace, split.train.clone());
        let config = FigretConfig { epochs: 3, ..FigretConfig::fast_test() };
        let h = config.history_window;
        let dense = WindowDataset::from_trace(&trace, h, split.train.clone());
        // The same training range as flat columns: matrices 0..cut flattened
        // in slot order, so flat sample `i` is dense sample `i` exactly.
        let columns: Vec<Vec<f64>> =
            split.train.clone().map(|t| trace.matrix(t).flatten_pairs()).collect();
        let flat = FlatWindowDataset::from_columns(h, columns);
        assert_eq!(flat.len(), dense.len());

        let mut dense_model = FigretModel::new(&ps, &variances, config.clone());
        let dense_report = dense_model.train(&dense);
        let mut flat_model = FigretModel::new(&ps, &variances, config);
        let flat_report = flat_model.train_flat(&flat);

        // Same shuffle, same chunking, same arithmetic: per-epoch stats are
        // bit-equal, not merely close.
        for (d, f) in dense_report.epochs.iter().zip(&flat_report.epochs) {
            assert_eq!(d.mean_loss, f.mean_loss);
            assert_eq!(d.mean_mlu, f.mean_mlu);
            assert_eq!(d.mean_penalty, f.mean_penalty);
        }
        // And so are the trained predictors.
        let t = trace.len() - 1;
        let history: Vec<DemandMatrix> = (t - h..t).map(|i| trace.matrix(i).clone()).collect();
        let flat_history: Vec<Vec<f64>> = history.iter().map(|m| m.flatten_pairs()).collect();
        let dense_cfg = dense_model.predict(&ps, &history);
        let flat_cfg = flat_model.predict_flat(&ps, &flat_history);
        assert_eq!(dense_cfg.ratios(), flat_cfg.ratios());
    }

    #[test]
    fn mini_batch_training_tracks_single_sample_training() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let variances = per_pair_variance_range(&trace, split.train.clone());
        let base = FigretConfig { epochs: 6, ..FigretConfig::fast_test() };
        let dataset = WindowDataset::from_trace(&trace, base.history_window, split.train.clone());

        let final_loss = |batch_size: usize| {
            let cfg = FigretConfig { batch_size, ..base.clone() };
            let mut model = FigretModel::new(&ps, &variances, cfg);
            model.train(&dataset).final_loss().unwrap()
        };
        let single = final_loss(1);
        let batched = final_loss(8);
        // Both settings optimize the same objective from the same
        // initialization; the final mean losses must agree within a loose
        // tolerance even though the update trajectories differ.
        let gap = (single - batched).abs() / single.max(1e-9);
        assert!(
            gap < 0.35,
            "batch=8 final loss {batched} strays too far from batch=1 final loss {single}"
        );
    }

    #[test]
    fn predict_batch_matches_predict() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let variances = per_pair_variance_range(&trace, split.train.clone());
        let config = FigretConfig { epochs: 1, ..FigretConfig::fast_test() };
        let h = config.history_window;
        let dataset = WindowDataset::from_trace(&trace, h, split.train.clone());
        let mut model = FigretModel::new(&ps, &variances, config);
        model.train(&dataset);
        let histories: Vec<Vec<figret_traffic::DemandMatrix>> =
            (h..h + 5).map(|t| (t - h..t).map(|i| trace.matrix(i).clone()).collect()).collect();
        let batched = model.predict_batch(&ps, &histories);
        assert_eq!(batched.len(), histories.len());
        for (history, batched_cfg) in histories.iter().zip(&batched) {
            let single = model.predict(&ps, history);
            assert!(batched_cfg.is_valid(&ps));
            for p in 0..ps.num_paths() {
                assert!(
                    (single.ratio(p) - batched_cfg.ratio(p)).abs() < 1e-12,
                    "batched prediction must equal the single-sample prediction"
                );
            }
        }
    }

    #[test]
    fn compiled_plan_matches_graph_prediction() {
        let (ps, trace) = setup();
        let split = TrainTestSplit::chronological(trace.len(), 0.75);
        let variances = per_pair_variance_range(&trace, split.train.clone());
        let config = FigretConfig { epochs: 2, ..FigretConfig::fast_test() };
        let h = config.history_window;
        let dataset = WindowDataset::from_trace(&trace, h, split.train.clone());
        let mut model = FigretModel::new(&ps, &variances, config);
        model.train(&dataset);
        let mut plan = model.compile_plan();
        assert_eq!(plan.input_dim(), h * ps.num_pairs());
        assert_eq!(plan.output_dim(), ps.num_paths());

        let mut raw = vec![0.0; ps.num_paths()];
        for t in h..h + 4 {
            let history: Vec<DemandMatrix> = (t - h..t).map(|i| trace.matrix(i).clone()).collect();
            // The plan takes *raw* features; scaling happens inside.
            let mut features = Vec::new();
            for m in &history {
                features.extend(m.flatten_pairs());
            }
            plan.forward(&features, &mut raw);
            let plan_cfg = TeConfig::from_raw(&ps, &raw);
            let graph_cfg = model.predict(&ps, &history);
            assert!(plan_cfg.is_valid(&ps));
            for p in 0..ps.num_paths() {
                let (a, b) = (plan_cfg.ratio(p), graph_cfg.ratio(p));
                assert!(
                    (a - b).abs() <= 1e-4 * (1.0 + b.abs()),
                    "path {p}: plan ratio {a} vs graph ratio {b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "exactly H demand matrices")]
    fn predict_checks_history_length() {
        let (ps, trace) = setup();
        let mut model =
            FigretModel::new(&ps, &vec![0.0; ps.num_pairs()], FigretConfig::fast_test());
        let _ = model.predict(&ps, &trace.matrices()[..2]);
    }
}
