//! Traffic perturbations used in §5.4 ("Robustness to demand changes").
//!
//! * [`gaussian_fluctuation`] reproduces the "Temporal changes in traffic"
//!   experiment (Table 3): every demand receives additive noise
//!   `α · N(0, σ²_sd)` where `σ_sd` is the per-pair standard deviation measured
//!   on the original trace.
//! * [`worst_case_fluctuation`] reproduces Table 5: the per-pair σ used for the
//!   noise is taken from the pair with the *opposite* variance rank, so
//!   historically stable pairs receive the largest fluctuations.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use std::sync::Arc;

use crate::matrix::TrafficTrace;
use crate::sparse::{SparseDemand, SparseTrace};
use crate::stats::{per_pair_std_range, sparse_per_pair_variance_range};

/// Standard normal sample via Box-Muller.
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Adds `α · N(0, σ²_sd)` noise to every demand of every snapshot in `range`,
/// where `σ_sd` is measured over the full trace.  Demands are clamped at zero.
pub fn gaussian_fluctuation(
    trace: &TrafficTrace,
    range: std::ops::Range<usize>,
    alpha: f64,
    seed: u64,
) -> TrafficTrace {
    let sigma = per_pair_std_range(trace, 0..trace.len());
    apply_noise(trace, range, alpha, &sigma, seed)
}

/// Table 5's adversarial variant: the σ used for pair `i` is the σ of the pair
/// with the opposite variance rank (most stable pair gets the σ of the most
/// bursty pair, and so on).
pub fn worst_case_fluctuation(
    trace: &TrafficTrace,
    range: std::ops::Range<usize>,
    alpha: f64,
    seed: u64,
) -> TrafficTrace {
    let sigma = per_pair_std_range(trace, 0..trace.len());
    let reversed = reverse_by_rank(&sigma);
    apply_noise(trace, range, alpha, &reversed, seed)
}

/// Reassigns values so that the element with the smallest value receives the
/// largest one, the second smallest receives the second largest, etc.
pub fn reverse_by_rank(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("values must not contain NaN"));
    let mut out = vec![0.0; n];
    for (rank, &i) in idx.iter().enumerate() {
        // Element with ascending rank `rank` receives the value of descending rank `rank`.
        out[i] = values[idx[n - 1 - rank]];
    }
    out
}

fn apply_noise(
    trace: &TrafficTrace,
    range: std::ops::Range<usize>,
    alpha: f64,
    sigma: &[f64],
    seed: u64,
) -> TrafficTrace {
    assert!(alpha >= 0.0, "fluctuation amplitude must be non-negative");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xf1c_0f1c);
    let n = trace.num_nodes();
    trace.map(|t, m| {
        if !range.contains(&t) || alpha == 0.0 {
            return m.clone();
        }
        let mut out = m.clone();
        let mut pair = 0usize;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let noise = alpha * sigma[pair] * standard_normal(&mut rng);
                out.set(s, d, (m.get(s, d) + noise).max(0.0));
                pair += 1;
            }
        }
        out
    })
}

/// Columnar counterpart of [`gaussian_fluctuation`]: adds `α · N(0, σ²_slot)`
/// noise to every active pair of every snapshot in `range`, where `σ_slot` is
/// measured over the full sparse series.  Work and storage are `O(nnz)` per
/// snapshot; inactive pairs stay exactly zero.
pub fn sparse_gaussian_fluctuation(
    trace: &SparseTrace,
    range: std::ops::Range<usize>,
    alpha: f64,
    seed: u64,
) -> SparseTrace {
    assert!(alpha >= 0.0, "fluctuation amplitude must be non-negative");
    let sigma: Vec<f64> =
        sparse_per_pair_variance_range(trace, 0..trace.len()).into_iter().map(f64::sqrt).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xf1c_0f1c);
    let active = Arc::clone(trace.active());
    let columns = trace
        .snapshots()
        .iter()
        .enumerate()
        .map(|(t, c)| {
            if !range.contains(&t) || alpha == 0.0 {
                return c.clone();
            }
            let mut out = SparseDemand::zeros(Arc::clone(&active));
            for (slot, v) in c.values().iter().enumerate() {
                let noise = alpha * sigma[slot] * standard_normal(&mut rng);
                out.set_slot(slot, (v + noise).max(0.0));
            }
            out
        })
        .collect();
    SparseTrace::new(trace.name().to_string(), trace.interval_seconds(), active, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DemandMatrix;
    use crate::stats::per_pair_variance;

    fn trace() -> TrafficTrace {
        // Pair 0 stable at 10, pair 1 oscillates 0..20 (high variance).
        let ms = (0..40)
            .map(|t| {
                DemandMatrix::from_pairs(2, &[10.0, if t % 2 == 0 { 0.0 } else { 20.0 }]).unwrap()
            })
            .collect();
        TrafficTrace::new("t", 1.0, ms)
    }

    #[test]
    fn zero_alpha_is_identity() {
        let t = trace();
        let p = gaussian_fluctuation(&t, 0..t.len(), 0.0, 1);
        assert_eq!(p, t);
    }

    #[test]
    fn noise_scales_with_pair_sigma() {
        let t = trace();
        let p = gaussian_fluctuation(&t, 0..t.len(), 1.0, 2);
        // Pair 0 had zero variance -> remains exactly 10.
        for m in p.matrices() {
            assert!((m.get(0, 1) - 10.0).abs() < 1e-9);
        }
        // Pair 1 must have changed somewhere.
        let changed = p
            .matrices()
            .iter()
            .zip(t.matrices())
            .any(|(a, b)| (a.get(1, 0) - b.get(1, 0)).abs() > 1e-6);
        assert!(changed);
        // Demands stay non-negative.
        assert!(p.matrices().iter().all(|m| m.flatten_pairs().iter().all(|v| *v >= 0.0)));
    }

    #[test]
    fn range_restricts_perturbation() {
        let t = trace();
        let p = gaussian_fluctuation(&t, 30..t.len(), 2.0, 3);
        for i in 0..30 {
            assert_eq!(p.matrix(i), t.matrix(i));
        }
    }

    #[test]
    fn reverse_by_rank_swaps_extremes() {
        let v = vec![1.0, 5.0, 3.0];
        let r = reverse_by_rank(&v);
        assert_eq!(r, vec![5.0, 1.0, 3.0]);
        // An already-symmetric vector maps onto itself as a multiset.
        let mut sorted_r = r.clone();
        sorted_r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted_r, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn sparse_fluctuation_respects_support_and_range() {
        let t = trace();
        let sparse = SparseTrace::from_trace(&t);
        let p = sparse_gaussian_fluctuation(&sparse, 30..sparse.len(), 2.0, 3);
        assert_eq!(p.nnz(), sparse.nnz());
        for i in 0..30 {
            assert_eq!(p.snapshot(i), sparse.snapshot(i));
        }
        let changed = (30..p.len()).any(|i| p.snapshot(i) != sparse.snapshot(i));
        assert!(changed, "perturbation must alter the tail of the trace");
        // Identity at alpha = 0.
        let id = sparse_gaussian_fluctuation(&sparse, 0..sparse.len(), 0.0, 3);
        assert_eq!(id, sparse);
    }

    #[test]
    fn worst_case_perturbs_the_stable_pair() {
        let t = trace();
        let p = worst_case_fluctuation(&t, 0..t.len(), 1.0, 4);
        // Now the historically stable pair 0 receives the large sigma.
        let var = per_pair_variance(&p);
        assert!(var[0] > 1.0, "stable pair should now fluctuate, var = {}", var[0]);
    }
}
