//! Sparse columnar demand storage (the demand-side core since PR 7).
//!
//! ToR-level demand matrices are sparse: at 1024 ToRs fewer than 2% of the
//! 1M+ source-destination pairs carry traffic, yet the dense
//! [`DemandMatrix`] stores (and every consumer iterates) all `N²` entries.
//! This module stores a demand *series* in CSR-style columnar form:
//!
//! * [`ActivePairs`] — the set of (source, destination) pairs that may carry
//!   traffic, sorted source-major with per-source offsets.  One index is
//!   built per trace/stream and shared (`Arc`) by every snapshot, so all
//!   columns of a series align slot-for-slot.
//! * [`SparseDemand`] — one snapshot: a value column of length `nnz`,
//!   aligned to its `ActivePairs` index.
//! * [`SparseTrace`] — a time-ordered series of columns over one shared
//!   index (the sparse counterpart of [`TrafficTrace`]).
//!
//! The dense types remain as thin adapters for small WANs: conversions in
//! both directions are exact, and every arithmetic operation delegates to
//! the shared kernels in [`crate::ops`], so dense and sparse pipelines
//! produce bit-identical results on the same traffic (DESIGN.md §7).

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::matrix::{DemandMatrix, MatrixError, TrafficTrace};
use crate::ops;

/// The ordered set of source-destination pairs a demand series may use.
///
/// Pairs are stored source-major (all destinations of source 0, then source
/// 1, ...), destinations sorted ascending within a source — the same order
/// `DemandMatrix::flatten_pairs` and `Graph::sd_pairs` use, restricted to
/// the active subset.  `src_offsets[s]..src_offsets[s + 1]` is the slot
/// range of source `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivePairs {
    num_nodes: usize,
    dsts: Vec<u32>,
    src_offsets: Vec<usize>,
}

impl ActivePairs {
    /// Every ordered off-diagonal pair of `num_nodes` nodes (the dense
    /// universe; what the WAN adapters use).
    pub fn all(num_nodes: usize) -> ActivePairs {
        let mut dsts = Vec::with_capacity(num_nodes * num_nodes.saturating_sub(1));
        let mut src_offsets = Vec::with_capacity(num_nodes + 1);
        src_offsets.push(0);
        for s in 0..num_nodes {
            for d in 0..num_nodes {
                if s != d {
                    dsts.push(d as u32);
                }
            }
            src_offsets.push(dsts.len());
        }
        ActivePairs { num_nodes, dsts, src_offsets }
    }

    /// Builds an index from an explicit pair list.  Pairs are sorted and
    /// deduplicated; diagonal or out-of-range pairs are rejected.
    pub fn from_pairs(num_nodes: usize, pairs: &[(usize, usize)]) -> ActivePairs {
        let mut sorted: Vec<(usize, usize)> = pairs.to_vec();
        for &(s, d) in &sorted {
            assert!(s < num_nodes && d < num_nodes, "pair ({s}, {d}) out of range");
            assert_ne!(s, d, "diagonal pair ({s}, {s}) cannot be active");
        }
        sorted.sort_unstable();
        sorted.dedup();
        let mut dsts = Vec::with_capacity(sorted.len());
        let mut src_offsets = Vec::with_capacity(num_nodes + 1);
        src_offsets.push(0);
        let mut cursor = 0usize;
        for s in 0..num_nodes {
            while cursor < sorted.len() && sorted[cursor].0 == s {
                dsts.push(sorted[cursor].1 as u32);
                cursor += 1;
            }
            src_offsets.push(dsts.len());
        }
        ActivePairs { num_nodes, dsts, src_offsets }
    }

    /// The support of a single matrix: every pair with a nonzero demand.
    pub fn from_matrix_support(matrix: &DemandMatrix) -> ActivePairs {
        ActivePairs::from_support_mask(matrix.num_nodes(), |s, d| matrix.get(s, d) > 0.0)
    }

    /// The union support of a whole trace: every pair that carries traffic
    /// in at least one snapshot.  This is the index a dense trace is
    /// converted onto, so all snapshots of the series align.
    pub fn from_trace_support(trace: &TrafficTrace) -> ActivePairs {
        ActivePairs::from_support_mask(trace.num_nodes(), |s, d| {
            trace.matrices().iter().any(|m| m.get(s, d) > 0.0)
        })
    }

    fn from_support_mask(num_nodes: usize, mut active: impl FnMut(usize, usize) -> bool) -> Self {
        let mut dsts = Vec::new();
        let mut src_offsets = Vec::with_capacity(num_nodes + 1);
        src_offsets.push(0);
        for s in 0..num_nodes {
            for d in 0..num_nodes {
                if s != d && active(s, d) {
                    dsts.push(d as u32);
                }
            }
            src_offsets.push(dsts.len());
        }
        ActivePairs { num_nodes, dsts, src_offsets }
    }

    /// Samples a random sparse pair set: every source talks to exactly
    /// `per_source` distinct destinations chosen uniformly (seeded).  The
    /// fabric-scale traffic generators use this to fix a communication
    /// pattern whose density is `per_source / (n - 1)`.
    pub fn sample_per_source(num_nodes: usize, per_source: usize, seed: u64) -> ActivePairs {
        assert!(num_nodes >= 2, "need at least two nodes");
        assert!(per_source < num_nodes, "a source has at most n - 1 destinations");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xac7_1fe5);
        let mut dsts = Vec::with_capacity(num_nodes * per_source);
        let mut src_offsets = Vec::with_capacity(num_nodes + 1);
        src_offsets.push(0);
        // Stamp array instead of a per-source hash set: `picked[d] == s + 1`
        // means destination `d` is already taken for source `s`.
        let mut picked = vec![0usize; num_nodes];
        let mut chosen = Vec::with_capacity(per_source);
        for s in 0..num_nodes {
            chosen.clear();
            while chosen.len() < per_source {
                let mut d = rng.gen_range(0..num_nodes - 1);
                if d >= s {
                    d += 1;
                }
                if picked[d] != s + 1 {
                    picked[d] = s + 1;
                    chosen.push(d as u32);
                }
            }
            chosen.sort_unstable();
            dsts.extend_from_slice(&chosen);
            src_offsets.push(dsts.len());
        }
        ActivePairs { num_nodes, dsts, src_offsets }
    }

    /// [`ActivePairs::sample_per_source`] restricted to the first
    /// `active_nodes` nodes: sources and destinations are drawn only from
    /// `0..active_nodes`, but the index is sized for a `num_nodes`-node
    /// network.  Two-tier fabrics use this — traffic originates and
    /// terminates at ToRs (the node-id prefix) while spine/aggregation
    /// switches only forward.
    pub fn sample_among(
        num_nodes: usize,
        active_nodes: usize,
        per_source: usize,
        seed: u64,
    ) -> ActivePairs {
        assert!(active_nodes >= 2, "need at least two traffic-bearing nodes");
        assert!(active_nodes <= num_nodes, "traffic-bearing nodes are a prefix of the network");
        assert!(per_source < active_nodes, "a source has at most active_nodes - 1 destinations");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xac7_1fe5);
        let mut dsts = Vec::with_capacity(active_nodes * per_source);
        let mut src_offsets = Vec::with_capacity(num_nodes + 1);
        src_offsets.push(0);
        let mut picked = vec![0usize; active_nodes];
        let mut chosen = Vec::with_capacity(per_source);
        for s in 0..active_nodes {
            chosen.clear();
            while chosen.len() < per_source {
                let mut d = rng.gen_range(0..active_nodes - 1);
                if d >= s {
                    d += 1;
                }
                if picked[d] != s + 1 {
                    picked[d] = s + 1;
                    chosen.push(d as u32);
                }
            }
            chosen.sort_unstable();
            dsts.extend_from_slice(&chosen);
            src_offsets.push(dsts.len());
        }
        for _ in active_nodes..num_nodes {
            src_offsets.push(dsts.len());
        }
        ActivePairs { num_nodes, dsts, src_offsets }
    }

    /// Number of active pairs (`nnz`).
    #[inline]
    pub fn len(&self) -> usize {
        self.dsts.len()
    }

    /// `true` when no pair is active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dsts.is_empty()
    }

    /// Number of nodes of the underlying network.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of pairs of the dense universe (`n · (n − 1)`).
    #[inline]
    pub fn num_total_pairs(&self) -> usize {
        self.num_nodes * self.num_nodes.saturating_sub(1)
    }

    /// `true` when every off-diagonal pair is active (the dense universe).
    #[inline]
    pub fn is_all(&self) -> bool {
        self.len() == self.num_total_pairs()
    }

    /// Fraction of the dense universe that is active.
    pub fn density(&self) -> f64 {
        if self.num_total_pairs() == 0 {
            0.0
        } else {
            self.len() as f64 / self.num_total_pairs() as f64
        }
    }

    /// The slot range of source `s`.
    #[inline]
    pub fn source_range(&self, s: usize) -> std::ops::Range<usize> {
        self.src_offsets[s]..self.src_offsets[s + 1]
    }

    /// The (source, destination) pair stored at `slot`.
    pub fn pair(&self, slot: usize) -> (usize, usize) {
        let s = self.src_offsets.partition_point(|&o| o <= slot) - 1;
        (s, self.dsts[slot] as usize)
    }

    /// The slot of pair `(src, dst)`, or `None` if the pair is inactive.
    #[inline]
    pub fn slot(&self, src: usize, dst: usize) -> Option<usize> {
        if src == dst || src >= self.num_nodes || dst >= self.num_nodes {
            return None;
        }
        if self.is_all() {
            // Dense universe: the slot is the flatten_pairs position.
            return Some(src * (self.num_nodes - 1) + dst - usize::from(dst > src));
        }
        let range = self.source_range(src);
        let dsts = &self.dsts[range.clone()];
        dsts.binary_search(&(dst as u32)).ok().map(|i| range.start + i)
    }

    /// Iterates `(slot, source, destination)` in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.num_nodes).flat_map(move |s| {
            self.source_range(s).map(move |slot| (slot, s, self.dsts[slot] as usize))
        })
    }

    /// Position of each active pair in the dense `flatten_pairs` ordering
    /// (`s · (n − 1) + d − [d > s]`), in slot order — the scatter map from a
    /// sparse column into a full-length pair buffer.
    pub fn flat_pair_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter().map(move |(_, s, d)| s * (self.num_nodes - 1) + d - usize::from(d > s))
    }

    /// The active pairs as `(usize, usize)` tuples in slot order.
    pub fn node_pairs(&self) -> Vec<(usize, usize)> {
        self.iter().map(|(_, s, d)| (s, d)).collect()
    }

    /// Approximate heap footprint of the index itself, in bytes.
    pub fn index_bytes(&self) -> usize {
        self.dsts.len() * std::mem::size_of::<u32>()
            + self.src_offsets.len() * std::mem::size_of::<usize>()
    }
}

/// One demand snapshot in columnar form: a value per active pair, aligned to
/// a shared [`ActivePairs`] index.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseDemand {
    active: Arc<ActivePairs>,
    values: Vec<f64>,
}

impl SparseDemand {
    /// An all-zero column over `active`.
    pub fn zeros(active: Arc<ActivePairs>) -> SparseDemand {
        let values = vec![0.0; active.len()];
        SparseDemand { active, values }
    }

    /// Builds a column from explicit per-slot values.  Negative or
    /// non-finite entries are rejected, mirroring `DemandMatrix::from_dense`.
    pub fn from_values(active: Arc<ActivePairs>, values: Vec<f64>) -> Result<Self, MatrixError> {
        if values.len() != active.len() {
            return Err(MatrixError::WrongLength { expected: active.len(), got: values.len() });
        }
        for (idx, v) in values.iter().enumerate() {
            if !v.is_finite() || *v < 0.0 {
                return Err(MatrixError::InvalidDemand { index: idx, value: *v });
            }
        }
        Ok(SparseDemand { active, values })
    }

    /// Gathers a dense matrix onto `active`.
    ///
    /// Panics if the matrix carries demand on a pair outside the index —
    /// a conversion must never silently drop traffic.
    pub fn from_matrix(matrix: &DemandMatrix, active: &Arc<ActivePairs>) -> SparseDemand {
        assert_eq!(matrix.num_nodes(), active.num_nodes(), "node counts must match");
        let n = matrix.num_nodes();
        let mut values = vec![0.0; active.len()];
        for (slot, s, d) in active.iter() {
            values[slot] = matrix.get(s, d);
        }
        if !active.is_all() {
            for s in 0..n {
                for d in 0..n {
                    if s != d && matrix.get(s, d) != 0.0 && active.slot(s, d).is_none() {
                        panic!("demand {} on inactive pair ({s}, {d})", matrix.get(s, d));
                    }
                }
            }
        }
        SparseDemand { active: Arc::clone(active), values }
    }

    /// Densifies the column (the adapter direction; exact).
    pub fn to_matrix(&self) -> DemandMatrix {
        let mut m = DemandMatrix::zeros(self.active.num_nodes());
        for (slot, s, d) in self.active.iter() {
            m.set(s, d, self.values[slot]);
        }
        m
    }

    /// Scatters the column into a full-length `flatten_pairs`-order buffer
    /// (inactive pairs are zeroed) — the bridge into dense-universe
    /// consumers such as a full [`PathSet`]-shaped LP.
    pub fn scatter_pairs_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.active.num_total_pairs(), "one slot per SD pair is required");
        out.fill(0.0);
        for (slot, flat) in self.active.flat_pair_ids().enumerate() {
            out[flat] = self.values[slot];
        }
    }

    /// The shared pair index.
    #[inline]
    pub fn active(&self) -> &Arc<ActivePairs> {
        &self.active
    }

    /// Number of active pairs (`nnz`), the length of [`Self::values`].
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the column has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of nodes of the underlying network.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.active.num_nodes()
    }

    /// Demand from `src` to `dst` (0 for inactive pairs).
    pub fn get(&self, src: usize, dst: usize) -> f64 {
        self.active.slot(src, dst).map(|slot| self.values[slot]).unwrap_or(0.0)
    }

    /// Sets the demand at `slot` (negative values are clamped to zero,
    /// mirroring `DemandMatrix::set`).
    #[inline]
    pub fn set_slot(&mut self, slot: usize, value: f64) {
        self.values[slot] = value.max(0.0);
    }

    /// Adds `value` to the demand at `slot`, clamped at zero.
    #[inline]
    pub fn add_slot(&mut self, slot: usize, value: f64) {
        self.values[slot] = (self.values[slot] + value).max(0.0);
    }

    /// The value column in slot order.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the value column.  Callers must keep entries
    /// non-negative and finite (use [`Self::set_slot`] when in doubt).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    fn assert_same_universe(&self, other: &SparseDemand) {
        assert!(
            Arc::ptr_eq(&self.active, &other.active) || self.active == other.active,
            "sparse demands must share one ActivePairs index"
        );
    }

    /// Total demand over all pairs.
    pub fn total(&self) -> f64 {
        ops::total(&self.values)
    }

    /// Largest single demand entry.
    pub fn max_entry(&self) -> f64 {
        ops::max_entry(&self.values)
    }

    /// Copies another column's demands into this one without reallocating.
    pub fn copy_from(&mut self, other: &SparseDemand) {
        self.assert_same_universe(other);
        self.values.copy_from_slice(&other.values);
    }

    /// In-place EWMA blend `self ← (1 − α)·self + α·other`, clamped at zero.
    pub fn ewma_blend(&mut self, alpha: f64, other: &SparseDemand) {
        self.assert_same_universe(other);
        ops::ewma_blend(&mut self.values, alpha, &other.values);
    }

    /// Element-wise maximum of two columns.
    pub fn element_max(&self, other: &SparseDemand) -> SparseDemand {
        self.assert_same_universe(other);
        let mut values = self.values.clone();
        ops::max_assign(&mut values, &other.values);
        SparseDemand { active: Arc::clone(&self.active), values }
    }

    /// Per-entry linear combination `self + scale · other`, clamped at zero.
    pub fn axpy(&self, scale: f64, other: &SparseDemand) -> SparseDemand {
        self.assert_same_universe(other);
        SparseDemand {
            active: Arc::clone(&self.active),
            values: ops::axpy_clamped(&self.values, scale, &other.values),
        }
    }

    /// Scales every demand by `factor` (clamped at zero).
    pub fn scaled(&self, factor: f64) -> SparseDemand {
        SparseDemand {
            active: Arc::clone(&self.active),
            values: ops::scale_clamped(&self.values, factor),
        }
    }

    /// Cosine similarity between two columns over the same index.
    pub fn cosine_similarity(&self, other: &SparseDemand) -> f64 {
        self.assert_same_universe(other);
        ops::cosine_similarity(&self.values, &other.values)
    }
}

/// A time-ordered series of demand columns over one shared pair index — the
/// sparse counterpart of [`TrafficTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTrace {
    name: String,
    interval_seconds: f64,
    active: Arc<ActivePairs>,
    columns: Vec<SparseDemand>,
}

impl SparseTrace {
    /// Builds a trace.  Every column must share the index (`Arc` identity or
    /// structural equality).
    pub fn new(
        name: impl Into<String>,
        interval_seconds: f64,
        active: Arc<ActivePairs>,
        columns: Vec<SparseDemand>,
    ) -> SparseTrace {
        for c in &columns {
            assert!(
                Arc::ptr_eq(c.active(), &active) || **c.active() == *active,
                "all columns of a sparse trace must share one ActivePairs index"
            );
        }
        SparseTrace { name: name.into(), interval_seconds, active, columns }
    }

    /// Converts a dense trace onto the union support of its snapshots —
    /// exact, and the adapter direction the WAN scenarios use.
    pub fn from_trace(trace: &TrafficTrace) -> SparseTrace {
        let active = Arc::new(ActivePairs::from_trace_support(trace));
        let columns =
            trace.matrices().iter().map(|m| SparseDemand::from_matrix(m, &active)).collect();
        SparseTrace {
            name: trace.name().to_string(),
            interval_seconds: trace.interval_seconds(),
            active,
            columns,
        }
    }

    /// Densifies the whole series (exact).
    pub fn to_trace(&self) -> TrafficTrace {
        TrafficTrace::new(
            self.name.clone(),
            self.interval_seconds,
            self.columns.iter().map(|c| c.to_matrix()).collect(),
        )
    }

    /// Human-readable trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Aggregation interval in seconds.
    pub fn interval_seconds(&self) -> f64 {
        self.interval_seconds
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` if the trace has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Number of nodes of the underlying network.
    pub fn num_nodes(&self) -> usize {
        self.active.num_nodes()
    }

    /// The shared pair index.
    pub fn active(&self) -> &Arc<ActivePairs> {
        &self.active
    }

    /// Number of active pairs per snapshot.
    pub fn nnz(&self) -> usize {
        self.active.len()
    }

    /// The column at snapshot `t`.
    pub fn snapshot(&self, t: usize) -> &SparseDemand {
        &self.columns[t]
    }

    /// All columns.
    pub fn snapshots(&self) -> &[SparseDemand] {
        &self.columns
    }

    /// Appends a column (must share the index).
    pub fn push(&mut self, column: SparseDemand) {
        assert!(
            Arc::ptr_eq(column.active(), &self.active) || **column.active() == *self.active,
            "pushed column must share the trace's ActivePairs index"
        );
        self.columns.push(column);
    }

    /// A sub-trace covering snapshots `range` (columns cloned, index shared).
    pub fn slice(&self, range: std::ops::Range<usize>) -> SparseTrace {
        SparseTrace {
            name: self.name.clone(),
            interval_seconds: self.interval_seconds,
            active: Arc::clone(&self.active),
            columns: self.columns[range].to_vec(),
        }
    }

    /// Heap bytes spent on demand values across the whole series (the number
    /// the large-fabric acceptance check reports: proportional to `nnz`, not
    /// `N²`).
    pub fn demand_storage_bytes(&self) -> usize {
        self.columns.len() * self.nnz() * std::mem::size_of::<f64>() + self.active.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_matrix() -> DemandMatrix {
        let mut m = DemandMatrix::zeros(4);
        m.set(0, 1, 1.5);
        m.set(0, 3, 2.5);
        m.set(2, 1, 4.0);
        m.set(3, 0, 0.25);
        m
    }

    #[test]
    fn all_pairs_matches_flatten_order() {
        let a = ActivePairs::all(3);
        assert_eq!(a.len(), 6);
        assert!(a.is_all());
        let pairs: Vec<_> = a.node_pairs();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]);
        let flats: Vec<_> = a.flat_pair_ids().collect();
        assert_eq!(flats, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let a = ActivePairs::from_pairs(4, &[(2, 1), (0, 3), (0, 1), (2, 1)]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.node_pairs(), vec![(0, 1), (0, 3), (2, 1)]);
        assert_eq!(a.slot(0, 3), Some(1));
        assert_eq!(a.slot(2, 1), Some(2));
        assert_eq!(a.slot(1, 2), None);
        assert_eq!(a.slot(0, 0), None);
        assert_eq!(a.pair(1), (0, 3));
        assert!(!a.is_all());
        assert!(a.density() > 0.0 && a.density() < 1.0);
    }

    #[test]
    #[should_panic(expected = "diagonal pair")]
    fn from_pairs_rejects_diagonal() {
        ActivePairs::from_pairs(3, &[(1, 1)]);
    }

    #[test]
    fn support_and_roundtrip_are_exact() {
        let m = demo_matrix();
        let active = Arc::new(ActivePairs::from_matrix_support(&m));
        assert_eq!(active.len(), 4);
        let sd = SparseDemand::from_matrix(&m, &active);
        assert_eq!(sd.to_matrix(), m);
        assert_eq!(sd.get(0, 3), 2.5);
        assert_eq!(sd.get(1, 0), 0.0);
        assert_eq!(sd.total().to_bits(), m.total().to_bits());
        assert_eq!(sd.max_entry().to_bits(), m.max_entry().to_bits());
    }

    #[test]
    #[should_panic(expected = "inactive pair")]
    fn gather_refuses_to_drop_traffic() {
        let m = demo_matrix();
        let active = Arc::new(ActivePairs::from_pairs(4, &[(0, 1)]));
        SparseDemand::from_matrix(&m, &active);
    }

    #[test]
    fn scatter_matches_dense_flatten() {
        let m = demo_matrix();
        let active = Arc::new(ActivePairs::from_matrix_support(&m));
        let sd = SparseDemand::from_matrix(&m, &active);
        let mut scattered = vec![9.9; m.num_pairs()];
        sd.scatter_pairs_into(&mut scattered);
        assert_eq!(scattered, m.flatten_pairs());
    }

    #[test]
    fn columnar_ops_mirror_matrix_ops() {
        let m = demo_matrix();
        let other = m.scaled(0.5);
        let active = Arc::new(ActivePairs::from_matrix_support(&m));
        let a = SparseDemand::from_matrix(&m, &active);
        let b = SparseDemand::from_matrix(&other, &active);

        let mut blended = a.clone();
        blended.ewma_blend(0.3, &b);
        let mut dense_blended = m.clone();
        dense_blended.ewma_blend(0.3, &other);
        assert_eq!(blended.to_matrix(), dense_blended);

        assert_eq!(a.element_max(&b).to_matrix(), m.element_max(&other));
        assert_eq!(a.axpy(2.0, &b).to_matrix(), m.axpy(2.0, &other));
        assert_eq!(a.scaled(3.0).to_matrix(), m.scaled(3.0));
        assert_eq!(a.cosine_similarity(&b).to_bits(), m.cosine_similarity(&other).to_bits());

        let mut c = SparseDemand::zeros(Arc::clone(&active));
        c.copy_from(&a);
        assert_eq!(c, a);
        c.set_slot(0, -1.0);
        assert_eq!(c.values()[0], 0.0);
        c.add_slot(0, 2.0);
        assert_eq!(c.values()[0], 2.0);
    }

    #[test]
    fn sample_per_source_is_deterministic_and_sparse() {
        let a = ActivePairs::sample_per_source(64, 5, 7);
        let b = ActivePairs::sample_per_source(64, 5, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64 * 5);
        for (_, s, d) in a.iter() {
            assert_ne!(s, d);
            assert!(d < 64);
        }
        // Destinations are sorted within a source (the CSR invariant).
        for s in 0..64 {
            let range = a.source_range(s);
            let dsts: Vec<_> = range.map(|slot| a.pair(slot).1).collect();
            let mut sorted = dsts.clone();
            sorted.sort_unstable();
            assert_eq!(dsts, sorted);
        }
        let c = ActivePairs::sample_per_source(64, 5, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_among_confines_pairs_to_the_tor_prefix() {
        // With every node traffic-bearing, sample_among consumes the same
        // RNG stream as sample_per_source.
        let full = ActivePairs::sample_among(64, 64, 5, 7);
        assert_eq!(full, ActivePairs::sample_per_source(64, 5, 7));
        // With forwarding-only nodes appended (a two-tier fabric's aggs),
        // pairs stay among the first `active_nodes` ids.
        let fabric = ActivePairs::sample_among(72, 64, 5, 7);
        assert_eq!(fabric.num_nodes(), 72);
        assert_eq!(fabric.len(), 64 * 5);
        for (_, s, d) in fabric.iter() {
            assert!(s < 64 && d < 64);
        }
        for agg in 64..72 {
            assert_eq!(fabric.source_range(agg).len(), 0);
        }
    }

    #[test]
    fn sparse_trace_roundtrip_and_storage() {
        let matrices: Vec<DemandMatrix> = (1..5)
            .map(|t| {
                let mut m = DemandMatrix::zeros(5);
                m.set(0, 1, t as f64);
                m.set(3, 2, 2.0 * t as f64);
                m
            })
            .collect();
        let dense = TrafficTrace::new("demo", 60.0, matrices);
        let sparse = SparseTrace::from_trace(&dense);
        assert_eq!(sparse.len(), 4);
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.num_nodes(), 5);
        assert_eq!(sparse.to_trace(), dense);
        assert_eq!(sparse.slice(1..3).len(), 2);
        assert!(sparse.demand_storage_bytes() < 4 * 20 * 8);
        let mut grown = sparse.clone();
        grown.push(SparseDemand::zeros(Arc::clone(sparse.active())));
        assert_eq!(grown.len(), 5);
    }

    #[test]
    fn from_values_validates() {
        let active = Arc::new(ActivePairs::all(3));
        assert!(SparseDemand::from_values(Arc::clone(&active), vec![0.0; 5]).is_err());
        assert!(SparseDemand::from_values(Arc::clone(&active), vec![-1.0; 6]).is_err());
        assert!(SparseDemand::from_values(Arc::clone(&active), vec![f64::NAN; 6]).is_err());
        assert!(SparseDemand::from_values(active, vec![1.0; 6]).is_ok());
    }
}
