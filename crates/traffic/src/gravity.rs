//! Gravity-model traffic generation (§5.1 of the paper).
//!
//! For the UsCarrier and Cogentco topologies the paper has no public traces and
//! generates synthetic traffic with a gravity model [Roughan et al.]: the
//! demand between `s` and `d` is proportional to the product of the two nodes'
//! "masses".  We use each node's total adjacent capacity as its mass, which is
//! the standard choice, and add a small amount of temporally smooth noise so
//! the trace is not perfectly constant (the paper notes gravity traffic is very
//! stable and has no bursts, which is exactly the property we preserve).

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use figret_topology::Graph;

use crate::matrix::{DemandMatrix, TrafficTrace};
use crate::sparse::{ActivePairs, SparseDemand, SparseTrace};

/// Parameters for the gravity-model generator.
#[derive(Debug, Clone)]
pub struct GravityConfig {
    /// Number of snapshots to generate.
    pub num_snapshots: usize,
    /// Aggregation interval in seconds (metadata only).
    pub interval_seconds: f64,
    /// Fraction of total network capacity offered as traffic (0..1).  The
    /// paper's WAN traces keep links moderately loaded; 0.2 is a sensible
    /// default that keeps the optimal MLU well below 1.
    pub load_factor: f64,
    /// Relative amplitude of the smooth temporal modulation (diurnal-style).
    pub modulation: f64,
    /// Relative standard deviation of per-snapshot multiplicative noise.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GravityConfig {
    fn default() -> Self {
        GravityConfig {
            num_snapshots: 400,
            interval_seconds: 900.0,
            load_factor: 0.2,
            modulation: 0.15,
            noise: 0.03,
            seed: 11,
        }
    }
}

/// The static gravity demand matrix for a graph: `D_sd ∝ mass(s) * mass(d)`,
/// scaled so the total demand equals `load_factor * total_capacity / 2`.
pub fn gravity_matrix(graph: &Graph, load_factor: f64) -> DemandMatrix {
    let n = graph.num_nodes();
    let mut mass = vec![0.0f64; n];
    for (_, e) in graph.edges() {
        mass[e.src.index()] += e.capacity;
    }
    let total_mass: f64 = mass.iter().sum();
    let mut m = DemandMatrix::zeros(n);
    if total_mass <= 0.0 {
        return m;
    }
    // Unnormalized gravity weights.
    let mut weight_sum = 0.0;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                weight_sum += mass[s] * mass[d];
            }
        }
    }
    // Offered load: a fraction of the total (directed) capacity.
    let offered = load_factor * graph.total_capacity() / 2.0;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                m.set(s, d, offered * mass[s] * mass[d] / weight_sum);
            }
        }
    }
    m
}

/// The gravity base restricted to an active pair set: `D_sd ∝ mass(s) ·
/// mass(d)` over the active pairs only, scaled so the total demand equals
/// `load_factor * total_capacity / 2`.  This is the base rate column the
/// fabric-scale online streams perturb — the same construction as
/// [`gravity_matrix`], but `O(nnz)` instead of `O(N²)`.
pub fn gravity_column(graph: &Graph, load_factor: f64, active: &Arc<ActivePairs>) -> SparseDemand {
    let n = graph.num_nodes();
    assert_eq!(active.num_nodes(), n, "pair index must match the graph");
    let mut mass = vec![0.0f64; n];
    for (_, e) in graph.edges() {
        mass[e.src.index()] += e.capacity;
    }
    let total_mass: f64 = mass.iter().sum();
    let mut col = SparseDemand::zeros(Arc::clone(active));
    if total_mass <= 0.0 {
        return col;
    }
    let mut weight_sum = 0.0;
    for (_, s, d) in active.iter() {
        weight_sum += mass[s] * mass[d];
    }
    if weight_sum <= 0.0 {
        return col;
    }
    let offered = load_factor * graph.total_capacity() / 2.0;
    for (slot, s, d) in active.iter() {
        col.set_slot(slot, offered * mass[s] * mass[d] / weight_sum);
    }
    col
}

/// Generates a gravity-model trace over the given graph.
pub fn gravity_trace(graph: &Graph, config: &GravityConfig) -> TrafficTrace {
    gravity_trace_sparse(graph, config).to_trace()
}

/// Columnar form of [`gravity_trace`] over the all-pairs index (gravity
/// demand is full by construction; the columnar form keeps one series type
/// flowing through the stack).  Bit-identical to the dense path.
pub fn gravity_trace_sparse(graph: &Graph, config: &GravityConfig) -> SparseTrace {
    let base = gravity_matrix(graph, config.load_factor);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x9a1_717);
    let active = Arc::new(ActivePairs::all(graph.num_nodes()));
    let base_slots = base.flatten_pairs();
    let mut columns = Vec::with_capacity(config.num_snapshots);
    // Period of the smooth modulation: one "day" spans 96 snapshots at a
    // 15-minute interval; reuse that shape regardless of the interval.
    let period = 96.0f64;
    for t in 0..config.num_snapshots {
        let phase = 2.0 * std::f64::consts::PI * (t as f64) / period;
        let season = 1.0 + config.modulation * phase.sin();
        let mut col = SparseDemand::zeros(Arc::clone(&active));
        for (slot, b) in base_slots.iter().enumerate() {
            let noise = 1.0 + config.noise * rng.gen_range(-1.0..1.0);
            col.set_slot(slot, b * season * noise);
        }
        columns.push(col);
    }
    SparseTrace::new(format!("{}-gravity", graph.name()), config.interval_seconds, active, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_topology::{Topology, TopologySpec};

    #[test]
    fn gravity_matrix_is_proportional_to_masses() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        let m = gravity_matrix(&g, 0.2);
        assert!(m.total() > 0.0);
        // Total offered load equals load_factor * total_capacity / 2.
        let expected = 0.2 * g.total_capacity() / 2.0;
        assert!((m.total() - expected).abs() / expected < 1e-9);
        // Symmetric masses => roughly symmetric demands.
        assert!((m.get(0, 1) - m.get(1, 0)).abs() < 1e-6 * m.total());
    }

    #[test]
    fn gravity_trace_is_stable() {
        let g = TopologySpec::reduced(Topology::UsCarrier).build();
        let trace = gravity_trace(&g, &GravityConfig { num_snapshots: 50, ..Default::default() });
        assert_eq!(trace.len(), 50);
        // Successive snapshots must be extremely similar (no bursts).
        for t in 1..trace.len() {
            let sim = trace.matrix(t).cosine_similarity(trace.matrix(t - 1));
            assert!(sim > 0.99, "gravity traffic must be stable, got similarity {sim}");
        }
    }

    #[test]
    fn gravity_column_matches_matrix_and_respects_restriction() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        let all = Arc::new(ActivePairs::all(g.num_nodes()));
        let col = gravity_column(&g, 0.2, &all);
        assert_eq!(col.to_matrix(), gravity_matrix(&g, 0.2));
        // Restricted to a sparse pattern, the offered load is preserved.
        let sparse = Arc::new(ActivePairs::sample_per_source(g.num_nodes(), 3, 5));
        let restricted = gravity_column(&g, 0.2, &sparse);
        let expected = 0.2 * g.total_capacity() / 2.0;
        assert!((restricted.total() - expected).abs() / expected < 1e-9);
        assert_eq!(restricted.len(), sparse.len());
    }

    #[test]
    fn gravity_trace_is_deterministic() {
        let g = TopologySpec::reduced(Topology::Cogentco).build();
        let cfg = GravityConfig { num_snapshots: 5, ..Default::default() };
        assert_eq!(gravity_trace(&g, &cfg), gravity_trace(&g, &cfg));
    }
}
