//! pFabric-style traffic generation (Poisson arrivals, web-search flow sizes).
//!
//! The paper describes the pFabric trace as "a Poisson arrival process.  When a
//! flow arrives, the source and destination nodes are chosen uniformly at
//! random from the different ToR switches.  The size of each flow is determined
//! randomly, adhering to the distribution outlined in the 'web search workload'
//! scenario" (§5.1).  We reproduce exactly that process and aggregate the flows
//! that arrive within each snapshot interval into a demand matrix.

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::matrix::TrafficTrace;
use crate::sparse::{ActivePairs, SparseDemand, SparseTrace};

/// The web-search flow-size distribution from the pFabric/DCTCP measurement
/// studies, expressed as CDF breakpoints `(flow size in MB, cumulative prob)`.
///
/// The distribution is heavy-tailed: ~50% of flows are below 100 KB but more
/// than 95% of the bytes come from flows above 1 MB.
const WEB_SEARCH_CDF: [(f64, f64); 9] = [
    (0.006, 0.15),
    (0.013, 0.30),
    (0.019, 0.40),
    (0.033, 0.53),
    (0.133, 0.60),
    (0.667, 0.70),
    (1.333, 0.80),
    (3.333, 0.90),
    (20.0, 1.00),
];

/// Samples one flow size (in MB) from the web-search CDF by inverse transform
/// with linear interpolation between breakpoints.
pub fn sample_web_search_flow_size(rng: &mut impl Rng) -> f64 {
    let u: f64 = rng.gen();
    let mut prev_size = 0.0;
    let mut prev_cum = 0.0;
    for &(size, cum) in WEB_SEARCH_CDF.iter() {
        if u <= cum {
            let frac = if cum > prev_cum { (u - prev_cum) / (cum - prev_cum) } else { 1.0 };
            return prev_size + frac * (size - prev_size);
        }
        prev_size = size;
        prev_cum = cum;
    }
    WEB_SEARCH_CDF.last().expect("CDF is non-empty").0
}

/// Parameters of the pFabric generator.
#[derive(Debug, Clone)]
pub struct PFabricConfig {
    /// Number of ToR switches.
    pub num_tors: usize,
    /// Number of snapshots.
    pub num_snapshots: usize,
    /// Aggregation interval in seconds.
    pub interval_seconds: f64,
    /// Mean flow arrival rate (flows per second across the whole fabric).
    pub arrival_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PFabricConfig {
    fn default() -> Self {
        PFabricConfig {
            num_tors: 9,
            num_snapshots: 800,
            interval_seconds: 60.0,
            arrival_rate: 40.0,
            seed: 55,
        }
    }
}

/// Samples a Poisson random variate with the given mean (Knuth's algorithm for
/// small means, normal approximation for large means).
fn sample_poisson(rng: &mut impl Rng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 64.0 {
        // Normal approximation.
        let z: f64 = {
            // Box-Muller
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        return (mean + z * mean.sqrt()).round().max(0.0) as usize;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Generates a pFabric trace: Poisson flow arrivals with web-search sizes,
/// uniformly random (source, destination) ToR pairs, aggregated per snapshot.
///
/// Demands are expressed as average rate over the snapshot (MB / interval).
pub fn pfabric_trace(config: &PFabricConfig) -> TrafficTrace {
    pfabric_trace_sparse(config).to_trace()
}

/// Columnar form of [`pfabric_trace`]: flows are scatter-added into one
/// column per snapshot over the all-pairs index (uniform pair selection
/// touches every pair eventually, so there is no sparse support to fix).
/// Bit-identical to the dense path.
pub fn pfabric_trace_sparse(config: &PFabricConfig) -> SparseTrace {
    assert!(config.num_tors >= 2, "need at least two ToRs");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xfab_0003);
    let n = config.num_tors;
    let active = Arc::new(ActivePairs::all(n));
    let mean_flows_per_snapshot = config.arrival_rate * config.interval_seconds;
    let mut columns = Vec::with_capacity(config.num_snapshots);
    for _t in 0..config.num_snapshots {
        let mut col = SparseDemand::zeros(Arc::clone(&active));
        let flows = sample_poisson(&mut rng, mean_flows_per_snapshot);
        for _ in 0..flows {
            let s = rng.gen_range(0..n);
            let mut d = rng.gen_range(0..n - 1);
            if d >= s {
                d += 1;
            }
            let size_mb = sample_web_search_flow_size(&mut rng);
            // Average rate contributed over the snapshot (MB per second * 8 -> Mb/s);
            // we keep MB/interval as the demand unit, consistent across snapshots.
            let slot = active.slot(s, d).expect("uniform pair selection is off-diagonal");
            col.add_slot(slot, size_mb);
        }
        columns.push(col);
    }
    SparseTrace::new("pFabric-websearch", config.interval_seconds, active, columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_sizes_follow_cdf_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples: Vec<f64> =
            (0..20_000).map(|_| sample_web_search_flow_size(&mut rng)).collect();
        let below_100kb =
            samples.iter().filter(|s| **s <= 0.1).count() as f64 / samples.len() as f64;
        // CDF says ~57% of flows are below ~100 KB.
        assert!((0.45..0.70).contains(&below_100kb), "fraction below 100KB = {below_100kb}");
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max <= 20.0 + 1e-9);
        assert!(samples.iter().all(|s| *s >= 0.0));
    }

    #[test]
    fn poisson_mean_is_roughly_right() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 3000;
        let mean = 12.0;
        let total: usize = (0..n).map(|_| sample_poisson(&mut rng, mean)).sum();
        let empirical = total as f64 / n as f64;
        assert!((empirical - mean).abs() < 0.5, "poisson mean off: {empirical}");
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        let big = sample_poisson(&mut rng, 1000.0);
        assert!((800..1200).contains(&big));
    }

    #[test]
    fn trace_has_uniform_pair_usage() {
        let t = pfabric_trace(&PFabricConfig { num_snapshots: 200, ..Default::default() });
        assert_eq!(t.len(), 200);
        assert_eq!(t.num_nodes(), 9);
        // Sum traffic per pair over the trace; uniform selection means no pair
        // should dominate by more than ~3x the median.
        let n = t.num_nodes();
        let mut per_pair = vec![0.0f64; n * n];
        for m in t.matrices() {
            for s in 0..n {
                for d in 0..n {
                    per_pair[s * n + d] += m.get(s, d);
                }
            }
        }
        let mut off_diag: Vec<f64> =
            (0..n * n).filter(|i| i / n != i % n).map(|i| per_pair[i]).collect();
        off_diag.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = off_diag[off_diag.len() / 2];
        let max = *off_diag.last().unwrap();
        assert!(
            max < 3.0 * median,
            "pair usage should be roughly uniform (max {max}, median {median})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PFabricConfig { num_snapshots: 10, ..Default::default() };
        assert_eq!(pfabric_trace(&cfg), pfabric_trace(&cfg));
    }
}
