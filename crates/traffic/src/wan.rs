//! GEANT-like WAN traffic generation.
//!
//! The public GEANT traces (15-minute aggregation over four months) are not
//! available offline, so this module generates synthetic WAN traffic with the
//! qualitative properties the paper measures on GEANT (Figures 2 and 4):
//!
//! * most source-destination pairs are very stable over time (cosine similarity
//!   with the recent history close to 1),
//! * a minority of pairs occasionally burst to several times their mean, which
//!   produces the low-similarity outliers visible in Figure 4, and
//! * per-pair variance is strongly heterogeneous (Figure 2a).
//!
//! The generator combines a gravity-model base matrix, a smooth diurnal
//! modulation, per-pair multiplicative noise, and per-pair Bernoulli bursts
//! whose probability and magnitude are drawn from heavy-tailed distributions so
//! that a few pairs dominate the burstiness.

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use figret_topology::Graph;

use crate::gravity::gravity_matrix;
use crate::matrix::TrafficTrace;
use crate::sparse::{ActivePairs, SparseDemand, SparseTrace};

/// Parameters of the WAN trace generator.
#[derive(Debug, Clone)]
pub struct WanTrafficConfig {
    /// Number of snapshots (the paper uses 500 demands for the motivation
    /// figures and several thousand for training).
    pub num_snapshots: usize,
    /// Aggregation interval in seconds (GEANT: 900 s).
    pub interval_seconds: f64,
    /// Fraction of the network capacity offered as average load.
    pub load_factor: f64,
    /// Amplitude of the diurnal modulation.
    pub diurnal_amplitude: f64,
    /// Per-snapshot relative noise applied to every pair.
    pub noise: f64,
    /// Fraction of SD pairs that are burst-prone.
    pub bursty_fraction: f64,
    /// Per-snapshot probability that a burst-prone pair bursts.
    pub burst_probability: f64,
    /// Multiplicative burst magnitude range `[low, high]`.
    pub burst_magnitude: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for WanTrafficConfig {
    fn default() -> Self {
        WanTrafficConfig {
            num_snapshots: 600,
            interval_seconds: 900.0,
            load_factor: 0.25,
            diurnal_amplitude: 0.25,
            noise: 0.08,
            bursty_fraction: 0.12,
            burst_probability: 0.02,
            burst_magnitude: (2.5, 6.0),
            seed: 21,
        }
    }
}

/// Per-pair traffic profile: mean scale, noise level and burst behaviour.
#[derive(Debug, Clone)]
struct PairProfile {
    mean: f64,
    noise: f64,
    burst_prob: f64,
    burst_low: f64,
    burst_high: f64,
}

/// Generates a GEANT-like WAN trace over `graph`.
///
/// WANs are small, so the dense [`TrafficTrace`] remains the primary
/// interface; the trace is assembled as columns over the all-pairs index
/// (see [`wan_trace_sparse`]) and densified at the end, bit-identical to
/// the pre-sparse implementation.
pub fn wan_trace(graph: &Graph, config: &WanTrafficConfig) -> TrafficTrace {
    wan_trace_sparse(graph, config).to_trace()
}

/// Columnar form of [`wan_trace`] over the all-pairs index (gravity bases
/// are full, so WAN traffic has no sparse support to exploit; the columnar
/// form exists so one snapshot series type flows through the whole stack).
pub fn wan_trace_sparse(graph: &Graph, config: &WanTrafficConfig) -> SparseTrace {
    let n = graph.num_nodes();
    let active = Arc::new(ActivePairs::all(n));
    let base = gravity_matrix(graph, config.load_factor);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x0007_ea57);

    // Assign per-pair profiles.  Burst-prone pairs are selected at random;
    // their mean traffic is also skewed so variance heterogeneity is large.
    let mut profiles: Vec<PairProfile> = Vec::with_capacity(active.len());
    for (_, s, d) in active.iter() {
        let bursty = rng.gen::<f64>() < config.bursty_fraction;
        // Log-normal-ish skew of the mean around the gravity value.
        let skew = (rng.gen::<f64>() * 2.0 - 1.0) * 0.6;
        let mean = base.get(s, d) * (1.0 + skew).max(0.1);
        profiles.push(PairProfile {
            mean,
            noise: config.noise * rng.gen_range(0.5..1.5),
            burst_prob: if bursty {
                config.burst_probability * rng.gen_range(0.5..2.0)
            } else {
                0.0
            },
            burst_low: config.burst_magnitude.0,
            burst_high: config.burst_magnitude.1,
        });
    }

    let period = 96.0f64; // one synthetic day at 15-minute snapshots
    let mut columns = Vec::with_capacity(config.num_snapshots);
    for t in 0..config.num_snapshots {
        let phase = 2.0 * std::f64::consts::PI * (t as f64) / period;
        let season = 1.0 + config.diurnal_amplitude * phase.sin();
        let mut col = SparseDemand::zeros(Arc::clone(&active));
        for (slot, p) in profiles.iter().enumerate() {
            let noise = 1.0 + p.noise * rng.gen_range(-1.0..1.0);
            let mut value = p.mean * season * noise;
            if p.burst_prob > 0.0 && rng.gen::<f64>() < p.burst_prob {
                value *= rng.gen_range(p.burst_low..p.burst_high);
            }
            col.set_slot(slot, value);
        }
        columns.push(col);
    }
    SparseTrace::new(format!("{}-wan", graph.name()), config.interval_seconds, active, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::per_pair_variance;
    use figret_topology::{Topology, TopologySpec};

    fn geant_trace(snapshots: usize) -> TrafficTrace {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        wan_trace(&g, &WanTrafficConfig { num_snapshots: snapshots, ..Default::default() })
    }

    #[test]
    fn trace_has_requested_shape() {
        let t = geant_trace(100);
        assert_eq!(t.len(), 100);
        assert_eq!(t.num_nodes(), 23);
        assert!(t.matrices().iter().all(|m| m.total() > 0.0));
    }

    #[test]
    fn most_snapshots_are_stable_but_bursts_exist() {
        let t = geant_trace(400);
        let mut sims = Vec::new();
        for i in 1..t.len() {
            sims.push(t.matrix(i).cosine_similarity(t.matrix(i - 1)));
        }
        sims.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sims[sims.len() / 2];
        assert!(median > 0.95, "WAN traffic should be mostly stable (median similarity {median})");
        // Max over the trace should exceed the mean noticeably => bursts present.
        let totals: Vec<f64> = t.matrices().iter().map(|m| m.max_entry()).collect();
        let mean: f64 = totals.iter().sum::<f64>() / totals.len() as f64;
        let max = totals.iter().cloned().fold(0.0, f64::max);
        assert!(max > 1.8 * mean, "bursts should create clear peaks (max {max}, mean {mean})");
    }

    #[test]
    fn variance_is_heterogeneous_across_pairs() {
        let t = geant_trace(300);
        let var = per_pair_variance(&t);
        let max = var.iter().cloned().fold(0.0, f64::max);
        let min_nonzero = var.iter().cloned().filter(|v| *v > 0.0).fold(f64::INFINITY, f64::min);
        assert!(
            max / min_nonzero > 10.0,
            "per-pair variance should span at least an order of magnitude"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(geant_trace(20), geant_trace(20));
    }
}
