//! Traffic statistics used throughout the paper's analysis.
//!
//! * per-pair variance (Figure 2, and the σ² weights of the FIGRET loss),
//! * windowed cosine-similarity analysis (Figure 4 and Figure 18),
//! * percentile summaries for candlestick plots,
//! * Spearman rank correlation (Table 5's train/test variance-ranking check).

use crate::matrix::TrafficTrace;
use crate::sparse::SparseTrace;

/// Per-SD-pair variance of the demands over the whole trace, in the
/// `flatten_pairs` ordering.
pub fn per_pair_variance(trace: &TrafficTrace) -> Vec<f64> {
    per_pair_variance_range(trace, 0..trace.len())
}

/// Per-SD-pair variance over a sub-range of snapshots (e.g. the training split,
/// which is what the FIGRET loss uses: `σ²_{D_sd, [1-T]}`).
pub fn per_pair_variance_range(trace: &TrafficTrace, range: std::ops::Range<usize>) -> Vec<f64> {
    dense_mean_var(trace, range).1
}

/// Per-SD-pair mean of the demands over a sub-range of snapshots.
pub fn per_pair_mean_range(trace: &TrafficTrace, range: std::ops::Range<usize>) -> Vec<f64> {
    dense_mean_var(trace, range).0
}

/// Flattens each snapshot once into a single reused buffer (no per-snapshot
/// allocation) and folds the mean/variance accumulators.
fn dense_mean_var(trace: &TrafficTrace, range: std::ops::Range<usize>) -> (Vec<f64>, Vec<f64>) {
    let n_pairs = trace.num_nodes() * trace.num_nodes().saturating_sub(1);
    let count = range.len();
    let mut mean = vec![0.0f64; n_pairs];
    if count == 0 {
        return (mean.clone(), mean);
    }
    let mut var = vec![0.0f64; n_pairs];
    let mut row = vec![0.0f64; n_pairs];
    for t in range.clone() {
        trace.matrix(t).flatten_pairs_into(&mut row);
        for (m, v) in mean.iter_mut().zip(&row) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= count as f64;
    }
    for t in range {
        trace.matrix(t).flatten_pairs_into(&mut row);
        for ((v, x), m) in var.iter_mut().zip(&row).zip(&mean) {
            let d = x - m;
            *v += d * d;
        }
    }
    for v in &mut var {
        *v /= count as f64;
    }
    (mean, var)
}

/// Per-SD-pair standard deviation over a sub-range of snapshots.
pub fn per_pair_std_range(trace: &TrafficTrace, range: std::ops::Range<usize>) -> Vec<f64> {
    per_pair_variance_range(trace, range).into_iter().map(f64::sqrt).collect()
}

/// Per-active-pair variance of a sparse series over a snapshot sub-range, in
/// slot order (length `nnz`) — the σ² weights of the FIGRET loss on
/// ToR-scale fabrics, computed without ever materializing `N²` vectors.
pub fn sparse_per_pair_variance_range(
    trace: &SparseTrace,
    range: std::ops::Range<usize>,
) -> Vec<f64> {
    sparse_mean_var(trace, range).1
}

/// Per-active-pair mean of a sparse series over a snapshot sub-range.
pub fn sparse_per_pair_mean_range(trace: &SparseTrace, range: std::ops::Range<usize>) -> Vec<f64> {
    sparse_mean_var(trace, range).0
}

fn sparse_mean_var(trace: &SparseTrace, range: std::ops::Range<usize>) -> (Vec<f64>, Vec<f64>) {
    let columns = &trace.snapshots()[range];
    let mut mean = vec![0.0f64; trace.nnz()];
    if columns.is_empty() {
        return (mean.clone(), mean);
    }
    for c in columns {
        for (m, v) in mean.iter_mut().zip(c.values()) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= columns.len() as f64;
    }
    let mut var = vec![0.0f64; trace.nnz()];
    for c in columns {
        for ((v, x), m) in var.iter_mut().zip(c.values()).zip(&mean) {
            let d = x - m;
            *v += d * d;
        }
    }
    for v in &mut var {
        *v /= columns.len() as f64;
    }
    (mean, var)
}

/// Summary statistics of a sample (used for the candlestick plots of Figure 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionSummary {
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
    /// Number of samples.
    pub count: usize,
}

impl DistributionSummary {
    /// Computes the summary of a sample.  Returns an all-zero summary for an
    /// empty sample.
    pub fn from_samples(samples: &[f64]) -> DistributionSummary {
        if samples.is_empty() {
            return DistributionSummary {
                min: 0.0,
                p25: 0.0,
                median: 0.0,
                p75: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
                mean: 0.0,
                count: 0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        DistributionSummary {
            min: sorted[0],
            p25: percentile(&sorted, 0.25),
            median: percentile(&sorted, 0.5),
            p75: percentile(&sorted, 0.75),
            p90: percentile(&sorted, 0.90),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
            mean,
            count: sorted.len(),
        }
    }
}

/// Percentile of a **sorted** sample with linear interpolation.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Windowed cosine-similarity analysis (Figure 4): for every snapshot `t >= window`,
/// compute the **maximum** cosine similarity between `D_t` and each of the
/// `window` preceding matrices ("find the TMs that most closely resemble this
/// currently-seen TM"), and summarize the distribution of those maxima.
pub fn cosine_similarity_analysis(trace: &TrafficTrace, window: usize) -> DistributionSummary {
    DistributionSummary::from_samples(&cosine_similarity_samples(trace, window))
}

/// The raw per-snapshot maximum cosine similarities used by
/// [`cosine_similarity_analysis`].
pub fn cosine_similarity_samples(trace: &TrafficTrace, window: usize) -> Vec<f64> {
    let mut samples = Vec::new();
    if trace.len() <= window || window == 0 {
        return samples;
    }
    for t in window..trace.len() {
        let current = trace.matrix(t);
        let best = (t - window..t)
            .map(|h| current.cosine_similarity(trace.matrix(h)))
            .fold(f64::NEG_INFINITY, f64::max);
        samples.push(best);
    }
    samples
}

/// Windowed cosine-similarity analysis of a sparse series (the Figure 4
/// statistic at fabric scale, `O(nnz)` per comparison).
pub fn sparse_cosine_similarity_analysis(
    trace: &SparseTrace,
    window: usize,
) -> DistributionSummary {
    DistributionSummary::from_samples(&sparse_cosine_similarity_samples(trace, window))
}

/// The raw per-snapshot maximum cosine similarities of a sparse series.
pub fn sparse_cosine_similarity_samples(trace: &SparseTrace, window: usize) -> Vec<f64> {
    let mut samples = Vec::new();
    if trace.len() <= window || window == 0 {
        return samples;
    }
    for t in window..trace.len() {
        let current = trace.snapshot(t);
        let best = (t - window..t)
            .map(|h| current.cosine_similarity(trace.snapshot(h)))
            .fold(f64::NEG_INFINITY, f64::max);
        samples.push(best);
    }
    samples
}

/// Spearman rank correlation coefficient between two samples of equal length.
///
/// Used in §5.4 to check how consistent the per-pair variance ranking is
/// between the training and test portions of a trace.
pub fn spearman_rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must have equal length");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    // Pearson correlation of the ranks (handles ties via average ranks).
    let mean_a = ra.iter().sum::<f64>() / n as f64;
    let mean_b = rb.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..n {
        let da = ra[i] - mean_a;
        let db = rb[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// Average ranks (1-based) with ties receiving the mean of their positions.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("values must not contain NaN"));
    let mut out = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{DemandMatrix, TrafficTrace};

    fn small_trace() -> TrafficTrace {
        let m = |a: f64, b: f64| DemandMatrix::from_pairs(2, &[a, b]).unwrap();
        TrafficTrace::new("t", 1.0, vec![m(1.0, 10.0), m(1.0, 20.0), m(1.0, 30.0), m(1.0, 40.0)])
    }

    #[test]
    fn variance_identifies_the_bursty_pair() {
        let t = small_trace();
        let var = per_pair_variance(&t);
        assert_eq!(var.len(), 2);
        assert!(var[0] < 1e-12, "pair 0 is constant");
        assert!(var[1] > 100.0, "pair 1 varies a lot");
        let mean = per_pair_mean_range(&t, 0..t.len());
        assert!((mean[0] - 1.0).abs() < 1e-12);
        assert!((mean[1] - 25.0).abs() < 1e-12);
        let std = per_pair_std_range(&t, 0..t.len());
        assert!((std[1] - var[1].sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_range_respects_bounds() {
        let t = small_trace();
        let var01 = per_pair_variance_range(&t, 0..2);
        assert!((var01[1] - 25.0).abs() < 1e-9); // values 10, 20 -> var 25
        let empty = per_pair_variance_range(&t, 0..0);
        assert!(empty.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 5.0);
        assert_eq!(percentile(&sorted, 0.5), 3.0);
        assert!((percentile(&sorted, 0.25) - 2.0).abs() < 1e-12);
        assert_eq!(percentile(&[7.0], 0.3), 7.0);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = DistributionSummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn cosine_analysis_high_for_constant_traffic() {
        let m = DemandMatrix::from_pairs(2, &[3.0, 4.0]).unwrap();
        let t = TrafficTrace::new("const", 1.0, vec![m.clone(); 20]);
        let s = cosine_similarity_analysis(&t, 5);
        assert_eq!(s.count, 15);
        assert!((s.median - 1.0).abs() < 1e-12);
        assert!(cosine_similarity_samples(&t, 0).is_empty());
        assert!(cosine_similarity_samples(&t, 25).is_empty());
    }

    #[test]
    fn sparse_stats_match_dense_on_active_slots() {
        let t = small_trace();
        let sparse = crate::sparse::SparseTrace::from_trace(&t);
        let dense_var = per_pair_variance_range(&t, 0..t.len());
        let dense_mean = per_pair_mean_range(&t, 0..t.len());
        let sparse_var = sparse_per_pair_variance_range(&sparse, 0..sparse.len());
        let sparse_mean = sparse_per_pair_mean_range(&sparse, 0..sparse.len());
        for (slot, flat) in sparse.active().flat_pair_ids().enumerate() {
            assert_eq!(sparse_var[slot].to_bits(), dense_var[flat].to_bits());
            assert_eq!(sparse_mean[slot].to_bits(), dense_mean[flat].to_bits());
        }
        let dense_cos = cosine_similarity_samples(&t, 2);
        let sparse_cos = sparse_cosine_similarity_samples(&sparse, 2);
        assert_eq!(dense_cos.len(), sparse_cos.len());
        for (a, b) in dense_cos.iter().zip(&sparse_cos) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(
            sparse_cosine_similarity_analysis(&sparse, 2).count,
            cosine_similarity_analysis(&t, 2).count
        );
    }

    #[test]
    fn spearman_correlation_properties() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let rev: Vec<f64> = b.iter().rev().cloned().collect();
        assert!((spearman_rank_correlation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((spearman_rank_correlation(&a, &rev) + 1.0).abs() < 1e-12);
        let constant = vec![1.0; 5];
        assert_eq!(spearman_rank_correlation(&a, &constant), 0.0);
        assert_eq!(spearman_rank_correlation(&[1.0], &[2.0]), 1.0);
        // Ties get average ranks and keep the coefficient within [-1, 1].
        let with_ties = vec![1.0, 1.0, 2.0, 3.0, 3.0];
        let r = spearman_rank_correlation(&with_ties, &a);
        assert!(r > 0.8 && r <= 1.0);
    }
}
