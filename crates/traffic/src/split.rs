//! Dataset splitting and history-window construction.
//!
//! FIGRET and DOTE map a window of `H` past demand matrices to a TE
//! configuration for the next snapshot (§4.3).  This module turns a
//! [`TrafficTrace`] into (history, target) samples and provides the
//! chronological train/test splits used in §5 (first 75% train, last 25% test;
//! or the 0-25% / 25-50% / 50-75% segments of Table 4).

use crate::matrix::{DemandMatrix, TrafficTrace};

/// A chronological split of a trace into a training range and a test range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Snapshot indices used for training.
    pub train: std::ops::Range<usize>,
    /// Snapshot indices used for testing.
    pub test: std::ops::Range<usize>,
}

impl TrainTestSplit {
    /// The paper's default split: first `train_fraction` of the trace for
    /// training, the rest for testing.
    pub fn chronological(trace_len: usize, train_fraction: f64) -> TrainTestSplit {
        assert!((0.0..1.0).contains(&train_fraction), "train fraction must be in [0, 1)");
        let cut = ((trace_len as f64) * train_fraction).floor() as usize;
        TrainTestSplit { train: 0..cut, test: cut..trace_len }
    }

    /// Table 4's drift experiment: train on `[segment_start, segment_end)`
    /// fractions of the trace, test on the final `1 - test_fraction_start`.
    pub fn segment(
        trace_len: usize,
        segment_start: f64,
        segment_end: f64,
        test_fraction_start: f64,
    ) -> TrainTestSplit {
        assert!(segment_start < segment_end, "segment must be non-empty");
        assert!(segment_end <= test_fraction_start, "training segment must precede the test range");
        let s = ((trace_len as f64) * segment_start).floor() as usize;
        let e = ((trace_len as f64) * segment_end).floor() as usize;
        let t = ((trace_len as f64) * test_fraction_start).floor() as usize;
        TrainTestSplit { train: s..e, test: t..trace_len }
    }
}

/// One supervised sample: `H` history matrices and the realized next matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Index (in the original trace) of the target snapshot.
    pub target_index: usize,
    /// Flattened history: `history[h]` is the matrix `H - h` steps before the
    /// target (oldest first).
    pub history: Vec<DemandMatrix>,
    /// The realized demand matrix the TE configuration will face.
    pub target: DemandMatrix,
}

impl WindowSample {
    /// Flattens the history into a single feature vector of length
    /// `H * num_pairs`, oldest snapshot first — the DNN input of §4.3.
    pub fn features(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.history.len() * self.target.num_pairs());
        for m in &self.history {
            out.extend(m.flatten_pairs());
        }
        out
    }
}

/// A dataset of history-window samples over a trace range.
#[derive(Debug, Clone)]
pub struct WindowDataset {
    /// Window length `H`.
    pub window: usize,
    /// The samples, in chronological order.
    pub samples: Vec<WindowSample>,
}

impl WindowDataset {
    /// Builds all samples whose target index lies in `range` and whose full
    /// history window also lies inside the trace.
    pub fn from_trace(
        trace: &TrafficTrace,
        window: usize,
        range: std::ops::Range<usize>,
    ) -> WindowDataset {
        assert!(window >= 1, "window must be at least 1");
        let mut samples = Vec::new();
        for t in range {
            if t < window || t >= trace.len() {
                continue;
            }
            let history: Vec<DemandMatrix> =
                (t - window..t).map(|h| trace.matrix(h).clone()).collect();
            samples.push(WindowSample {
                target_index: t,
                history,
                target: trace.matrix(t).clone(),
            });
        }
        WindowDataset { window, samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Dimension of the flattened feature vector (`H * num_pairs`), or 0 if empty.
    pub fn feature_dim(&self) -> usize {
        self.samples.first().map(|s| s.history.len() * s.target.num_pairs()).unwrap_or(0)
    }
}

/// A history-window dataset over flat per-tick demand *columns* (one `f64`
/// per active pair, slot order) — the columnar counterpart of
/// [`WindowDataset`], and the shape the serving controller's history buffer
/// already has.  Columns are stored once and samples borrow overlapping
/// windows, so a buffer of `T` columns yields `T - window` samples with no
/// per-sample cloning.  This is what lets shard/fleet controllers retrain
/// on their restricted pair universes: a restricted universe has no dense
/// `N×N` matrix to build a [`WindowSample`] from.
#[derive(Debug, Clone)]
pub struct FlatWindowDataset {
    window: usize,
    num_pairs: usize,
    /// Observed demand columns in tick order, oldest first.
    columns: Vec<Vec<f64>>,
}

impl FlatWindowDataset {
    /// Wraps a run of observed columns.  Sample `i` pairs the history
    /// `columns[i..i + window]` with the target `columns[i + window]`.
    pub fn from_columns(window: usize, columns: Vec<Vec<f64>>) -> FlatWindowDataset {
        assert!(window >= 1, "window must be at least 1");
        let num_pairs = columns.first().map(|c| c.len()).unwrap_or(0);
        assert!(
            columns.iter().all(|c| c.len() == num_pairs),
            "all columns must share one pair universe"
        );
        FlatWindowDataset { window, num_pairs, columns }
    }

    /// Window length `H`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Values per column (the pair-universe size).
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Number of (history, target) samples.
    pub fn len(&self) -> usize {
        self.columns.len().saturating_sub(self.window)
    }

    /// `true` if no column run is long enough to form a sample.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimension of the flattened feature vector (`H * num_pairs`).
    pub fn feature_dim(&self) -> usize {
        self.window * self.num_pairs
    }

    /// The history window of sample `i` (`window` columns, oldest first).
    pub fn history(&self, i: usize) -> &[Vec<f64>] {
        &self.columns[i..i + self.window]
    }

    /// The target column of sample `i`.
    pub fn target(&self, i: usize) -> &[f64] {
        &self.columns[i + self.window]
    }

    /// Largest demand value appearing in any sample's history window — the
    /// feature scale of training (matches the dense trainer, whose scale is
    /// the max over all sample histories; targets are excluded the same way).
    pub fn max_history_entry(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        // Histories cover every column except the final target.
        self.columns[..self.columns.len() - 1]
            .iter()
            .flat_map(|c| c.iter().copied())
            .fold(0.0f64, f64::max)
    }

    /// Per-slot demand variance over every stored column (population
    /// variance) — the burst statistic feeding FIGRET's robustness term when
    /// retraining on observed traffic.
    pub fn per_slot_variance(&self) -> Vec<f64> {
        let n = self.columns.len();
        if n == 0 {
            return vec![0.0; self.num_pairs];
        }
        let mut mean = vec![0.0; self.num_pairs];
        for c in &self.columns {
            for (m, v) in mean.iter_mut().zip(c) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; self.num_pairs];
        for c in &self.columns {
            for ((s, v), m) in var.iter_mut().zip(c).zip(&mean) {
                let d = v - m;
                *s += d * d;
            }
        }
        for s in &mut var {
            *s /= n as f64;
        }
        var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(len: usize) -> TrafficTrace {
        let ms = (0..len)
            .map(|t| DemandMatrix::from_pairs(2, &[t as f64, 2.0 * t as f64]).unwrap())
            .collect();
        TrafficTrace::new("t", 1.0, ms)
    }

    #[test]
    fn chronological_split() {
        let s = TrainTestSplit::chronological(100, 0.75);
        assert_eq!(s.train, 0..75);
        assert_eq!(s.test, 75..100);
    }

    #[test]
    fn segment_split_for_drift() {
        let s = TrainTestSplit::segment(200, 0.25, 0.5, 0.75);
        assert_eq!(s.train, 50..100);
        assert_eq!(s.test, 150..200);
    }

    #[test]
    #[should_panic(expected = "precede")]
    fn segment_split_rejects_overlap() {
        TrainTestSplit::segment(100, 0.5, 0.9, 0.75);
    }

    #[test]
    fn window_dataset_builds_correct_samples() {
        let t = trace(10);
        let ds = WindowDataset::from_trace(&t, 3, 0..10);
        // Targets 3..10 have a full window.
        assert_eq!(ds.len(), 7);
        let first = &ds.samples[0];
        assert_eq!(first.target_index, 3);
        assert_eq!(first.history.len(), 3);
        assert_eq!(first.history[0], *t.matrix(0));
        assert_eq!(first.history[2], *t.matrix(2));
        assert_eq!(first.target, *t.matrix(3));
        assert_eq!(first.features(), vec![0.0, 0.0, 1.0, 2.0, 2.0, 4.0]);
        assert_eq!(ds.feature_dim(), 6);
    }

    #[test]
    fn flat_dataset_mirrors_the_dense_window_dataset() {
        let t = trace(10);
        let columns: Vec<Vec<f64>> = (0..10).map(|i| t.matrix(i).flatten_pairs()).collect();
        let flat = FlatWindowDataset::from_columns(3, columns);
        let dense = WindowDataset::from_trace(&t, 3, 0..10);
        assert_eq!(flat.len(), dense.len());
        assert_eq!(flat.feature_dim(), dense.feature_dim());
        assert_eq!(flat.num_pairs(), 2);
        for (i, sample) in dense.samples.iter().enumerate() {
            let flat_features: Vec<f64> =
                flat.history(i).iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat_features, sample.features());
            assert_eq!(flat.target(i), sample.target.flatten_pairs());
        }
        // Max over histories only: the final target column (9.0, 18.0) is
        // excluded, so the max history entry comes from column 8.
        assert_eq!(flat.max_history_entry(), 16.0);
    }

    #[test]
    fn flat_dataset_variance_and_degenerate_cases() {
        let columns = vec![vec![1.0, 4.0], vec![3.0, 4.0]];
        let flat = FlatWindowDataset::from_columns(1, columns);
        assert_eq!(flat.len(), 1);
        // Population variance: mean (2, 4), squared deviations (1, 0).
        assert_eq!(flat.per_slot_variance(), vec![1.0, 0.0]);
        let short = FlatWindowDataset::from_columns(4, vec![vec![1.0]; 3]);
        assert!(short.is_empty());
        assert_eq!(short.max_history_entry(), 0.0);
    }

    #[test]
    #[should_panic(expected = "share one pair universe")]
    fn flat_dataset_rejects_ragged_columns() {
        FlatWindowDataset::from_columns(1, vec![vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    fn window_dataset_respects_range() {
        let t = trace(10);
        let ds = WindowDataset::from_trace(&t, 3, 8..10);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.samples[0].target_index, 8);
        let empty = WindowDataset::from_trace(&t, 12, 0..10);
        assert!(empty.is_empty());
        assert_eq!(empty.feature_dim(), 0);
    }
}
