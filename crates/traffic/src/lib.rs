//! # figret-traffic
//!
//! Traffic-matrix substrate for the FIGRET reproduction: demand matrices,
//! traces, synthetic generators for every traffic class of the paper's
//! evaluation (§5.1), traffic statistics, dataset splits and the perturbation
//! models of §5.4.
//!
//! The real GEANT / Meta / pFabric traces are not redistributable; the
//! generators in [`wan`], [`datacenter`], [`pfabric`] and [`gravity`] are
//! calibrated to reproduce the qualitative traffic characteristics the paper
//! reports (per-pair variance heterogeneity, burstiness ordering
//! WAN < PoD < ToR, cosine-similarity bands of Figure 4).  See DESIGN.md §5.
//!
//! # Example
//!
//! ```
//! use figret_topology::{Topology, TopologySpec};
//! use figret_traffic::wan::{wan_trace, WanTrafficConfig};
//! use figret_traffic::stats::cosine_similarity_analysis;
//!
//! let geant = TopologySpec::full_scale(Topology::Geant).build();
//! let trace = wan_trace(&geant, &WanTrafficConfig { num_snapshots: 64, ..Default::default() });
//! let summary = cosine_similarity_analysis(&trace, 12);
//! assert!(summary.median > 0.8);
//! ```

#![warn(missing_docs)]

pub mod datacenter;
pub mod gravity;
pub mod matrix;
pub mod ops;
pub mod perturb;
pub mod pfabric;
pub mod shard;
pub mod sparse;
pub mod split;
pub mod stats;
pub mod stream;
pub mod wan;

pub use datacenter::{
    pod_trace, pod_trace_sparse, tor_trace, tor_trace_sparse, ClusterFlavor, PodTrafficConfig,
    TorTrafficConfig,
};
pub use gravity::{
    gravity_column, gravity_matrix, gravity_trace, gravity_trace_sparse, GravityConfig,
};
pub use matrix::{DemandMatrix, MatrixError, TrafficTrace};
pub use perturb::{
    gaussian_fluctuation, reverse_by_rank, sparse_gaussian_fluctuation, worst_case_fluctuation,
};
pub use pfabric::{
    pfabric_trace, pfabric_trace_sparse, sample_web_search_flow_size, PFabricConfig,
};
pub use shard::{ShardPlan, ShardUniverse};
pub use sparse::{ActivePairs, SparseDemand, SparseTrace};
pub use split::{FlatWindowDataset, TrainTestSplit, WindowDataset, WindowSample};
pub use stats::{
    cosine_similarity_analysis, cosine_similarity_samples, per_pair_mean_range, per_pair_std_range,
    per_pair_variance, per_pair_variance_range, percentile, sparse_cosine_similarity_analysis,
    sparse_cosine_similarity_samples, sparse_per_pair_mean_range, sparse_per_pair_variance_range,
    spearman_rank_correlation, DistributionSummary,
};
pub use stream::{
    collect_sparse_stream, collect_stream, DemandStream, DriftConfig, FailureStormConfig,
    FlashCrowdConfig, OnlineStream, OnlineStreamConfig, ReplayStream, SparseDemandStream,
    SparseReplayStream, StepShiftConfig, StreamAnnotation,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_matrix() -> impl Strategy<Value = DemandMatrix> {
        (2usize..6).prop_flat_map(|n| {
            proptest::collection::vec(0.0f64..100.0, n * (n - 1))
                .prop_map(move |pairs| DemandMatrix::from_pairs(n, &pairs).unwrap())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn flatten_roundtrip(m in arbitrary_matrix()) {
            let flat = m.flatten_pairs();
            let back = DemandMatrix::from_pairs(m.num_nodes(), &flat).unwrap();
            prop_assert_eq!(back, m);
        }

        #[test]
        fn cosine_similarity_is_bounded_and_symmetric(a in arbitrary_matrix()) {
            let b = a.scaled(0.5);
            let s = a.cosine_similarity(&b);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s));
            // A positively scaled copy has similarity 1 (unless the matrix is all-zero).
            if a.total() > 0.0 {
                prop_assert!((s - 1.0).abs() < 1e-9);
            }
            prop_assert!((a.cosine_similarity(&b) - b.cosine_similarity(&a)).abs() < 1e-12);
        }

        #[test]
        fn element_max_dominates_both(a in arbitrary_matrix()) {
            let b = a.scaled(1.7);
            let m = a.element_max(&b);
            for ((x, y), z) in a.flatten_pairs().into_iter().zip(b.flatten_pairs()).zip(m.flatten_pairs()) {
                prop_assert!(z >= x - 1e-12 && z >= y - 1e-12);
            }
        }

        #[test]
        fn reverse_by_rank_is_a_permutation(v in proptest::collection::vec(0.0f64..1000.0, 1..40)) {
            let r = perturb::reverse_by_rank(&v);
            let mut a = v.clone();
            let mut b = r.clone();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            prop_assert_eq!(a, b);
        }

        #[test]
        fn spearman_is_bounded(v in proptest::collection::vec(0.0f64..100.0, 2..30)) {
            let w: Vec<f64> = v.iter().map(|x| x * 2.0 + 1.0).collect();
            let r = stats::spearman_rank_correlation(&v, &w);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }

        #[test]
        fn sparse_dense_roundtrip_is_exact(m in arbitrary_matrix()) {
            let active = std::sync::Arc::new(ActivePairs::from_matrix_support(&m));
            let s = SparseDemand::from_matrix(&m, &active);
            prop_assert_eq!(s.to_matrix(), m);
        }

        #[test]
        fn sparse_ops_match_dense_ops(a in arbitrary_matrix()) {
            // Derive a second matrix deterministically so both operands share
            // sparsity structure challenges (scaled keeps support identical).
            let b = a.axpy(0.5, &a.scaled(0.3));
            let all = std::sync::Arc::new(ActivePairs::all(a.num_nodes()));
            let sa = SparseDemand::from_matrix(&a, &all);
            let sb = SparseDemand::from_matrix(&b, &all);

            prop_assert!((sa.total() - a.total()).abs() <= 1e-12 * (1.0 + a.total().abs()));
            prop_assert!((sa.max_entry() - a.max_entry()).abs() <= 1e-12);
            prop_assert!(
                (sa.cosine_similarity(&sb) - a.cosine_similarity(&b)).abs() <= 1e-12
            );

            let dense_axpy = a.axpy(0.7, &b);
            let sparse_axpy = sa.axpy(0.7, &sb);
            prop_assert_eq!(sparse_axpy.to_matrix(), dense_axpy);

            let dense_max = a.element_max(&b);
            let sparse_max = sa.element_max(&sb);
            prop_assert_eq!(sparse_max.to_matrix(), dense_max);

            let mut dense_ewma = a.clone();
            dense_ewma.ewma_blend(0.35, &b);
            let mut sparse_ewma = sa.clone();
            sparse_ewma.ewma_blend(0.35, &sb);
            prop_assert_eq!(sparse_ewma.to_matrix(), dense_ewma);
        }

        #[test]
        fn sparse_restricted_support_ops_match_dense(m in arbitrary_matrix()) {
            // On the *support* index (zeros dropped), the reductions must still
            // agree with the dense matrix: interleaved exact zeros do not
            // change sums, maxima or cosines.
            let active = std::sync::Arc::new(ActivePairs::from_matrix_support(&m));
            let s = SparseDemand::from_matrix(&m, &active);
            prop_assert!((s.total() - m.total()).abs() <= 1e-12 * (1.0 + m.total().abs()));
            prop_assert!((s.max_entry() - m.max_entry()).abs() <= 1e-12);
            let m2 = m.scaled(1.3);
            let s2 = SparseDemand::from_matrix(&m2, &active);
            prop_assert!((s.cosine_similarity(&s2) - m.cosine_similarity(&m2)).abs() <= 1e-12);
        }
    }
}
