//! Pair-universe partitioning for the sharded serving fleet (DESIGN.md §8).
//!
//! A [`ShardPlan`] splits one parent [`ActivePairs`] universe into disjoint
//! per-shard universes that together cover every parent slot exactly once.
//! Each shard carries its own [`ActivePairs`] index (so the serving stack's
//! restricted path sets, LP templates and predictors apply unchanged) plus a
//! `parent_slots` map — the gather/scatter bridge between the parent's demand
//! columns and the shard's.
//!
//! Two partitioning schemes are provided, mirroring TROD-style pod-level TE:
//!
//! * [`ShardPlan::source_blocks`] — contiguous source-ToR ranges ("ToR-prefix
//!   grouping").  Every pair belongs to the shard of its source block, so
//!   shard sizes are balanced whenever sources fan out uniformly — the right
//!   default for flat ToR fabrics and for throughput scaling.
//! * [`ShardPlan::pod_partition`] — one shard per pod holding its intra-pod
//!   pairs, plus a single aggregated inter-pod shard holding every cross-pod
//!   pair (the pod-level aggregate matrix of the paper's pod evaluation).
//!
//! Both iterate the parent in slot order, so each shard's `parent_slots` are
//! strictly increasing and the shard's own slot order (source-major CSR, the
//! [`ActivePairs::from_pairs`] order) agrees with the subsequence order of
//! the parent — gathering a parent column slot-by-slot is exact and
//! deterministic.

use std::sync::Arc;

use crate::sparse::ActivePairs;

/// One shard of a [`ShardPlan`]: a sub-universe of the parent pair index.
#[derive(Debug, Clone)]
pub struct ShardUniverse {
    active: Arc<ActivePairs>,
    parent_slots: Vec<usize>,
    label: String,
}

impl ShardUniverse {
    /// The shard's own pair index (over the parent's node universe).
    #[inline]
    pub fn active(&self) -> &Arc<ActivePairs> {
        &self.active
    }

    /// Number of pairs owned by this shard.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent_slots.len()
    }

    /// `true` when the shard owns no pairs (such shards are dropped from
    /// plans, so this holds only for standalone constructions).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent_slots.is_empty()
    }

    /// Parent slot of each shard slot, strictly increasing.
    #[inline]
    pub fn parent_slots(&self) -> &[usize] {
        &self.parent_slots
    }

    /// Human-readable shard name (`pod3`, `srcs64-127`, `inter-pod`, ...).
    #[inline]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Gathers the shard's sub-column out of a parent demand column.
    pub fn gather_into(&self, parent_column: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.parent_slots.iter().map(|&slot| parent_column[slot]));
    }
}

/// A disjoint, exhaustive partition of a parent [`ActivePairs`] universe.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    parent: Arc<ActivePairs>,
    shards: Vec<ShardUniverse>,
}

impl ShardPlan {
    /// The trivial plan: one shard owning the whole parent universe (the
    /// index `Arc` is shared, not rebuilt).  A fleet over this plan replays
    /// the unsharded controller exactly.
    pub fn single(parent: &Arc<ActivePairs>) -> ShardPlan {
        let shard = ShardUniverse {
            active: Arc::clone(parent),
            parent_slots: (0..parent.len()).collect(),
            label: "all".to_string(),
        };
        ShardPlan { parent: Arc::clone(parent), shards: vec![shard] }
    }

    /// Partitions by contiguous source blocks: the first `active_nodes` node
    /// ids (the traffic-bearing ToR prefix) are split into `num_shards`
    /// near-equal ranges, and every pair belongs to its source's range.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` is zero or exceeds `active_nodes`, or when a
    /// parent pair originates outside the ToR prefix.
    pub fn source_blocks(
        parent: &Arc<ActivePairs>,
        active_nodes: usize,
        num_shards: usize,
    ) -> ShardPlan {
        assert!(num_shards >= 1, "a plan needs at least one shard");
        assert!(
            num_shards <= active_nodes,
            "cannot split {active_nodes} sources {num_shards} ways"
        );
        if num_shards == 1 {
            return ShardPlan::single(parent);
        }
        let base = active_nodes / num_shards;
        let extra = active_nodes % num_shards;
        // Block b covers [start, start + base + (b < extra)).
        let mut block_of = Vec::with_capacity(active_nodes);
        let mut labels = Vec::with_capacity(num_shards);
        let mut start = 0usize;
        for b in 0..num_shards {
            let len = base + usize::from(b < extra);
            block_of.extend(std::iter::repeat_n(b, len));
            labels.push(format!("srcs{}-{}", start, start + len - 1));
            start += len;
        }
        ShardPlan::from_assignment(parent, num_shards, labels, |s, _| {
            assert!(s < active_nodes, "pair source {s} lies outside the {active_nodes}-ToR prefix");
            block_of[s]
        })
    }

    /// TROD-style pod partition: ToR `t` lives in pod `t / tors_per_pod`;
    /// each pod's intra-pod pairs form one shard and every cross-pod pair
    /// goes to a single aggregated inter-pod shard (always the last shard
    /// when non-empty).
    ///
    /// # Panics
    ///
    /// Panics when `tors` is not a positive multiple of `tors_per_pod`, or
    /// when a parent pair touches a node outside the ToR prefix.
    pub fn pod_partition(parent: &Arc<ActivePairs>, tors: usize, tors_per_pod: usize) -> ShardPlan {
        assert!(tors_per_pod >= 1, "a pod needs at least one ToR");
        assert!(
            tors >= tors_per_pod && tors.is_multiple_of(tors_per_pod),
            "ToR count {tors} must be a positive multiple of the pod size {tors_per_pod}"
        );
        let pods = tors / tors_per_pod;
        let mut labels: Vec<String> = (0..pods).map(|p| format!("pod{p}")).collect();
        labels.push("inter-pod".to_string());
        ShardPlan::from_assignment(parent, pods + 1, labels, |s, d| {
            assert!(s < tors && d < tors, "pair ({s}, {d}) lies outside the {tors}-ToR prefix");
            let (ps, pd) = (s / tors_per_pod, d / tors_per_pod);
            if ps == pd {
                ps
            } else {
                pods
            }
        })
    }

    /// Builds a plan from a per-pair shard assignment, walking the parent in
    /// slot order.  Shards left empty by the assignment are dropped.
    fn from_assignment(
        parent: &Arc<ActivePairs>,
        num_shards: usize,
        labels: Vec<String>,
        assign: impl Fn(usize, usize) -> usize,
    ) -> ShardPlan {
        assert_eq!(labels.len(), num_shards, "one label per shard is required");
        let mut pairs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_shards];
        let mut parent_slots: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (slot, s, d) in parent.iter() {
            let shard = assign(s, d);
            assert!(shard < num_shards, "assignment produced shard {shard} of {num_shards}");
            pairs[shard].push((s, d));
            parent_slots[shard].push(slot);
        }
        let num_nodes = parent.num_nodes();
        let shards: Vec<ShardUniverse> = pairs
            .into_iter()
            .zip(parent_slots)
            .zip(labels)
            .filter(|((p, _), _)| !p.is_empty())
            .map(|((p, slots), label)| {
                let active = Arc::new(ActivePairs::from_pairs(num_nodes, &p));
                // from_pairs sorts source-major; the parent walk is already
                // source-major, so the orders must agree slot for slot.
                debug_assert_eq!(active.node_pairs(), p, "shard slot order must match the parent");
                ShardUniverse { active, parent_slots: slots, label }
            })
            .collect();
        let covered: usize = shards.iter().map(ShardUniverse::len).sum();
        assert_eq!(covered, parent.len(), "shards must partition the parent universe exactly");
        ShardPlan { parent: Arc::clone(parent), shards }
    }

    /// The parent pair universe.
    #[inline]
    pub fn parent(&self) -> &Arc<ActivePairs> {
        &self.parent
    }

    /// Number of (non-empty) shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in stable plan order.
    #[inline]
    pub fn shards(&self) -> &[ShardUniverse] {
        &self.shards
    }

    /// The shard at `index`.
    #[inline]
    pub fn shard(&self, index: usize) -> &ShardUniverse {
        &self.shards[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampled(tors: usize, per_source: usize) -> Arc<ActivePairs> {
        Arc::new(ActivePairs::sample_per_source(tors, per_source, 7))
    }

    #[test]
    fn single_shares_the_parent_index() {
        let parent = sampled(16, 3);
        let plan = ShardPlan::single(&parent);
        assert_eq!(plan.num_shards(), 1);
        assert!(Arc::ptr_eq(plan.shard(0).active(), &parent));
        assert_eq!(plan.shard(0).parent_slots(), (0..parent.len()).collect::<Vec<_>>());
        assert_eq!(plan.shard(0).label(), "all");
    }

    #[test]
    fn source_blocks_partition_exactly_and_balance() {
        let parent = sampled(32, 4);
        let plan = ShardPlan::source_blocks(&parent, 32, 4);
        assert_eq!(plan.num_shards(), 4);
        let total: usize = plan.shards().iter().map(ShardUniverse::len).sum();
        assert_eq!(total, parent.len());
        // Uniform per-source fan-out => exactly balanced blocks.
        for shard in plan.shards() {
            assert_eq!(shard.len(), 8 * 4);
        }
        // Every shard's pairs come from its own source range, and parent
        // slots are strictly increasing.
        for (b, shard) in plan.shards().iter().enumerate() {
            for (_, s, _) in shard.active().iter() {
                assert_eq!(s / 8, b);
            }
            assert!(shard.parent_slots().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn source_blocks_cover_ragged_prefixes() {
        let parent = sampled(10, 2);
        let plan = ShardPlan::source_blocks(&parent, 10, 3);
        // 10 sources over 3 blocks: 4 + 3 + 3.
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.shard(0).len(), 4 * 2);
        assert_eq!(plan.shard(1).len(), 3 * 2);
        assert_eq!(plan.shard(2).len(), 3 * 2);
        assert_eq!(plan.shard(0).label(), "srcs0-3");
        assert_eq!(plan.shard(2).label(), "srcs7-9");
    }

    #[test]
    fn pod_partition_separates_intra_and_inter() {
        let parent = sampled(16, 5);
        let plan = ShardPlan::pod_partition(&parent, 16, 4);
        let total: usize = plan.shards().iter().map(ShardUniverse::len).sum();
        assert_eq!(total, parent.len());
        let inter = plan.shards().last().expect("cross-pod pairs exist at this density");
        assert_eq!(inter.label(), "inter-pod");
        for (_, s, d) in inter.active().iter() {
            assert_ne!(s / 4, d / 4, "inter shard must hold only cross-pod pairs");
        }
        for shard in &plan.shards()[..plan.num_shards() - 1] {
            let pod: usize = shard.label()["pod".len()..].parse().unwrap();
            for (_, s, d) in shard.active().iter() {
                assert_eq!(s / 4, pod);
                assert_eq!(d / 4, pod);
            }
        }
    }

    #[test]
    fn gather_reads_the_parent_column() {
        let parent = sampled(12, 3);
        let plan = ShardPlan::source_blocks(&parent, 12, 3);
        let column: Vec<f64> = (0..parent.len()).map(|i| i as f64 + 0.5).collect();
        let mut buf = Vec::new();
        for shard in plan.shards() {
            shard.gather_into(&column, &mut buf);
            assert_eq!(buf.len(), shard.len());
            for (i, &slot) in shard.parent_slots().iter().enumerate() {
                assert_eq!(buf[i], column[slot]);
                // The shard's pair at i is the parent's pair at slot.
                assert_eq!(shard.active().pair(i), parent.pair(slot));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the 8-ToR prefix")]
    fn source_blocks_reject_sources_beyond_the_prefix() {
        let parent = Arc::new(ActivePairs::from_pairs(12, &[(9, 2)]));
        ShardPlan::source_blocks(&parent, 8, 2);
    }

    #[test]
    fn deterministic_across_constructions() {
        let parent = sampled(24, 4);
        let a = ShardPlan::pod_partition(&parent, 24, 8);
        let b = ShardPlan::pod_partition(&parent, 24, 8);
        assert_eq!(a.num_shards(), b.num_shards());
        for (x, y) in a.shards().iter().zip(b.shards()) {
            assert_eq!(x.parent_slots(), y.parent_slots());
            assert_eq!(**x.active(), **y.active());
        }
    }
}
