//! Demand matrices and traffic traces.
//!
//! A demand matrix (DM) `D` is a `|V| x |V|` matrix whose `(i, j)` entry is the
//! traffic demand from source `i` to destination `j` (§3 of the paper).  A
//! traffic trace is a time-ordered sequence of demand matrices collected at a
//! fixed aggregation interval.

use std::fmt;

use crate::ops;

/// A single demand matrix.
///
/// Stored row-major (`data[s * n + d]`).  Diagonal entries are always zero: a
/// node never sends traffic to itself in the TE model.
///
/// Since PR 7 this is the *dense adapter* over the shared element-wise
/// kernels in [`crate::ops`]: small WANs keep using it directly, while
/// ToR-scale pipelines use [`crate::SparseDemand`] columns over the same
/// kernels (bit-identical results on the same traffic).
#[derive(Debug, Clone, PartialEq)]
pub struct DemandMatrix {
    num_nodes: usize,
    data: Vec<f64>,
}

impl DemandMatrix {
    /// An all-zero demand matrix over `num_nodes` nodes.
    pub fn zeros(num_nodes: usize) -> Self {
        DemandMatrix { num_nodes, data: vec![0.0; num_nodes * num_nodes] }
    }

    /// Builds a matrix from a dense row-major vector of length `n * n`.
    ///
    /// Diagonal entries are forced to zero; negative or non-finite entries are
    /// rejected.
    pub fn from_dense(num_nodes: usize, mut data: Vec<f64>) -> Result<Self, MatrixError> {
        if data.len() != num_nodes * num_nodes {
            return Err(MatrixError::WrongLength {
                expected: num_nodes * num_nodes,
                got: data.len(),
            });
        }
        for (idx, v) in data.iter().enumerate() {
            if !v.is_finite() || *v < 0.0 {
                return Err(MatrixError::InvalidDemand { index: idx, value: *v });
            }
        }
        for i in 0..num_nodes {
            data[i * num_nodes + i] = 0.0;
        }
        Ok(DemandMatrix { num_nodes, data })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of ordered source-destination pairs (`n * (n - 1)`).
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.num_nodes * (self.num_nodes - 1)
    }

    /// Demand from `src` to `dst`.
    #[inline]
    pub fn get(&self, src: usize, dst: usize) -> f64 {
        self.data[src * self.num_nodes + dst]
    }

    /// Sets the demand from `src` to `dst`.  Setting a diagonal entry is a
    /// no-op; negative values are clamped to zero.
    #[inline]
    pub fn set(&mut self, src: usize, dst: usize, value: f64) {
        if src == dst {
            return;
        }
        self.data[src * self.num_nodes + dst] = value.max(0.0);
    }

    /// Adds `value` to the demand from `src` to `dst` (clamped at zero).
    pub fn add(&mut self, src: usize, dst: usize, value: f64) {
        if src == dst {
            return;
        }
        let idx = src * self.num_nodes + dst;
        self.data[idx] = (self.data[idx] + value).max(0.0);
    }

    /// Total demand over all pairs.
    pub fn total(&self) -> f64 {
        ops::total(&self.data)
    }

    /// Largest single demand entry.
    pub fn max_entry(&self) -> f64 {
        ops::max_entry(&self.data)
    }

    /// Flattened off-diagonal demands in source-major order, matching
    /// `Graph::sd_pairs` (all `d != s` for `s = 0, 1, ...`).
    pub fn flatten_pairs(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_pairs()];
        self.flatten_pairs_into(&mut out);
        out
    }

    /// Allocation-free [`DemandMatrix::flatten_pairs`]: writes the flattened
    /// demands into a caller-provided buffer of length [`Self::num_pairs`].
    pub fn flatten_pairs_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_pairs(), "one slot per SD pair is required");
        let n = self.num_nodes;
        let mut i = 0;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    out[i] = self.data[s * n + d];
                    i += 1;
                }
            }
        }
    }

    /// Copies another matrix's demands into this one without reallocating.
    pub fn copy_from(&mut self, other: &DemandMatrix) {
        assert_eq!(self.num_nodes, other.num_nodes, "matrices must have the same size");
        self.data.copy_from_slice(&other.data);
    }

    /// Adds this matrix's flattened pair demands into `out`, clamped at zero —
    /// element-for-element identical to folding with `axpy(1.0, self)` and
    /// flattening at the end.
    pub fn accumulate_pairs_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_pairs(), "one slot per SD pair is required");
        let n = self.num_nodes;
        let mut i = 0;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    out[i] = (out[i] + self.data[s * n + d]).max(0.0);
                    i += 1;
                }
            }
        }
    }

    /// Folds this matrix's flattened pair demands into `out` with an
    /// element-wise maximum (the in-place counterpart of
    /// [`DemandMatrix::element_max`] followed by flattening).
    pub fn max_pairs_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_pairs(), "one slot per SD pair is required");
        let n = self.num_nodes;
        let mut i = 0;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    out[i] = out[i].max(self.data[s * n + d]);
                    i += 1;
                }
            }
        }
    }

    /// In-place EWMA blend `self ← (1 − α)·self + α·other`, clamped at zero.
    /// Bit-identical to `self.scaled(1.0 - alpha).axpy(alpha, other)` without
    /// the two intermediate matrices.
    pub fn ewma_blend(&mut self, alpha: f64, other: &DemandMatrix) {
        assert_eq!(self.num_nodes, other.num_nodes, "matrices must have the same size");
        ops::ewma_blend(&mut self.data, alpha, &other.data);
    }

    /// Inverse of [`DemandMatrix::flatten_pairs`].
    pub fn from_pairs(num_nodes: usize, pairs: &[f64]) -> Result<Self, MatrixError> {
        let expected = num_nodes * (num_nodes - 1);
        if pairs.len() != expected {
            return Err(MatrixError::WrongLength { expected, got: pairs.len() });
        }
        let mut m = DemandMatrix::zeros(num_nodes);
        let mut it = pairs.iter();
        for s in 0..num_nodes {
            for d in 0..num_nodes {
                if s != d {
                    let v = *it.next().expect("length checked above");
                    if !v.is_finite() || v < 0.0 {
                        return Err(MatrixError::InvalidDemand {
                            index: s * num_nodes + d,
                            value: v,
                        });
                    }
                    m.set(s, d, v);
                }
            }
        }
        Ok(m)
    }

    /// Element-wise maximum of two matrices (used by the Desensitization-based
    /// TE baseline, which builds a peak matrix over a time window).
    pub fn element_max(&self, other: &DemandMatrix) -> DemandMatrix {
        assert_eq!(self.num_nodes, other.num_nodes, "matrices must have the same size");
        let mut data = self.data.clone();
        ops::max_assign(&mut data, &other.data);
        DemandMatrix { num_nodes: self.num_nodes, data }
    }

    /// Per-entry linear combination `self + scale * other`, clamped at zero.
    pub fn axpy(&self, scale: f64, other: &DemandMatrix) -> DemandMatrix {
        assert_eq!(self.num_nodes, other.num_nodes, "matrices must have the same size");
        DemandMatrix {
            num_nodes: self.num_nodes,
            data: ops::axpy_clamped(&self.data, scale, &other.data),
        }
    }

    /// Scales every demand by `factor`.
    pub fn scaled(&self, factor: f64) -> DemandMatrix {
        DemandMatrix { num_nodes: self.num_nodes, data: ops::scale_clamped(&self.data, factor) }
    }

    /// Cosine similarity between the flattened demand vectors of two matrices.
    /// Returns 1.0 when both matrices are all-zero, 0.0 when exactly one is.
    pub fn cosine_similarity(&self, other: &DemandMatrix) -> f64 {
        assert_eq!(self.num_nodes, other.num_nodes, "matrices must have the same size");
        ops::cosine_similarity(&self.data, &other.data)
    }
}

impl fmt::Display for DemandMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DemandMatrix({} nodes, total {:.3})", self.num_nodes, self.total())?;
        for s in 0..self.num_nodes {
            for d in 0..self.num_nodes {
                write!(f, "{:9.3} ", self.get(s, d))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Errors when constructing demand matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// The provided buffer has the wrong length.
    WrongLength {
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// A demand entry was negative, NaN or infinite.
    InvalidDemand {
        /// Flat index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::WrongLength { expected, got } => {
                write!(f, "expected {expected} entries, got {got}")
            }
            MatrixError::InvalidDemand { index, value } => {
                write!(f, "invalid demand {value} at flat index {index}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// A time-ordered sequence of demand matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTrace {
    name: String,
    interval_seconds: f64,
    matrices: Vec<DemandMatrix>,
}

impl TrafficTrace {
    /// Builds a trace.  All matrices must have the same node count.
    pub fn new(
        name: impl Into<String>,
        interval_seconds: f64,
        matrices: Vec<DemandMatrix>,
    ) -> Self {
        let n = matrices.first().map(|m| m.num_nodes()).unwrap_or(0);
        assert!(
            matrices.iter().all(|m| m.num_nodes() == n),
            "all matrices in a trace must have the same node count"
        );
        TrafficTrace { name: name.into(), interval_seconds, matrices }
    }

    /// Human-readable trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Aggregation interval in seconds.
    pub fn interval_seconds(&self) -> f64 {
        self.interval_seconds
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// `true` if the trace has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// Number of nodes (0 for an empty trace).
    pub fn num_nodes(&self) -> usize {
        self.matrices.first().map(|m| m.num_nodes()).unwrap_or(0)
    }

    /// The matrix at snapshot `t`.
    pub fn matrix(&self, t: usize) -> &DemandMatrix {
        &self.matrices[t]
    }

    /// All matrices.
    pub fn matrices(&self) -> &[DemandMatrix] {
        &self.matrices
    }

    /// A sub-trace covering snapshots `range` (cloned).
    pub fn slice(&self, range: std::ops::Range<usize>) -> TrafficTrace {
        TrafficTrace {
            name: self.name.clone(),
            interval_seconds: self.interval_seconds,
            matrices: self.matrices[range].to_vec(),
        }
    }

    /// Returns a renamed copy of the trace (metadata only).
    pub fn renamed(&self, name: impl Into<String>) -> TrafficTrace {
        let mut t = self.clone();
        t.name = name.into();
        t
    }

    /// Maps every matrix through `f`, keeping metadata.
    pub fn map<F: FnMut(usize, &DemandMatrix) -> DemandMatrix>(&self, mut f: F) -> TrafficTrace {
        TrafficTrace {
            name: self.name.clone(),
            interval_seconds: self.interval_seconds,
            matrices: self.matrices.iter().enumerate().map(|(i, m)| f(i, m)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DemandMatrix::zeros(3);
        assert_eq!(m.num_pairs(), 6);
        m.set(0, 1, 5.0);
        m.set(1, 1, 99.0); // diagonal: ignored
        m.set(2, 0, -3.0); // negative: clamped
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 0), 0.0);
        assert_eq!(m.total(), 5.0);
        assert_eq!(m.max_entry(), 5.0);
    }

    #[test]
    fn from_dense_validates() {
        assert!(DemandMatrix::from_dense(2, vec![0.0; 3]).is_err());
        assert!(DemandMatrix::from_dense(2, vec![0.0, -1.0, 0.0, 0.0]).is_err());
        assert!(DemandMatrix::from_dense(2, vec![0.0, f64::NAN, 0.0, 0.0]).is_err());
        let m = DemandMatrix::from_dense(2, vec![7.0, 1.0, 2.0, 7.0]).unwrap();
        // Diagonals forced to zero.
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut m = DemandMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.set(0, 2, 2.0);
        m.set(1, 0, 3.0);
        m.set(2, 1, 4.0);
        let flat = m.flatten_pairs();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 0.0, 0.0, 4.0]);
        let back = DemandMatrix::from_pairs(3, &flat).unwrap();
        assert_eq!(back, m);
        assert!(DemandMatrix::from_pairs(3, &[1.0]).is_err());
    }

    #[test]
    fn element_ops() {
        let a = DemandMatrix::from_pairs(2, &[1.0, 4.0]).unwrap();
        let b = DemandMatrix::from_pairs(2, &[3.0, 2.0]).unwrap();
        let m = a.element_max(&b);
        assert_eq!(m.flatten_pairs(), vec![3.0, 4.0]);
        let s = a.axpy(2.0, &b);
        assert_eq!(s.flatten_pairs(), vec![7.0, 8.0]);
        let neg = a.axpy(-10.0, &b);
        assert_eq!(neg.flatten_pairs(), vec![0.0, 0.0]);
        assert_eq!(a.scaled(0.5).flatten_pairs(), vec![0.5, 2.0]);
    }

    #[test]
    fn in_place_helpers_match_their_allocating_counterparts() {
        let a = DemandMatrix::from_pairs(3, &[1.0, 2.0, 3.0, 0.0, 5.0, 4.0]).unwrap();
        let b = DemandMatrix::from_pairs(3, &[0.5, 6.0, 1.0, 2.0, 0.0, 9.0]).unwrap();

        let mut flat = vec![9.9; a.num_pairs()];
        a.flatten_pairs_into(&mut flat);
        assert_eq!(flat, a.flatten_pairs());

        let mut copy = DemandMatrix::zeros(3);
        copy.copy_from(&a);
        assert_eq!(copy, a);

        let mut acc = a.flatten_pairs();
        b.accumulate_pairs_into(&mut acc);
        assert_eq!(acc, a.axpy(1.0, &b).flatten_pairs());

        let mut peak = a.flatten_pairs();
        b.max_pairs_into(&mut peak);
        assert_eq!(peak, a.element_max(&b).flatten_pairs());

        let mut blended = a.clone();
        blended.ewma_blend(0.3, &b);
        assert_eq!(blended, a.scaled(1.0 - 0.3).axpy(0.3, &b));
    }

    #[test]
    fn cosine_similarity_behaviour() {
        let a = DemandMatrix::from_pairs(2, &[1.0, 0.0]).unwrap();
        let b = DemandMatrix::from_pairs(2, &[2.0, 0.0]).unwrap();
        let c = DemandMatrix::from_pairs(2, &[0.0, 5.0]).unwrap();
        let z = DemandMatrix::zeros(2);
        assert!((a.cosine_similarity(&b) - 1.0).abs() < 1e-12);
        assert!(a.cosine_similarity(&c).abs() < 1e-12);
        assert_eq!(z.cosine_similarity(&z), 1.0);
        assert_eq!(z.cosine_similarity(&a), 0.0);
    }

    #[test]
    fn trace_basics() {
        let m0 = DemandMatrix::from_pairs(2, &[1.0, 2.0]).unwrap();
        let m1 = DemandMatrix::from_pairs(2, &[3.0, 4.0]).unwrap();
        let t = TrafficTrace::new("demo", 60.0, vec![m0.clone(), m1.clone()]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.matrix(1), &m1);
        let sliced = t.slice(1..2);
        assert_eq!(sliced.len(), 1);
        assert_eq!(sliced.matrix(0), &m1);
        let doubled = t.map(|_, m| m.scaled(2.0));
        assert_eq!(doubled.matrix(0).get(0, 1), 2.0);
        assert_eq!(t.renamed("x").name(), "x");
        assert!(!t.is_empty());
        assert!(TrafficTrace::new("empty", 1.0, vec![]).is_empty());
    }

    #[test]
    #[should_panic(expected = "same node count")]
    fn trace_rejects_mixed_sizes() {
        let m0 = DemandMatrix::zeros(2);
        let m1 = DemandMatrix::zeros(3);
        TrafficTrace::new("bad", 60.0, vec![m0, m1]);
    }
}
