//! Meta-like data-center traffic generation (PoD level and ToR level).
//!
//! The paper uses one day of Meta traffic [Roy et al., SIGCOMM'15] aggregated
//! into 1-second inter-PoD matrices and 10-second inter-ToR matrices.  Those
//! traces are not available offline; this module generates synthetic traffic
//! reproducing the properties the paper relies on:
//!
//! * **PoD level** (4 or 8 PoDs): heavily aggregated traffic, moderately bursty,
//!   high temporal similarity with occasional excursions (Figure 4 shows cosine
//!   similarities tightly packed near 1 with a slightly wider box than WAN
//!   gravity traffic).
//! * **ToR level** (dozens to hundreds of ToRs): sparse, highly dynamic traffic.
//!   Most pairs exchange little traffic most of the time; individual pairs
//!   switch on and off abruptly (on/off Markov modulation) and their bursts are
//!   heavy-tailed.  This produces the wide cosine-similarity distribution of
//!   Figure 4 and the strong variance heterogeneity of Figure 2(c).
//!
//! Both generators expose the cluster "flavour" (DB vs WEB): the WEB cluster is
//! busier and slightly more uniform, the DB cluster has a few dominant pairs,
//! mirroring the qualitative description in §5.1.

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use figret_topology::Graph;

use crate::matrix::TrafficTrace;
use crate::sparse::{ActivePairs, SparseDemand, SparseTrace};

/// Which Meta cluster flavour to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterFlavor {
    /// MySQL database cluster: a few dominant, bursty pairs.
    Db,
    /// Web-serving cluster: busier, more uniform.
    Web,
}

/// Parameters of the PoD-level generator.
#[derive(Debug, Clone)]
pub struct PodTrafficConfig {
    /// Number of snapshots (1-second aggregation in the paper).
    pub num_snapshots: usize,
    /// Aggregation interval in seconds.
    pub interval_seconds: f64,
    /// Average per-pair utilization of a direct link (0..1).
    pub base_load: f64,
    /// Relative per-snapshot noise.
    pub noise: f64,
    /// Per-snapshot probability of a moderate burst on a pair.
    pub burst_probability: f64,
    /// Burst magnitude range.
    pub burst_magnitude: (f64, f64),
    /// Cluster flavour.
    pub flavor: ClusterFlavor,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PodTrafficConfig {
    fn default() -> Self {
        PodTrafficConfig {
            num_snapshots: 800,
            interval_seconds: 1.0,
            base_load: 0.35,
            noise: 0.12,
            burst_probability: 0.03,
            burst_magnitude: (1.5, 3.0),
            flavor: ClusterFlavor::Db,
            seed: 33,
        }
    }
}

/// Generates a PoD-level trace over a (small, usually full-mesh) graph.
pub fn pod_trace(graph: &Graph, config: &PodTrafficConfig) -> TrafficTrace {
    let active = Arc::new(ActivePairs::all(graph.num_nodes()));
    pod_trace_sparse(graph, &active, config).to_trace()
}

/// Columnar PoD-level generator over an explicit pair set.  Per-slot work
/// and storage are `O(nnz)`; [`pod_trace`] is the all-pairs dense adapter
/// (bit-identical to the pre-sparse implementation, since the all-pairs
/// slot order equals the old row-major pair order).
pub fn pod_trace_sparse(
    graph: &Graph,
    active: &Arc<ActivePairs>,
    config: &PodTrafficConfig,
) -> SparseTrace {
    let n = graph.num_nodes();
    assert!(n >= 2, "need at least two PoDs");
    assert_eq!(active.num_nodes(), n, "pair index must match the graph");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x0d0d_0001);
    let min_cap = graph.min_capacity().unwrap_or(1.0);

    // Per-pair mean rates: heavy-tailed for DB (some dominant pairs), more
    // uniform for WEB.
    let nnz = active.len();
    let mut means = vec![0.0f64; nnz];
    let mut noise_level = vec![0.0f64; nnz];
    let mut burst_prob = vec![0.0f64; nnz];
    for slot in 0..nnz {
        let skew: f64 = match config.flavor {
            ClusterFlavor::Db => {
                // A few pairs carry several times the average.
                let u: f64 = rng.gen();
                if u < 0.2 {
                    rng.gen_range(1.5..3.0)
                } else {
                    rng.gen_range(0.4..1.2)
                }
            }
            ClusterFlavor::Web => rng.gen_range(0.8..1.3),
        };
        means[slot] = config.base_load * min_cap * skew;
        noise_level[slot] = config.noise * rng.gen_range(0.5..1.8);
        // Heterogeneous burstiness: roughly half the pairs never burst.
        burst_prob[slot] = if rng.gen::<f64>() < 0.5 {
            config.burst_probability * rng.gen_range(0.5..2.5)
        } else {
            0.0
        };
    }

    let mut columns = Vec::with_capacity(config.num_snapshots);
    // Slowly varying AR(1) state per pair for temporal correlation.
    let mut state = vec![1.0f64; nnz];
    for _t in 0..config.num_snapshots {
        let mut col = SparseDemand::zeros(Arc::clone(active));
        for slot in 0..nnz {
            // AR(1): state drifts slowly around 1.
            state[slot] = 0.95 * state[slot] + 0.05 * (1.0 + rng.gen_range(-0.5..0.5));
            let noise = 1.0 + noise_level[slot] * rng.gen_range(-1.0..1.0);
            let mut v = means[slot] * state[slot] * noise;
            if burst_prob[slot] > 0.0 && rng.gen::<f64>() < burst_prob[slot] {
                v *= rng.gen_range(config.burst_magnitude.0..config.burst_magnitude.1);
            }
            col.set_slot(slot, v);
        }
        columns.push(col);
    }
    let flavor = match config.flavor {
        ClusterFlavor::Db => "db",
        ClusterFlavor::Web => "web",
    };
    SparseTrace::new(
        format!("{}-pod-{flavor}", graph.name()),
        config.interval_seconds,
        Arc::clone(active),
        columns,
    )
}

/// Parameters of the ToR-level generator.
#[derive(Debug, Clone)]
pub struct TorTrafficConfig {
    /// Number of snapshots (10-second aggregation in the paper).
    pub num_snapshots: usize,
    /// Aggregation interval in seconds.
    pub interval_seconds: f64,
    /// Fraction of pairs that are active "mice" at any time.
    pub sparsity: f64,
    /// Average utilization contributed by a stable (elephant) pair relative to
    /// the minimum link capacity.
    pub elephant_load: f64,
    /// Fraction of pairs that are stable elephants.
    pub elephant_fraction: f64,
    /// Probability per snapshot that an off pair switches on.
    pub on_probability: f64,
    /// Probability per snapshot that an on pair switches off.
    pub off_probability: f64,
    /// Burst magnitude range relative to the elephant load for on-pairs.
    pub burst_magnitude: (f64, f64),
    /// Cluster flavour.
    pub flavor: ClusterFlavor,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TorTrafficConfig {
    fn default() -> Self {
        TorTrafficConfig {
            num_snapshots: 800,
            interval_seconds: 10.0,
            sparsity: 0.25,
            elephant_load: 0.08,
            elephant_fraction: 0.15,
            on_probability: 0.08,
            off_probability: 0.25,
            burst_magnitude: (2.0, 8.0),
            flavor: ClusterFlavor::Db,
            seed: 44,
        }
    }
}

/// Generates a ToR-level trace over a (random-regular) graph.
pub fn tor_trace(graph: &Graph, config: &TorTrafficConfig) -> TrafficTrace {
    let active = Arc::new(ActivePairs::all(graph.num_nodes()));
    tor_trace_sparse(graph, &active, config).to_trace()
}

/// Columnar ToR-level generator over an explicit pair set — the native form
/// for 512–4096-ToR fabrics, where only the sampled communication pattern
/// (a few percent of all pairs) ever carries traffic and storage is
/// `O(nnz · T)` instead of `O(N² · T)`.  [`tor_trace`] is the all-pairs
/// dense adapter (bit-identical to the pre-sparse implementation).
pub fn tor_trace_sparse(
    graph: &Graph,
    active: &Arc<ActivePairs>,
    config: &TorTrafficConfig,
) -> SparseTrace {
    let n = graph.num_nodes();
    assert!(n >= 2, "need at least two ToRs");
    assert_eq!(active.num_nodes(), n, "pair index must match the graph");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x70b_0002);
    let min_cap = graph.min_capacity().unwrap_or(1.0);

    let nnz = active.len();
    let mut elephant = vec![false; nnz];
    let mut mean = vec![0.0f64; nnz];
    let mut on = vec![false; nnz];
    for slot in 0..nnz {
        if rng.gen::<f64>() < config.elephant_fraction {
            elephant[slot] = true;
            let flavor_scale = match config.flavor {
                ClusterFlavor::Db => rng.gen_range(0.8..2.0),
                ClusterFlavor::Web => rng.gen_range(0.9..1.4),
            };
            mean[slot] = config.elephant_load * min_cap * flavor_scale;
            on[slot] = true;
        } else {
            mean[slot] = config.elephant_load * min_cap * rng.gen_range(0.05..0.4);
            on[slot] = rng.gen::<f64>() < config.sparsity;
        }
    }

    let mut columns = Vec::with_capacity(config.num_snapshots);
    for _t in 0..config.num_snapshots {
        let mut col = SparseDemand::zeros(Arc::clone(active));
        for slot in 0..nnz {
            if elephant[slot] {
                // Stable with mild noise.
                let noise = 1.0 + 0.1 * rng.gen_range(-1.0..1.0);
                col.set_slot(slot, mean[slot] * noise);
            } else {
                // On/off Markov modulation with heavy-tailed bursts when on.
                if on[slot] {
                    if rng.gen::<f64>() < config.off_probability {
                        on[slot] = false;
                    }
                } else if rng.gen::<f64>() < config.on_probability {
                    on[slot] = true;
                }
                if on[slot] {
                    let burst = rng.gen_range(config.burst_magnitude.0..config.burst_magnitude.1);
                    let noise = 1.0 + 0.3 * rng.gen_range(-1.0..1.0);
                    col.set_slot(slot, mean[slot] * burst * noise);
                }
            }
        }
        columns.push(col);
    }
    let flavor = match config.flavor {
        ClusterFlavor::Db => "db",
        ClusterFlavor::Web => "web",
    };
    SparseTrace::new(
        format!("{}-tor-{flavor}", graph.name()),
        config.interval_seconds,
        Arc::clone(active),
        columns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{cosine_similarity_analysis, per_pair_variance};
    use figret_topology::{Topology, TopologySpec};

    #[test]
    fn pod_trace_is_moderately_stable() {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let t = pod_trace(&g, &PodTrafficConfig { num_snapshots: 300, ..Default::default() });
        assert_eq!(t.len(), 300);
        let stats = cosine_similarity_analysis(&t, 12);
        assert!(
            stats.median > 0.9,
            "PoD traffic should be fairly stable (median {})",
            stats.median
        );
    }

    #[test]
    fn tor_trace_is_more_bursty_than_pod() {
        let g_pod = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let g_tor = TopologySpec::reduced(Topology::MetaDbTor).build();
        let pod = pod_trace(&g_pod, &PodTrafficConfig { num_snapshots: 300, ..Default::default() });
        let tor = tor_trace(&g_tor, &TorTrafficConfig { num_snapshots: 300, ..Default::default() });
        let pod_stats = cosine_similarity_analysis(&pod, 12);
        let tor_stats = cosine_similarity_analysis(&tor, 12);
        assert!(
            tor_stats.p25 < pod_stats.p25,
            "ToR traffic must be less similar to its history than PoD traffic ({} vs {})",
            tor_stats.p25,
            pod_stats.p25
        );
    }

    #[test]
    fn tor_variance_is_heterogeneous() {
        let g = TopologySpec::reduced(Topology::MetaDbTor).build();
        let t = tor_trace(&g, &TorTrafficConfig { num_snapshots: 200, ..Default::default() });
        let var = per_pair_variance(&t);
        let nonzero: Vec<f64> = var.iter().cloned().filter(|v| *v > 0.0).collect();
        assert!(!nonzero.is_empty());
        let max = nonzero.iter().cloned().fold(0.0, f64::max);
        let min = nonzero.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 50.0, "ToR variance heterogeneity too small: {max} / {min}");
    }

    #[test]
    fn sparse_tor_generator_stays_on_its_pattern() {
        let g = TopologySpec::reduced(Topology::MetaDbTor).build();
        let active = Arc::new(ActivePairs::sample_per_source(g.num_nodes(), 6, 17));
        let cfg = TorTrafficConfig { num_snapshots: 50, ..Default::default() };
        let t = tor_trace_sparse(&g, &active, &cfg);
        assert_eq!(t.len(), 50);
        assert_eq!(t.nnz(), g.num_nodes() * 6);
        assert_eq!(t, tor_trace_sparse(&g, &active, &cfg));
        // Densifying never places traffic outside the sampled pattern.
        let dense = t.to_trace();
        for m in dense.matrices() {
            for s in 0..g.num_nodes() {
                for d in 0..g.num_nodes() {
                    if s != d && m.get(s, d) > 0.0 {
                        assert!(active.slot(s, d).is_some());
                    }
                }
            }
        }
    }

    #[test]
    fn flavors_and_seeds_change_traces() {
        let g = TopologySpec::full_scale(Topology::MetaWebPod).build();
        let db = pod_trace(&g, &PodTrafficConfig { num_snapshots: 10, ..Default::default() });
        let web = pod_trace(
            &g,
            &PodTrafficConfig {
                num_snapshots: 10,
                flavor: ClusterFlavor::Web,
                ..Default::default()
            },
        );
        assert_ne!(db, web);
        let other_seed =
            pod_trace(&g, &PodTrafficConfig { num_snapshots: 10, seed: 99, ..Default::default() });
        assert_ne!(db, other_seed);
        assert!(db.name().contains("db"));
        assert!(web.name().contains("web"));
    }
}
