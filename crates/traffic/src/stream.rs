//! Streaming demand sources: demands as they arrive, not fixed-length arrays.
//!
//! The batch evaluation pipeline materializes a whole [`TrafficTrace`] up
//! front; the online serving subsystem (DESIGN.md §6) instead *pulls* one
//! demand matrix per tick from a [`DemandStream`].  Two families of sources:
//!
//! * [`ReplayStream`] — replays an existing trace (optionally looping), so
//!   every batch scenario is also a serving scenario;
//! * [`OnlineStream`] — an unbounded seeded generator layering diurnal
//!   modulation, slow random-walk drift, flash-crowd episodes and
//!   failure-storm episodes (traffic draining away from an ailing node) on
//!   top of a base matrix.  Scenarios are no longer bounded by a
//!   pre-generated array length: the stream produces demands for as long as
//!   the controller keeps asking.
//!
//! All generators draw from seeded ChaCha8 streams and consume randomness in
//! a fixed order, so a (seed, config) pair fully determines the stream —
//! the serving loop's determinism contract (DESIGN.md §4) extends to
//! unbounded scenarios.

use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use figret_topology::Graph;

use crate::gravity::gravity_matrix;
use crate::matrix::{DemandMatrix, TrafficTrace};
use crate::sparse::{ActivePairs, SparseDemand, SparseTrace};

/// A source of demand matrices, one per tick.
///
/// Finite sources (trace replay) return `None` when exhausted; online
/// generators never do.
pub trait DemandStream {
    /// Number of nodes of every matrix the stream yields.
    fn num_nodes(&self) -> usize;

    /// The next demand matrix, or `None` if the stream is exhausted.
    fn next_demand(&mut self) -> Option<DemandMatrix>;
}

/// A source of sparse demand columns, one per tick, all aligned to one
/// shared [`ActivePairs`] index — the native interface of the serving loop
/// on ToR-scale fabrics, where a dense matrix per tick would cost `N²`.
pub trait SparseDemandStream {
    /// The pair index every yielded column is aligned to.
    fn active(&self) -> &Arc<ActivePairs>;

    /// The next demand column, or `None` if the stream is exhausted.
    fn next_column(&mut self) -> Option<SparseDemand>;
}

/// Replays the snapshots of an existing [`TrafficTrace`] in order.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    trace: TrafficTrace,
    cursor: usize,
    looping: bool,
}

impl ReplayStream {
    /// Replays the trace once, then reports exhaustion.
    pub fn once(trace: TrafficTrace) -> ReplayStream {
        ReplayStream { trace, cursor: 0, looping: false }
    }

    /// Replays the trace forever, wrapping around at the end (an unbounded
    /// stationary scenario built from recorded data).
    pub fn looping(trace: TrafficTrace) -> ReplayStream {
        assert!(!trace.is_empty(), "cannot loop over an empty trace");
        ReplayStream { trace, cursor: 0, looping: true }
    }

    /// Starts the replay at snapshot `start` instead of 0 (e.g. at the test
    /// split of a scenario, after warming the controller on the prefix).
    pub fn starting_at(mut self, start: usize) -> ReplayStream {
        self.cursor = start;
        self
    }

    /// Snapshots left before exhaustion (`None` for a looping stream).
    pub fn remaining(&self) -> Option<usize> {
        if self.looping {
            None
        } else {
            Some(self.trace.len().saturating_sub(self.cursor))
        }
    }
}

impl DemandStream for ReplayStream {
    fn num_nodes(&self) -> usize {
        self.trace.num_nodes()
    }

    fn next_demand(&mut self) -> Option<DemandMatrix> {
        if self.cursor >= self.trace.len() {
            if !self.looping {
                return None;
            }
            self.cursor = 0;
        }
        let m = self.trace.matrix(self.cursor).clone();
        self.cursor += 1;
        Some(m)
    }
}

/// Slow per-pair drift: every pair's mean performs a clamped random walk.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Per-tick relative step size of the random walk.
    pub step: f64,
    /// The walk multiplier is clamped to `[1/limit, limit]`.
    pub limit: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig { step: 0.004, limit: 3.0 }
    }
}

/// Flash crowds: short episodes during which a few pairs burst far above
/// their mean (the "fine-grained fluctuation" FIGRET hedges against, §3).
#[derive(Debug, Clone, Copy)]
pub struct FlashCrowdConfig {
    /// Per-tick probability that a new episode starts.
    pub probability: f64,
    /// Multiplicative magnitude range `[low, high)` of an episode.
    pub magnitude: (f64, f64),
    /// Episode duration range `[low, high)` in ticks.
    pub duration: (usize, usize),
    /// Number of SD pairs recruited per episode.
    pub pairs: usize,
}

impl Default for FlashCrowdConfig {
    fn default() -> Self {
        FlashCrowdConfig { probability: 0.03, magnitude: (2.5, 6.0), duration: (2, 8), pairs: 3 }
    }
}

/// Failure storms: episodes during which the traffic touching one node
/// collapses (a draining service or an upstream device failure), shifting
/// the load distribution abruptly — the demand-side signature of the
/// failure scenarios of §4.5.
#[derive(Debug, Clone, Copy)]
pub struct FailureStormConfig {
    /// Per-tick probability that a storm starts (at most one is active).
    pub probability: f64,
    /// Storm duration range `[low, high)` in ticks.
    pub duration: (usize, usize),
    /// Fraction of the victim node's traffic that drains away (0..=1).
    pub drain: f64,
}

impl Default for FailureStormConfig {
    fn default() -> Self {
        FailureStormConfig { probability: 0.01, duration: (4, 12), drain: 0.85 }
    }
}

/// A deterministic, permanent step change in the demand *distribution* at a
/// known tick: from `at_tick` on, even slots scale by `factor` and odd slots
/// by `1 / factor`.  Total volume stays roughly constant while the shape of
/// the matrix changes abruptly — the sustained distribution shift a model
/// trained on the old shape cannot follow (ISSUE 9's recovery trigger).
/// Applying the shift consumes no randomness, so adding one to a config
/// leaves every other draw of the stream bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepShiftConfig {
    /// First tick (0-based, counting generated columns) the shift applies to.
    pub at_tick: usize,
    /// Multiplicative magnitude of the shift (> 0); even slots scale by
    /// `factor`, odd slots by `1 / factor`.
    pub factor: f64,
}

/// The event state behind one generated column: which episodes were active
/// when it was produced.  Obtained from [`OnlineStream::annotation`] right
/// after pulling a column, and attached to serving logs so recovery
/// behaviour can be correlated with its cause (storms and flash crowds are
/// otherwise invisible in serving output).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamAnnotation {
    /// Node whose traffic is being drained by an active failure storm.
    pub storm_victim: Option<usize>,
    /// Number of flash-crowd episodes active on this column.
    pub active_flashes: usize,
    /// Spread of the random-walk drift multipliers (max/min; 1.0 = no
    /// drift accumulated yet or drift disabled).
    pub drift_spread: f64,
    /// Whether the permanent [`StepShiftConfig`] step change is in effect.
    pub shifted: bool,
}

impl StreamAnnotation {
    /// `true` when nothing noteworthy was active (no storm, no flash
    /// crowds, no step shift) — quiet ticks are usually not worth logging.
    pub fn is_quiet(&self) -> bool {
        self.storm_victim.is_none() && self.active_flashes == 0 && !self.shifted
    }
}

/// Parameters of the unbounded online generator.
#[derive(Debug, Clone)]
pub struct OnlineStreamConfig {
    /// Aggregation interval in seconds (metadata only).
    pub interval_seconds: f64,
    /// Amplitude of the diurnal modulation.
    pub diurnal_amplitude: f64,
    /// Diurnal period in ticks.
    pub diurnal_period: f64,
    /// Per-tick multiplicative noise applied to every pair.
    pub noise: f64,
    /// Slow random-walk drift of per-pair means (`None` disables).
    pub drift: Option<DriftConfig>,
    /// Flash-crowd episode injection (`None` disables).
    pub flash_crowds: Option<FlashCrowdConfig>,
    /// Failure-storm episode injection (`None` disables).
    pub failure_storms: Option<FailureStormConfig>,
    /// Permanent distribution step change (`None` disables).  Consumes no
    /// randomness: configs that differ only here draw identical noise.
    pub shift: Option<StepShiftConfig>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OnlineStreamConfig {
    fn default() -> Self {
        OnlineStreamConfig {
            interval_seconds: 900.0,
            diurnal_amplitude: 0.25,
            diurnal_period: 96.0,
            noise: 0.06,
            drift: Some(DriftConfig::default()),
            flash_crowds: Some(FlashCrowdConfig::default()),
            failure_storms: Some(FailureStormConfig::default()),
            shift: None,
            seed: 31,
        }
    }
}

/// One active flash-crowd episode.
#[derive(Debug, Clone, Copy)]
struct FlashEpisode {
    pair: usize,
    magnitude: f64,
    remaining: usize,
}

/// An unbounded, seeded demand generator; see the module docs.
///
/// Natively columnar since PR 7: the per-slot base rates live over an
/// [`ActivePairs`] index and each tick produces one [`SparseDemand`] column.
/// [`OnlineStream::from_base`] uses the all-pairs index (whose slot order
/// equals the old dense row-major pair order), so the dense
/// [`DemandStream`] adapter yields bit-identical matrices to the pre-sparse
/// implementation.
#[derive(Debug, Clone)]
pub struct OnlineStream {
    config: OnlineStreamConfig,
    active: Arc<ActivePairs>,
    /// Per-slot base rate, aligned to `active`.
    base: Vec<f64>,
    rng: ChaCha8Rng,
    tick: usize,
    /// Random-walk drift multiplier per slot (all 1.0 when drift is off).
    drift_mult: Vec<f64>,
    flashes: Vec<FlashEpisode>,
    storm: Option<(usize, usize)>, // (victim node, remaining ticks)
}

impl OnlineStream {
    /// Builds a stream whose base matrix is the gravity model of `graph` at
    /// `load_factor` of capacity (the same base the WAN generator uses).
    pub fn from_graph(graph: &Graph, load_factor: f64, config: OnlineStreamConfig) -> OnlineStream {
        OnlineStream::from_base(&gravity_matrix(graph, load_factor), config)
    }

    /// Builds a stream around an explicit base matrix (e.g. the mean of a
    /// recorded trace, so an online scenario continues where replay ended).
    /// The stream runs over the all-pairs index (the dense adapter).
    pub fn from_base(base: &DemandMatrix, config: OnlineStreamConfig) -> OnlineStream {
        let active = Arc::new(ActivePairs::all(base.num_nodes()));
        OnlineStream::from_slots(active, base.flatten_pairs(), config)
    }

    /// Builds a stream around a sparse base column: only the column's active
    /// pairs ever carry traffic, and per-tick work and storage are `O(nnz)`.
    pub fn from_sparse_base(base: &SparseDemand, config: OnlineStreamConfig) -> OnlineStream {
        OnlineStream::from_slots(Arc::clone(base.active()), base.values().to_vec(), config)
    }

    fn from_slots(
        active: Arc<ActivePairs>,
        base: Vec<f64>,
        config: OnlineStreamConfig,
    ) -> OnlineStream {
        assert_eq!(base.len(), active.len(), "one base rate per active pair is required");
        let rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5e7e_a11f);
        let num_slots = base.len();
        OnlineStream {
            config,
            active,
            base,
            rng,
            tick: 0,
            drift_mult: vec![1.0; num_slots],
            flashes: Vec::new(),
            storm: None,
        }
    }

    /// Ticks generated so far.
    pub fn ticks(&self) -> usize {
        self.tick
    }

    /// The event state behind the most recently generated column (call right
    /// after [`SparseDemandStream::next_column`] /
    /// [`DemandStream::next_demand`]).  Before the first column it describes
    /// the initial quiet state.
    pub fn annotation(&self) -> StreamAnnotation {
        let spread = match self.config.drift {
            None => 1.0,
            Some(_) => {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &m in &self.drift_mult {
                    lo = lo.min(m);
                    hi = hi.max(m);
                }
                if lo.is_finite() && lo > 0.0 {
                    hi / lo
                } else {
                    1.0
                }
            }
        };
        StreamAnnotation {
            storm_victim: self.storm.map(|(node, _)| node),
            active_flashes: self.flashes.len(),
            drift_spread: spread,
            // `tick` was already advanced past the generated column, so the
            // column at tick `t = self.tick - 1` was shifted iff
            // `t >= at_tick`.
            shifted: self.config.shift.is_some_and(|s| self.tick > s.at_tick),
        }
    }

    /// Advances the event state one tick.  Randomness is consumed in a fixed
    /// order (drift, then flash crowds, then storms) so the stream is fully
    /// determined by (config, seed).
    fn advance_events(&mut self) {
        if let Some(drift) = self.config.drift {
            for m in &mut self.drift_mult {
                let step = 1.0 + drift.step * self.rng.gen_range(-1.0..1.0);
                *m = (*m * step).clamp(1.0 / drift.limit, drift.limit);
            }
        }
        if let Some(fc) = self.config.flash_crowds {
            self.flashes.retain_mut(|f| {
                f.remaining -= 1;
                f.remaining > 0
            });
            if self.rng.gen::<f64>() < fc.probability {
                for _ in 0..fc.pairs {
                    let pair = self.rng.gen_range(0..self.base.len());
                    let magnitude = self.rng.gen_range(fc.magnitude.0..fc.magnitude.1);
                    let remaining = self.rng.gen_range(fc.duration.0..fc.duration.1).max(1);
                    self.flashes.push(FlashEpisode { pair, magnitude, remaining });
                }
            }
        }
        if let Some(fs) = self.config.failure_storms {
            if let Some((node, remaining)) = self.storm {
                self.storm = if remaining > 1 { Some((node, remaining - 1)) } else { None };
            }
            if self.storm.is_none() && self.rng.gen::<f64>() < fs.probability {
                let node = self.rng.gen_range(0..self.active.num_nodes());
                let duration = self.rng.gen_range(fs.duration.0..fs.duration.1).max(1);
                self.storm = Some((node, duration));
            }
        }
    }
}

impl SparseDemandStream for OnlineStream {
    fn active(&self) -> &Arc<ActivePairs> {
        &self.active
    }

    fn next_column(&mut self) -> Option<SparseDemand> {
        self.advance_events();
        let phase = 2.0 * std::f64::consts::PI * (self.tick as f64) / self.config.diurnal_period;
        let season = 1.0 + self.config.diurnal_amplitude * phase.sin();
        let drain = self.config.failure_storms.map(|fs| fs.drain).unwrap_or(0.0);
        let shift = self.config.shift.filter(|s| self.tick >= s.at_tick);
        let active = Arc::clone(&self.active);
        let mut column = SparseDemand::zeros(Arc::clone(&active));
        for (slot, s, d) in active.iter() {
            let noise = 1.0 + self.config.noise * self.rng.gen_range(-1.0..1.0);
            let mut value = self.base[slot] * season * self.drift_mult[slot] * noise;
            if let Some(sh) = shift {
                value *= if slot % 2 == 0 { sh.factor } else { 1.0 / sh.factor };
            }
            for f in &self.flashes {
                if f.pair == slot {
                    value *= f.magnitude;
                }
            }
            if let Some((victim, _)) = self.storm {
                if s == victim || d == victim {
                    value *= 1.0 - drain;
                }
            }
            column.set_slot(slot, value);
        }
        self.tick += 1;
        Some(column)
    }
}

impl DemandStream for OnlineStream {
    fn num_nodes(&self) -> usize {
        self.active.num_nodes()
    }

    fn next_demand(&mut self) -> Option<DemandMatrix> {
        self.next_column().map(|c| c.to_matrix())
    }
}

/// Replays the columns of an existing [`SparseTrace`] in order — the sparse
/// counterpart of [`ReplayStream`].
#[derive(Debug, Clone)]
pub struct SparseReplayStream {
    trace: SparseTrace,
    cursor: usize,
    looping: bool,
}

impl SparseReplayStream {
    /// Replays the trace once, then reports exhaustion.
    pub fn once(trace: SparseTrace) -> SparseReplayStream {
        SparseReplayStream { trace, cursor: 0, looping: false }
    }

    /// Replays the trace forever, wrapping around at the end.
    pub fn looping(trace: SparseTrace) -> SparseReplayStream {
        assert!(!trace.is_empty(), "cannot loop over an empty trace");
        SparseReplayStream { trace, cursor: 0, looping: true }
    }

    /// Starts the replay at snapshot `start` instead of 0.
    pub fn starting_at(mut self, start: usize) -> SparseReplayStream {
        self.cursor = start;
        self
    }

    /// Snapshots left before exhaustion (`None` for a looping stream).
    pub fn remaining(&self) -> Option<usize> {
        if self.looping {
            None
        } else {
            Some(self.trace.len().saturating_sub(self.cursor))
        }
    }
}

impl SparseDemandStream for SparseReplayStream {
    fn active(&self) -> &Arc<ActivePairs> {
        self.trace.active()
    }

    fn next_column(&mut self) -> Option<SparseDemand> {
        if self.cursor >= self.trace.len() {
            if !self.looping {
                return None;
            }
            self.cursor = 0;
        }
        let c = self.trace.snapshot(self.cursor).clone();
        self.cursor += 1;
        Some(c)
    }
}

impl DemandStream for SparseReplayStream {
    fn num_nodes(&self) -> usize {
        self.trace.num_nodes()
    }

    fn next_demand(&mut self) -> Option<DemandMatrix> {
        self.next_column().map(|c| c.to_matrix())
    }
}

/// Materializes the next `ticks` demands of any stream into a trace (mainly
/// for tests and for feeding batch tooling from a streaming source).
pub fn collect_stream(
    stream: &mut dyn DemandStream,
    ticks: usize,
    interval_seconds: f64,
) -> TrafficTrace {
    let mut matrices = Vec::with_capacity(ticks);
    for _ in 0..ticks {
        match stream.next_demand() {
            Some(m) => matrices.push(m),
            None => break,
        }
    }
    TrafficTrace::new("stream", interval_seconds, matrices)
}

/// Materializes the next `ticks` columns of a sparse stream into a
/// [`SparseTrace`] (the columnar counterpart of [`collect_stream`]).
pub fn collect_sparse_stream(
    stream: &mut dyn SparseDemandStream,
    ticks: usize,
    interval_seconds: f64,
) -> SparseTrace {
    let active = Arc::clone(stream.active());
    let mut columns = Vec::with_capacity(ticks);
    for _ in 0..ticks {
        match stream.next_column() {
            Some(c) => columns.push(c),
            None => break,
        }
    }
    SparseTrace::new("stream", interval_seconds, active, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use figret_topology::{Topology, TopologySpec};

    fn geant() -> Graph {
        TopologySpec::full_scale(Topology::Geant).build()
    }

    #[test]
    fn replay_yields_the_trace_in_order_then_ends() {
        let g = geant();
        let trace = crate::wan::wan_trace(
            &g,
            &crate::wan::WanTrafficConfig { num_snapshots: 5, ..Default::default() },
        );
        let mut s = ReplayStream::once(trace.clone());
        assert_eq!(s.num_nodes(), trace.num_nodes());
        for t in 0..5 {
            assert_eq!(s.remaining(), Some(5 - t));
            assert_eq!(s.next_demand().as_ref(), Some(trace.matrix(t)));
        }
        assert_eq!(s.next_demand(), None);
        assert_eq!(s.remaining(), Some(0));
    }

    #[test]
    fn looping_replay_wraps_and_starting_at_skips() {
        let g = geant();
        let trace = crate::wan::wan_trace(
            &g,
            &crate::wan::WanTrafficConfig { num_snapshots: 3, ..Default::default() },
        );
        let mut s = ReplayStream::looping(trace.clone()).starting_at(2);
        assert_eq!(s.remaining(), None);
        assert_eq!(s.next_demand().as_ref(), Some(trace.matrix(2)));
        assert_eq!(s.next_demand().as_ref(), Some(trace.matrix(0)));
        assert_eq!(s.next_demand().as_ref(), Some(trace.matrix(1)));
    }

    #[test]
    fn online_stream_is_unbounded_and_deterministic() {
        let g = geant();
        let config = OnlineStreamConfig { seed: 77, ..Default::default() };
        let mut a = OnlineStream::from_graph(&g, 0.25, config.clone());
        let mut b = OnlineStream::from_graph(&g, 0.25, config);
        for _ in 0..40 {
            let ma = a.next_demand().unwrap();
            let mb = b.next_demand().unwrap();
            assert_eq!(ma, mb);
            assert!(ma.total() > 0.0);
        }
        assert_eq!(a.ticks(), 40);
    }

    #[test]
    fn different_seeds_diverge() {
        let g = geant();
        let mut a = OnlineStream::from_graph(
            &g,
            0.25,
            OnlineStreamConfig { seed: 1, ..Default::default() },
        );
        let mut b = OnlineStream::from_graph(
            &g,
            0.25,
            OnlineStreamConfig { seed: 2, ..Default::default() },
        );
        assert_ne!(a.next_demand(), b.next_demand());
    }

    #[test]
    fn flash_crowds_create_bursts() {
        let g = geant();
        let config = OnlineStreamConfig {
            noise: 0.0,
            drift: None,
            failure_storms: None,
            flash_crowds: Some(FlashCrowdConfig {
                probability: 0.5,
                magnitude: (4.0, 5.0),
                duration: (1, 3),
                pairs: 2,
            }),
            seed: 5,
            ..Default::default()
        };
        let mut s = OnlineStream::from_graph(&g, 0.25, config);
        let base = gravity_matrix(&g, 0.25);
        let mut burst_seen = false;
        for _ in 0..50 {
            let m = s.next_demand().unwrap();
            for src in 0..m.num_nodes() {
                for dst in 0..m.num_nodes() {
                    if src != dst && base.get(src, dst) > 0.0 {
                        // diurnal swing is at most 1.25x; a 4x burst sticks out.
                        if m.get(src, dst) > 3.0 * base.get(src, dst) {
                            burst_seen = true;
                        }
                    }
                }
            }
        }
        assert!(burst_seen, "flash crowds must produce visible bursts");
    }

    #[test]
    fn failure_storms_drain_a_node() {
        let g = geant();
        let config = OnlineStreamConfig {
            noise: 0.0,
            drift: None,
            flash_crowds: None,
            diurnal_amplitude: 0.0,
            failure_storms: Some(FailureStormConfig {
                probability: 1.0,
                duration: (3, 4),
                drain: 1.0,
            }),
            seed: 9,
            ..Default::default()
        };
        let mut s = OnlineStream::from_graph(&g, 0.25, config);
        let m = s.next_demand().unwrap();
        // Some node's row and column must be fully drained.
        let n = m.num_nodes();
        let drained =
            (0..n).any(|v| (0..n).all(|o| o == v || (m.get(v, o) == 0.0 && m.get(o, v) == 0.0)));
        assert!(drained, "a storm with drain=1.0 must zero out one node's traffic");
    }

    #[test]
    fn sparse_and_dense_online_streams_agree_bitwise() {
        let g = geant();
        let config = OnlineStreamConfig { seed: 123, ..Default::default() };
        let mut dense = OnlineStream::from_graph(&g, 0.25, config.clone());
        let mut sparse = OnlineStream::from_graph(&g, 0.25, config);
        for _ in 0..25 {
            let m = dense.next_demand().unwrap();
            let c = sparse.next_column().unwrap();
            assert_eq!(c.to_matrix(), m);
        }
    }

    #[test]
    fn sparse_base_stream_stays_on_its_support() {
        let active = Arc::new(ActivePairs::sample_per_source(40, 4, 3));
        let base = SparseDemand::from_values(Arc::clone(&active), vec![1.0; active.len()]).unwrap();
        let mut s = OnlineStream::from_sparse_base(&base, OnlineStreamConfig::default());
        assert_eq!(s.active().len(), 160);
        let trace = collect_sparse_stream(&mut s, 10, 60.0);
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.nnz(), 160);
        assert!(trace.snapshot(9).total() > 0.0);
    }

    #[test]
    fn sparse_replay_matches_dense_replay() {
        let g = geant();
        let trace = crate::wan::wan_trace(
            &g,
            &crate::wan::WanTrafficConfig { num_snapshots: 6, ..Default::default() },
        );
        let sparse = SparseTrace::from_trace(&trace);
        let mut a = ReplayStream::looping(trace).starting_at(4);
        let mut b = SparseReplayStream::looping(sparse).starting_at(4);
        assert_eq!(b.remaining(), None);
        for _ in 0..10 {
            assert_eq!(a.next_demand(), b.next_demand());
        }
        let mut once = SparseReplayStream::once(collect_sparse_stream(
            &mut OnlineStream::from_graph(&g, 0.25, OnlineStreamConfig::default()),
            3,
            60.0,
        ));
        assert_eq!(once.remaining(), Some(3));
        assert!(once.next_column().is_some());
        assert_eq!(once.remaining(), Some(2));
    }

    #[test]
    fn step_shift_changes_the_shape_without_consuming_randomness() {
        let g = geant();
        let base = OnlineStreamConfig { seed: 44, ..Default::default() };
        let shifted = OnlineStreamConfig {
            shift: Some(StepShiftConfig { at_tick: 3, factor: 4.0 }),
            ..base.clone()
        };
        let mut a = OnlineStream::from_graph(&g, 0.25, base);
        let mut b = OnlineStream::from_graph(&g, 0.25, shifted);
        for t in 0..8 {
            let ma = a.next_demand().unwrap();
            let mb = b.next_demand().unwrap();
            if t < 3 {
                // The shift consumes no RNG: pre-shift columns are
                // bit-identical to the unshifted stream's.
                assert_eq!(ma, mb, "tick {t} must be untouched before the shift");
                assert!(!b.annotation().shifted);
            } else {
                assert_ne!(ma, mb, "tick {t} must be reshaped by the shift");
                assert!(b.annotation().shifted);
                // Even slots scale by 4, odd by 1/4: totals stay comparable
                // while the shape changes (paired slots swap magnitudes).
                let (ta, tb) = (ma.total(), mb.total());
                assert!(tb > 0.5 * ta && tb < 5.0 * ta, "tick {t}: {ta} vs {tb}");
            }
        }
    }

    #[test]
    fn annotation_reports_active_episodes() {
        let g = geant();
        let config = OnlineStreamConfig {
            noise: 0.0,
            drift: None,
            flash_crowds: None,
            failure_storms: Some(FailureStormConfig {
                probability: 1.0,
                duration: (3, 4),
                drain: 0.5,
            }),
            seed: 9,
            ..Default::default()
        };
        let mut s = OnlineStream::from_graph(&g, 0.25, config);
        assert!(s.annotation().is_quiet(), "no episodes before the first column");
        s.next_demand().unwrap();
        let ann = s.annotation();
        assert!(ann.storm_victim.is_some(), "a p=1.0 storm must be active");
        assert_eq!(ann.active_flashes, 0);
        assert_eq!(ann.drift_spread, 1.0);
        assert!(!ann.is_quiet());
    }

    #[test]
    fn collect_stream_materializes_ticks() {
        let g = geant();
        let mut s = OnlineStream::from_graph(
            &g,
            0.25,
            OnlineStreamConfig { seed: 3, ..Default::default() },
        );
        let trace = collect_stream(&mut s, 12, 60.0);
        assert_eq!(trace.len(), 12);
        assert_eq!(trace.num_nodes(), g.num_nodes());
        // A finite replay stops early.
        let mut r = ReplayStream::once(trace.clone());
        let t2 = collect_stream(&mut r, 50, 60.0);
        assert_eq!(t2.len(), 12);
    }
}
