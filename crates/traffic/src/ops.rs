//! Shared element-wise demand kernels.
//!
//! Every arithmetic demand operation — EWMA blending, clamped accumulation,
//! element-wise maxima, cosine similarity — is defined **once** here on plain
//! `f64` slices and reused by both storage layouts:
//!
//! * [`DemandMatrix`](crate::DemandMatrix) applies a kernel to its dense
//!   `n * n` backing store (the zero diagonal participates but is a no-op for
//!   every kernel below), and
//! * [`SparseDemand`](crate::SparseDemand) applies the same kernel to its
//!   `nnz`-length value column.
//!
//! Because the two layouts run the *same* floating-point expressions in the
//! same order over entries that differ only by interleaved exact zeros, the
//! dense adapter and the sparse core produce **bit-identical** results — the
//! property the serving equivalence tests rely on (DESIGN.md §7).

/// Sum of all entries (`DemandMatrix::total` / `SparseDemand::total`).
///
/// Interleaved exact zeros do not change a finite sum, so dense (with its
/// zero diagonal) and sparse agree bitwise when the inactive entries are zero.
#[inline]
pub fn total(values: &[f64]) -> f64 {
    values.iter().sum()
}

/// Largest entry, with 0.0 as the floor (demands are non-negative).
#[inline]
pub fn max_entry(values: &[f64]) -> f64 {
    values.iter().cloned().fold(0.0, f64::max)
}

/// In-place EWMA blend `a ← (1 − α)·a + α·b`, clamped at zero per entry.
#[inline]
pub fn ewma_blend(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "EWMA operands must have the same length");
    for (x, y) in a.iter_mut().zip(b) {
        *x = ((*x * (1.0 - alpha)).max(0.0) + alpha * y).max(0.0);
    }
}

/// Clamped accumulation `out[i] ← (out[i] + b[i]).max(0)` — the column
/// counterpart of folding with `axpy(1.0, ·)`.
#[inline]
pub fn accumulate_clamped(out: &mut [f64], b: &[f64]) {
    assert_eq!(out.len(), b.len(), "accumulation operands must have the same length");
    for (x, y) in out.iter_mut().zip(b) {
        *x = (*x + y).max(0.0);
    }
}

/// Element-wise maximum fold `out[i] ← max(out[i], b[i])`.
#[inline]
pub fn max_assign(out: &mut [f64], b: &[f64]) {
    assert_eq!(out.len(), b.len(), "max operands must have the same length");
    for (x, y) in out.iter_mut().zip(b) {
        *x = x.max(*y);
    }
}

/// Clamped linear combination into a fresh vector: `(a[i] + scale·b[i]).max(0)`.
#[inline]
pub fn axpy_clamped(a: &[f64], scale: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "axpy operands must have the same length");
    a.iter().zip(b).map(|(x, y)| (x + scale * y).max(0.0)).collect()
}

/// Clamped scaling into a fresh vector: `(v[i] · factor).max(0)`.
#[inline]
pub fn scale_clamped(values: &[f64], factor: f64) -> Vec<f64> {
    values.iter().map(|v| (v * factor).max(0.0)).collect()
}

/// In-place clamped scaling `v[i] ← (v[i] · factor).max(0)` — used by the
/// sliding-mean predictor to turn an accumulated window sum into a mean.
#[inline]
pub fn scale_clamped_in_place(values: &mut [f64], factor: f64) {
    for v in values.iter_mut() {
        *v = (*v * factor).max(0.0);
    }
}

/// Cosine similarity of two demand vectors.  Returns 1.0 when both are
/// all-zero and 0.0 when exactly one is (the convention of Figure 4).
#[inline]
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine operands must have the same length");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 && nb == 0.0 {
        1.0
    } else if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_match_their_matrix_counterparts_semantics() {
        let mut a = vec![1.0, 0.0, 3.0];
        let b = vec![2.0, 5.0, 1.0];
        assert_eq!(total(&a), 4.0);
        assert_eq!(max_entry(&a), 3.0);
        ewma_blend(&mut a, 0.5, &b);
        assert_eq!(a, vec![1.5, 2.5, 2.0]);
        accumulate_clamped(&mut a, &b);
        assert_eq!(a, vec![3.5, 7.5, 3.0]);
        max_assign(&mut a, &[9.0, 0.0, 0.0]);
        assert_eq!(a, vec![9.0, 7.5, 3.0]);
        assert_eq!(axpy_clamped(&[1.0, 2.0], -1.0, &[5.0, 1.0]), vec![0.0, 1.0]);
        assert_eq!(scale_clamped(&[2.0, 4.0], 0.5), vec![1.0, 2.0]);
        let mut v = vec![2.0, 4.0];
        scale_clamped_in_place(&mut v, 0.5);
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn cosine_conventions() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine_similarity(&[0.0], &[1.0]), 0.0);
        assert!((cosine_similarity(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zeros_do_not_change_totals_or_cosine() {
        // The bit-identity argument: interleaving exact zeros (the dense
        // diagonal / inactive pairs) leaves every kernel's result unchanged.
        let sparse = [1.25, 3.5, 0.75];
        let dense = [0.0, 1.25, 0.0, 3.5, 0.75, 0.0];
        assert_eq!(total(&sparse).to_bits(), total(&dense).to_bits());
        assert_eq!(max_entry(&sparse).to_bits(), max_entry(&dense).to_bits());
        let other_sparse = [2.0, 0.5, 4.0];
        let other_dense = [0.0, 2.0, 0.0, 0.5, 4.0, 0.0];
        assert_eq!(
            cosine_similarity(&sparse, &other_sparse).to_bits(),
            cosine_similarity(&dense, &other_dense).to_bits()
        );
    }
}
