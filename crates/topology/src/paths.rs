//! Network paths and path-level quantities.
//!
//! A path is an ordered sequence of directed edges between a source and a
//! destination.  Its capacity is the minimum capacity over the edges it
//! traverses (`C_p = min_{e in p} c(e)` in the paper, §3).

use crate::graph::{EdgeId, Graph, NodeId};

/// A simple directed path through a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// Builds a path from the sequence of edge ids it traverses.
    ///
    /// Returns `None` if the edges do not form a contiguous simple path (each
    /// edge must start where the previous one ended, and no node may repeat).
    pub fn from_edges(graph: &Graph, edges: Vec<EdgeId>) -> Option<Path> {
        if edges.is_empty() {
            return None;
        }
        let mut nodes = Vec::with_capacity(edges.len() + 1);
        nodes.push(graph.edge(edges[0]).src);
        for (i, &eid) in edges.iter().enumerate() {
            let e = graph.edge(eid);
            if e.src != *nodes.last().expect("nodes is non-empty") {
                return None;
            }
            // Simplicity check: the destination must not already appear,
            // except that we have not pushed it yet so any duplicate is a cycle.
            if nodes.contains(&e.dst) {
                return None;
            }
            nodes.push(e.dst);
            let _ = i;
        }
        Some(Path { nodes, edges })
    }

    /// Builds a path from the sequence of nodes it visits, looking up an edge
    /// between each consecutive pair.  Returns `None` if some hop has no edge.
    pub fn from_nodes(graph: &Graph, nodes: &[NodeId]) -> Option<Path> {
        if nodes.len() < 2 {
            return None;
        }
        let mut edges = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            edges.push(graph.find_edge(w[0], w[1])?);
        }
        Path::from_edges(graph, edges)
    }

    /// Source node of the path.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node of the path.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("a path has at least two nodes")
    }

    /// Nodes visited by the path, in order (including source and destination).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edges traversed by the path, in order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of hops (edges).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the path has no edges.  Never true for a constructed `Path`,
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Path capacity: the minimum capacity over the traversed edges.
    pub fn capacity(&self, graph: &Graph) -> f64 {
        self.edges.iter().map(|&e| graph.capacity(e)).fold(f64::INFINITY, f64::min)
    }

    /// Sum of `weight(edge)` over the path's edges.
    pub fn weight<F: Fn(EdgeId) -> f64>(&self, weight: F) -> f64 {
        self.edges.iter().map(|&e| weight(e)).sum()
    }

    /// `true` if the path traverses the given edge.
    pub fn uses_edge(&self, edge: EdgeId) -> bool {
        self.edges.contains(&edge)
    }

    /// `true` if the path traverses any of the given edges.
    pub fn uses_any_edge(&self, edges: &[EdgeId]) -> bool {
        edges.iter().any(|e| self.uses_edge(*e))
    }

    /// `true` if the path visits the given node (including endpoints).
    pub fn visits_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn line() -> Graph {
        // 0 -> 1 -> 2 -> 3 with increasing capacities, plus a shortcut 0 -> 2.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 3.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 5.0).unwrap();
        g
    }

    #[test]
    fn from_edges_builds_contiguous_path() {
        let g = line();
        let p = Path::from_edges(&g, vec![EdgeId(0), EdgeId(1), EdgeId(2)]).unwrap();
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.destination(), NodeId(3));
        assert_eq!(p.len(), 3);
        assert_eq!(p.capacity(&g), 1.0);
        assert!(p.uses_edge(EdgeId(1)));
        assert!(!p.uses_edge(EdgeId(3)));
    }

    #[test]
    fn from_edges_rejects_gaps() {
        let g = line();
        // EdgeId(0) is 0->1, EdgeId(2) is 2->3: not contiguous.
        assert!(Path::from_edges(&g, vec![EdgeId(0), EdgeId(2)]).is_none());
        assert!(Path::from_edges(&g, vec![]).is_none());
    }

    #[test]
    fn from_nodes_looks_up_edges() {
        let g = line();
        let p = Path::from_nodes(&g, &[NodeId(0), NodeId(2), NodeId(3)]).unwrap();
        assert_eq!(p.edges(), &[EdgeId(3), EdgeId(2)]);
        assert_eq!(p.capacity(&g), 3.0);
        assert!(Path::from_nodes(&g, &[NodeId(3), NodeId(0)]).is_none());
        assert!(Path::from_nodes(&g, &[NodeId(0)]).is_none());
    }

    #[test]
    fn rejects_cycles() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        g.add_edge(NodeId(2), NodeId(0), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap(); // parallel edge
                                                        // 0 -> 1 -> 2 -> 0 revisits node 0.
        assert!(Path::from_edges(&g, vec![EdgeId(0), EdgeId(1), EdgeId(2)]).is_none());
    }

    #[test]
    fn weight_and_node_queries() {
        let g = line();
        let p = Path::from_nodes(&g, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(p.weight(|_| 1.0), 2.0);
        assert!((p.weight(|e| g.capacity(e)) - 3.0).abs() < 1e-12);
        assert!(p.visits_node(NodeId(1)));
        assert!(!p.visits_node(NodeId(3)));
        assert!(p.uses_any_edge(&[EdgeId(2), EdgeId(1)]));
        assert!(!p.uses_any_edge(&[EdgeId(2), EdgeId(3)]));
    }
}
