//! Räcke-style oblivious path selection (the path set used by SMORE).
//!
//! SMORE [Kumar et al., NSDI'18] selects paths with Räcke's oblivious-routing
//! decomposition, which spreads each source-destination pair over several
//! capacity-aware, mutually diverse paths.  The full Räcke decomposition builds
//! a distribution over hierarchical cut trees; reproducing it exactly is out of
//! scope, so we implement the widely used practical approximation that captures
//! the two properties the FIGRET evaluation relies on (Figure 6):
//!
//! 1. paths are chosen with capacity-aware costs (fat links preferred), and
//! 2. successive paths for the same pair avoid each other by multiplicatively
//!    penalizing edges already used (so path sets are diverse, not just the
//!    k shortest).
//!
//! This is the classic iterative penalization heuristic for oblivious-style
//! path selection; the substitution is documented in DESIGN.md §5.

use crate::graph::{Graph, NodeId};
use crate::paths::Path;
use crate::shortest::dijkstra_with_bans;

/// Configuration of the Räcke-style path selector.
#[derive(Debug, Clone, Copy)]
pub struct RackeConfig {
    /// Number of paths to select per source-destination pair.
    pub paths_per_pair: usize,
    /// Multiplicative penalty applied to an edge each time a selected path
    /// uses it.  Must be > 1; larger values force more diversity.
    pub penalty: f64,
}

impl Default for RackeConfig {
    fn default() -> Self {
        RackeConfig { paths_per_pair: 3, penalty: 4.0 }
    }
}

/// Selects up to `config.paths_per_pair` diverse, capacity-aware paths from
/// `src` to `dst`.
///
/// Returns fewer paths if the graph does not contain enough distinct simple
/// paths; returns an empty vector if `dst` is unreachable.
pub fn racke_paths(graph: &Graph, src: NodeId, dst: NodeId, config: &RackeConfig) -> Vec<Path> {
    assert!(config.penalty > 1.0, "penalty must be > 1");
    let mut multiplier = vec![1.0f64; graph.num_edges()];
    let banned_nodes = vec![false; graph.num_nodes()];
    let banned_edges = vec![false; graph.num_edges()];
    let mut result: Vec<Path> = Vec::new();

    for _ in 0..config.paths_per_pair {
        let cost = |e: crate::graph::EdgeId| multiplier[e.index()] / graph.capacity(e);
        let path = dijkstra_with_bans(graph, src, dst, cost, &banned_nodes, &banned_edges);
        let path = match path {
            Some(p) => p,
            None => break,
        };
        // Penalize the edges of the chosen path so the next iteration avoids them.
        for &e in path.edges() {
            multiplier[e.index()] *= config.penalty;
        }
        if !result.contains(&path) {
            result.push(path);
        }
    }
    result
}

/// Selects Räcke-style paths for every ordered source-destination pair.
///
/// The result is indexed in the same SD-pair order as [`Graph::sd_pairs`].
pub fn racke_paths_all_pairs(graph: &Graph, config: &RackeConfig) -> Vec<Vec<Path>> {
    graph.sd_pairs().into_iter().map(|(s, d)| racke_paths(graph, s, d, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Two disjoint routes 0->1->3 and 0->2->3 plus a direct thin edge 0->3.
    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 10.0).unwrap();
        g.add_edge(NodeId(1), NodeId(3), 10.0).unwrap();
        g.add_edge(NodeId(0), NodeId(2), 10.0).unwrap();
        g.add_edge(NodeId(2), NodeId(3), 10.0).unwrap();
        g.add_edge(NodeId(0), NodeId(3), 1.0).unwrap();
        g
    }

    #[test]
    fn produces_diverse_paths() {
        let g = diamond();
        let paths = racke_paths(&g, NodeId(0), NodeId(3), &RackeConfig::default());
        assert!(paths.len() >= 2, "expected at least two diverse paths, got {}", paths.len());
        // The first two must be the edge-disjoint fat routes, not the thin direct edge.
        assert_eq!(paths[0].len(), 2);
        assert_eq!(paths[1].len(), 2);
        let shared: Vec<_> = paths[0].edges().iter().filter(|e| paths[1].uses_edge(**e)).collect();
        assert!(shared.is_empty(), "first two Räcke paths should be edge-disjoint");
    }

    #[test]
    fn dedupes_when_graph_has_single_route() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let paths = racke_paths(&g, NodeId(0), NodeId(2), &RackeConfig::default());
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn unreachable_gives_empty() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(racke_paths(&g, NodeId(0), NodeId(2), &RackeConfig::default()).is_empty());
    }

    #[test]
    fn all_pairs_matches_sd_ordering() {
        let g = diamond();
        let all = racke_paths_all_pairs(&g, &RackeConfig::default());
        assert_eq!(all.len(), g.sd_pairs().len());
        for ((s, d), paths) in g.sd_pairs().into_iter().zip(&all) {
            for p in paths {
                assert_eq!(p.source(), s);
                assert_eq!(p.destination(), d);
            }
        }
    }

    #[test]
    #[should_panic(expected = "penalty must be > 1")]
    fn rejects_bad_penalty() {
        let g = diamond();
        racke_paths(&g, NodeId(0), NodeId(3), &RackeConfig { paths_per_pair: 2, penalty: 1.0 });
    }
}
