//! # figret-topology
//!
//! Network-topology substrate for the FIGRET reproduction.
//!
//! The crate provides:
//!
//! * [`graph::Graph`] — directed, capacitated graphs (`G = (V, E, c)` of §3 of
//!   the paper);
//! * [`paths::Path`] — simple directed paths with path capacity
//!   `C_p = min_{e in p} c(e)`;
//! * [`shortest`] — Dijkstra and Yen's k-shortest-paths (the paper's candidate
//!   path selection, §5.1);
//! * [`racke`] — Räcke-style diverse path selection (the SMORE path set,
//!   Figure 6);
//! * [`generators`] — deterministic constructors for every topology of Table 1;
//! * [`failures`] — random link-failure scenarios (Figures 7, 14, 15).
//!
//! # Example
//!
//! ```
//! use figret_topology::generators::{Topology, TopologySpec};
//! use figret_topology::shortest::{k_shortest_paths, EdgeWeight};
//! use figret_topology::graph::NodeId;
//!
//! let geant = TopologySpec::full_scale(Topology::Geant).build();
//! assert_eq!(geant.num_nodes(), 23);
//! let paths = k_shortest_paths(&geant, NodeId(0), NodeId(5), 3, EdgeWeight::HopCount);
//! assert!(!paths.is_empty());
//! ```

#![warn(missing_docs)]

pub mod fabric;
pub mod failures;
pub mod generators;
pub mod graph;
pub mod paths;
pub mod racke;
pub mod shortest;

pub use fabric::{two_tier_pod_size, Fabric, FabricFlavor, FabricSpec};
pub use failures::{random_link_failures, FailureScenario};
pub use generators::{build_topology, Scale, Topology, TopologySpec};
pub use graph::{Edge, EdgeId, Graph, GraphError, NodeId};
pub use paths::Path;
pub use racke::{racke_paths, racke_paths_all_pairs, RackeConfig};
pub use shortest::{dijkstra_with_bans, k_shortest_paths, shortest_path, EdgeWeight};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_connected_graph() -> impl Strategy<Value = Graph> {
        // Ring of n nodes plus some random chords, random capacities.
        (3usize..10, proptest::collection::vec((0usize..10, 0usize..10, 1u32..100), 0..12))
            .prop_map(|(n, chords)| {
                let mut g = Graph::new(n);
                for i in 0..n {
                    g.add_bidirectional(NodeId(i), NodeId((i + 1) % n), 10.0).unwrap();
                }
                for (a, b, c) in chords {
                    let (a, b) = (a % n, b % n);
                    if a != b && !g.has_edge(NodeId(a), NodeId(b)) {
                        g.add_bidirectional(NodeId(a), NodeId(b), c as f64).unwrap();
                    }
                }
                g
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn yen_paths_are_simple_sorted_and_distinct(g in arbitrary_connected_graph(), k in 1usize..5) {
            let src = NodeId(0);
            let dst = NodeId(g.num_nodes() - 1);
            let paths = k_shortest_paths(&g, src, dst, k, EdgeWeight::HopCount);
            prop_assert!(paths.len() <= k);
            prop_assert!(!paths.is_empty());
            for w in paths.windows(2) {
                prop_assert!(w[0].len() <= w[1].len(), "paths must be sorted by hop count");
                prop_assert_ne!(&w[0], &w[1]);
            }
            for p in &paths {
                prop_assert_eq!(p.source(), src);
                prop_assert_eq!(p.destination(), dst);
                // Simplicity: node list has no duplicates.
                let mut nodes: Vec<_> = p.nodes().to_vec();
                nodes.sort();
                nodes.dedup();
                prop_assert_eq!(nodes.len(), p.nodes().len());
            }
        }

        #[test]
        fn racke_paths_have_valid_endpoints(g in arbitrary_connected_graph()) {
            let cfg = RackeConfig::default();
            let src = NodeId(1 % g.num_nodes());
            let dst = NodeId(g.num_nodes() - 1);
            if src != dst {
                let paths = racke_paths(&g, src, dst, &cfg);
                prop_assert!(!paths.is_empty());
                for p in &paths {
                    prop_assert_eq!(p.source(), src);
                    prop_assert_eq!(p.destination(), dst);
                    prop_assert!(p.capacity(&g) > 0.0);
                }
            }
        }

        #[test]
        fn ring_graphs_are_strongly_connected(g in arbitrary_connected_graph()) {
            prop_assert!(g.is_strongly_connected());
        }
    }
}
