//! Shortest-path primitives (Dijkstra) and Yen's k-shortest simple paths.
//!
//! The paper (§5.1) pre-computes the three shortest paths between every pair of
//! nodes with Yen's algorithm and uses them as the candidate paths for flow
//! allocation.  [`k_shortest_paths`] implements Yen's algorithm on top of a
//! Dijkstra that supports masking out nodes and edges.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeId, Graph, NodeId};
use crate::paths::Path;

/// Edge weight function used by the shortest-path routines.
///
/// The paper uses hop count ("three shortest paths"); inverse-capacity weights
/// are also provided because the Räcke-style path selection penalizes
/// low-capacity links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeWeight {
    /// Every edge costs 1 (hop count).
    HopCount,
    /// Every edge costs `1 / capacity`.
    InverseCapacity,
}

impl EdgeWeight {
    /// The cost of the given edge under this weight function.
    pub fn cost(self, graph: &Graph, edge: EdgeId) -> f64 {
        match self {
            EdgeWeight::HopCount => 1.0,
            EdgeWeight::InverseCapacity => 1.0 / graph.capacity(edge),
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want the minimum distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.index().cmp(&self.node.index()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest path from `src` to `dst` using a custom per-edge cost.
///
/// `banned_nodes[i] == true` removes node `i` (it can still be the source),
/// `banned_edges[e] == true` removes edge `e`.  Returns `None` if `dst` is
/// unreachable under those restrictions.
pub fn dijkstra_with_bans<F>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    cost: F,
    banned_nodes: &[bool],
    banned_edges: &[bool],
) -> Option<Path>
where
    F: Fn(EdgeId) -> f64,
{
    assert_eq!(banned_nodes.len(), graph.num_nodes(), "banned_nodes length mismatch");
    assert_eq!(banned_edges.len(), graph.num_edges(), "banned_edges length mismatch");
    if src == dst {
        return None;
    }
    let n = graph.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: src });

    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > dist[node.index()] {
            continue;
        }
        if node == dst {
            break;
        }
        for &eid in graph.out_edges(node) {
            if banned_edges[eid.index()] {
                continue;
            }
            let edge = graph.edge(eid);
            if banned_nodes[edge.dst.index()] {
                continue;
            }
            let c = cost(eid);
            debug_assert!(c >= 0.0, "edge costs must be non-negative");
            let nd = d + c;
            if nd < dist[edge.dst.index()] {
                dist[edge.dst.index()] = nd;
                prev_edge[edge.dst.index()] = Some(eid);
                heap.push(HeapEntry { dist: nd, node: edge.dst });
            }
        }
    }

    if dist[dst.index()].is_infinite() {
        return None;
    }
    // Reconstruct edge sequence backwards.
    let mut edges_rev = Vec::new();
    let mut cur = dst;
    while cur != src {
        let eid = prev_edge[cur.index()].expect("predecessor exists for reached node");
        edges_rev.push(eid);
        cur = graph.edge(eid).src;
    }
    edges_rev.reverse();
    Path::from_edges(graph, edges_rev)
}

/// Dijkstra shortest path without restrictions.
pub fn shortest_path(graph: &Graph, src: NodeId, dst: NodeId, weight: EdgeWeight) -> Option<Path> {
    let banned_nodes = vec![false; graph.num_nodes()];
    let banned_edges = vec![false; graph.num_edges()];
    dijkstra_with_bans(graph, src, dst, |e| weight.cost(graph, e), &banned_nodes, &banned_edges)
}

fn path_cost<F: Fn(EdgeId) -> f64>(path: &Path, cost: &F) -> f64 {
    path.edges().iter().map(|&e| cost(e)).sum()
}

/// Yen's algorithm: up to `k` loop-free shortest paths from `src` to `dst`,
/// ordered by increasing cost.
///
/// Ties are broken deterministically (by the node sequence), so the result is
/// stable across runs, which matters for reproducible experiments.
pub fn k_shortest_paths(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    weight: EdgeWeight,
) -> Vec<Path> {
    k_shortest_paths_with_cost(graph, src, dst, k, |e| weight.cost(graph, e))
}

/// Yen's algorithm with an arbitrary non-negative edge-cost function.
pub fn k_shortest_paths_with_cost<F>(
    graph: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    cost: F,
) -> Vec<Path>
where
    F: Fn(EdgeId) -> f64,
{
    if k == 0 || src == dst {
        return Vec::new();
    }
    let banned_nodes_none = vec![false; graph.num_nodes()];
    let banned_edges_none = vec![false; graph.num_edges()];
    let first =
        match dijkstra_with_bans(graph, src, dst, &cost, &banned_nodes_none, &banned_edges_none) {
            Some(p) => p,
            None => return Vec::new(),
        };
    let mut result: Vec<Path> = vec![first];
    // Candidate set: (cost, node-sequence) to get deterministic ordering.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while result.len() < k {
        let last = result.last().expect("result has at least one path").clone();
        let last_nodes = last.nodes().to_vec();
        // Spur node ranges over every node of the previous path except the destination.
        for i in 0..last_nodes.len() - 1 {
            let spur_node = last_nodes[i];
            let root_nodes = &last_nodes[..=i];

            let mut banned_edges = vec![false; graph.num_edges()];
            let mut banned_nodes = vec![false; graph.num_nodes()];
            // Ban edges that would recreate an already-found path sharing this root.
            for p in result.iter().map(|p| p.nodes()).chain(std::iter::empty()) {
                if p.len() > i && p[..=i] == *root_nodes {
                    // Ban the edge leaving the spur node on that path.
                    if let Some(next) = p.get(i + 1) {
                        // Find the concrete edge used by that path.
                        for res in &result {
                            if res.nodes().len() > i + 1
                                && res.nodes()[..=i] == *root_nodes
                                && res.nodes()[i + 1] == *next
                            {
                                banned_edges[res.edges()[i].index()] = true;
                            }
                        }
                    }
                }
            }
            // Ban the root nodes (except the spur node itself) to keep paths simple.
            for node in &root_nodes[..i] {
                banned_nodes[node.index()] = true;
            }

            let spur =
                dijkstra_with_bans(graph, spur_node, dst, &cost, &banned_nodes, &banned_edges);
            if let Some(spur_path) = spur {
                // Total path = root edges + spur edges.
                let mut edges: Vec<EdgeId> = last.edges()[..i].to_vec();
                edges.extend_from_slice(spur_path.edges());
                if let Some(total) = Path::from_edges(graph, edges) {
                    let c = path_cost(&total, &cost);
                    let duplicate = result.iter().any(|p| p == &total)
                        || candidates.iter().any(|(_, p)| p == &total);
                    if !duplicate {
                        candidates.push((c, total));
                    }
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pick the cheapest candidate; tie-break on the node sequence for determinism.
        candidates.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.1.nodes().cmp(b.1.nodes()))
        });
        let (_, best) = candidates.remove(0);
        result.push(best);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0 -> 1 -> 3 (short), 0 -> 2 -> 3 (short), 0 -> 3 via 1 and 2 (long).
    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 10.0).unwrap(); // e0
        g.add_edge(NodeId(1), NodeId(3), 10.0).unwrap(); // e1
        g.add_edge(NodeId(0), NodeId(2), 10.0).unwrap(); // e2
        g.add_edge(NodeId(2), NodeId(3), 10.0).unwrap(); // e3
        g.add_edge(NodeId(1), NodeId(2), 10.0).unwrap(); // e4
        g
    }

    #[test]
    fn dijkstra_finds_shortest() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(0), NodeId(3), EdgeWeight::HopCount).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.destination(), NodeId(3));
    }

    #[test]
    fn dijkstra_unreachable_returns_none() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(shortest_path(&g, NodeId(0), NodeId(2), EdgeWeight::HopCount).is_none());
        assert!(shortest_path(&g, NodeId(0), NodeId(0), EdgeWeight::HopCount).is_none());
    }

    #[test]
    fn dijkstra_respects_bans() {
        let g = diamond();
        let mut banned_edges = vec![false; g.num_edges()];
        banned_edges[1] = true; // forbid 1 -> 3
        let banned_nodes = vec![false; g.num_nodes()];
        let p = dijkstra_with_bans(&g, NodeId(0), NodeId(3), |_| 1.0, &banned_nodes, &banned_edges)
            .unwrap();
        assert!(!p.uses_edge(EdgeId(1)));
    }

    #[test]
    fn yen_returns_k_distinct_sorted_paths() {
        let g = diamond();
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(3), 3, EdgeWeight::HopCount);
        assert_eq!(paths.len(), 3);
        // Sorted by length.
        assert!(paths[0].len() <= paths[1].len());
        assert!(paths[1].len() <= paths[2].len());
        // Distinct.
        assert_ne!(paths[0], paths[1]);
        assert_ne!(paths[1], paths[2]);
        // Third path must be 0 -> 1 -> 2 -> 3.
        assert_eq!(paths[2].nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        // All simple with correct endpoints.
        for p in &paths {
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.destination(), NodeId(3));
        }
    }

    #[test]
    fn yen_handles_fewer_than_k_paths() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(2), 5, EdgeWeight::HopCount);
        assert_eq!(paths.len(), 1);
        assert!(k_shortest_paths(&g, NodeId(0), NodeId(2), 0, EdgeWeight::HopCount).is_empty());
        assert!(k_shortest_paths(&g, NodeId(2), NodeId(0), 3, EdgeWeight::HopCount).is_empty());
    }

    #[test]
    fn inverse_capacity_prefers_fat_links() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(2), 1.0).unwrap(); // direct but thin
        g.add_edge(NodeId(0), NodeId(1), 100.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 100.0).unwrap();
        let hop = shortest_path(&g, NodeId(0), NodeId(2), EdgeWeight::HopCount).unwrap();
        assert_eq!(hop.len(), 1);
        let cap = shortest_path(&g, NodeId(0), NodeId(2), EdgeWeight::InverseCapacity).unwrap();
        assert_eq!(cap.len(), 2);
    }
}
