//! Link-failure scenarios (§4.5 and §5.3 of the paper).
//!
//! A failure scenario is a set of failed *physical links*; because every
//! physical link is represented by two directed edges, failing a link removes
//! both directions.  The TE-side consequences (which paths become unavailable
//! and how their traffic is redistributed) live in the `figret-te` crate; this
//! module only produces and manipulates the failed-edge sets.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::graph::{EdgeId, Graph};

/// A set of failed directed edges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureScenario {
    failed: Vec<EdgeId>,
}

impl FailureScenario {
    /// A scenario with no failures.
    pub fn none() -> Self {
        FailureScenario::default()
    }

    /// Builds a scenario from an explicit list of failed directed edges.
    pub fn from_edges(mut edges: Vec<EdgeId>) -> Self {
        edges.sort();
        edges.dedup();
        FailureScenario { failed: edges }
    }

    /// The failed directed edges, sorted and deduplicated.
    pub fn failed_edges(&self) -> &[EdgeId] {
        &self.failed
    }

    /// Number of failed directed edges.
    pub fn len(&self) -> usize {
        self.failed.len()
    }

    /// `true` if nothing failed.
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// `true` if the given directed edge is failed.
    pub fn is_failed(&self, edge: EdgeId) -> bool {
        self.failed.binary_search(&edge).is_ok()
    }

    /// Boolean mask over all edges of `graph` (`true` = failed).
    pub fn edge_mask(&self, graph: &Graph) -> Vec<bool> {
        let mut mask = vec![false; graph.num_edges()];
        for e in &self.failed {
            if e.index() < mask.len() {
                mask[e.index()] = true;
            }
        }
        mask
    }
}

/// Samples `num_links` random bidirectional link failures, as in Figure 7 /
/// Figures 14-15 of the paper ("different numbers of randomly selected links").
///
/// Only links whose removal keeps the graph strongly connected are selected, so
/// every demand can still be served on at least one path in principle.  Returns
/// `None` if no such set could be found within a bounded number of attempts.
pub fn random_link_failures(graph: &Graph, num_links: usize, seed: u64) -> Option<FailureScenario> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfa11_0000);
    // Collect each physical link once as (forward, backward) directed edges.
    let mut links: Vec<(EdgeId, EdgeId)> = Vec::new();
    for (id, e) in graph.edges() {
        if e.src.index() < e.dst.index() {
            if let Some(back) = graph.find_edge(e.dst, e.src) {
                links.push((id, back));
            }
        }
    }
    if links.len() < num_links {
        return None;
    }
    for _attempt in 0..200 {
        let mut chosen = links.clone();
        chosen.shuffle(&mut rng);
        chosen.truncate(num_links);
        let mut failed = Vec::with_capacity(num_links * 2);
        for (f, b) in &chosen {
            failed.push(*f);
            failed.push(*b);
        }
        let scenario = FailureScenario::from_edges(failed);
        if remains_strongly_connected(graph, &scenario) {
            return Some(scenario);
        }
    }
    None
}

/// `true` if the graph minus the failed edges is still strongly connected.
pub fn remains_strongly_connected(graph: &Graph, scenario: &FailureScenario) -> bool {
    if graph.num_nodes() == 0 {
        return true;
    }
    let mask = scenario.edge_mask(graph);
    let n = graph.num_nodes();
    let reach = |reverse: bool| -> usize {
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 0;
        while let Some(v) = stack.pop() {
            count += 1;
            let edges = if reverse {
                graph.in_edges(crate::graph::NodeId(v))
            } else {
                graph.out_edges(crate::graph::NodeId(v))
            };
            for &eid in edges {
                if mask[eid.index()] {
                    continue;
                }
                let e = graph.edge(eid);
                let next = if reverse { e.src.index() } else { e.dst.index() };
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        count
    };
    reach(false) == n && reach(true) == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Topology, TopologySpec};
    use crate::graph::{Graph, NodeId};

    #[test]
    fn scenario_basics() {
        let s = FailureScenario::from_edges(vec![EdgeId(3), EdgeId(1), EdgeId(3)]);
        assert_eq!(s.len(), 2);
        assert!(s.is_failed(EdgeId(1)));
        assert!(!s.is_failed(EdgeId(0)));
        assert!(FailureScenario::none().is_empty());
    }

    #[test]
    fn edge_mask_matches() {
        let g = TopologySpec::full_scale(Topology::MetaDbPod).build();
        let s = FailureScenario::from_edges(vec![EdgeId(0), EdgeId(5)]);
        let mask = s.edge_mask(&g);
        assert_eq!(mask.iter().filter(|m| **m).count(), 2);
        assert!(mask[0] && mask[5]);
    }

    #[test]
    fn random_failures_keep_connectivity() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        for k in 1..=3 {
            let s = random_link_failures(&g, k, 42).expect("GEANT tolerates up to 3 link failures");
            assert_eq!(s.len(), 2 * k, "each failed link removes both directions");
            assert!(remains_strongly_connected(&g, &s));
        }
    }

    #[test]
    fn random_failures_are_deterministic_per_seed() {
        let g = TopologySpec::full_scale(Topology::Geant).build();
        let a = random_link_failures(&g, 2, 5).unwrap();
        let b = random_link_failures(&g, 2, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn impossible_failure_count_returns_none() {
        let mut g = Graph::new(2);
        g.add_bidirectional(NodeId(0), NodeId(1), 1.0).unwrap();
        // Failing the only link disconnects the graph; requesting 1 failure must fail.
        assert!(random_link_failures(&g, 1, 1).is_none());
        // Requesting more links than exist must also fail.
        assert!(random_link_failures(&g, 5, 1).is_none());
    }
}
