//! Large-fabric generators: 512–4096-ToR topologies beyond Table 1.
//!
//! The paper's largest evaluated fabric is the 324-ToR Meta WEB cluster; the
//! sparse demand–path core (DESIGN.md) exists to push past that.  This module
//! provides the two standard shapes used at that scale:
//!
//! * **Random-regular** (Jellyfish-style): every node is a ToR, uniform
//!   degree — the same construction the Table 1 ToR fabrics use, at 512+
//!   nodes ([`FabricFlavor::RandomRegular`]).
//! * **Two-tier pod fabric**: ToRs partitioned into pods, each ToR wired to
//!   every aggregation switch of its pod, and aggregation switches of
//!   different pods fully meshed with fatter uplinks
//!   ([`FabricFlavor::TwoTierPod`]).  Traffic originates and terminates only
//!   at ToRs — the node-id prefix `0..num_tors` — so the demand universe is
//!   a sparse subset of the node pairs by construction.
//!
//! At these sizes the dense `N×N` demand universe is 0.26M–16.8M pairs;
//! nothing here materializes it.  Fabric experiments pair these graphs with
//! `ActivePairs`-restricted traffic and path sets.

use crate::generators::random_regular;
use crate::graph::{Graph, NodeId};

/// Uniform ToR-link capacity (Gbps), matching the Table 1 DC generators.
const TOR_CAPACITY: f64 = 100.0;

/// Capacity multiplier for aggregation-layer links of a two-tier fabric.
const UPLINK_FACTOR: f64 = 4.0;

/// The wiring shape of a large fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricFlavor {
    /// Jellyfish-style random-regular graph; every node is a ToR.
    RandomRegular {
        /// Uniform node degree (undirected).
        degree: usize,
    },
    /// ToRs in pods behind pod-local aggregation switches; aggregation
    /// switches of distinct pods are fully meshed.
    TwoTierPod {
        /// Number of pods (`tors` must be divisible by it).
        pods: usize,
        /// Aggregation switches per pod (also the intra-pod path diversity).
        aggs_per_pod: usize,
    },
}

/// A concrete request for a large fabric instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricSpec {
    /// Number of traffic-bearing ToR switches.
    pub tors: usize,
    /// Wiring shape.
    pub flavor: FabricFlavor,
    /// Seed for the deterministic pseudo-random construction (random-regular
    /// wiring; the two-tier shape is fully deterministic).
    pub seed: u64,
}

/// Pod size used by the two-tier preset at a given ToR count: 64-ToR pods
/// at production scale (multiples of 64, at least 128 ToRs), 8-ToR pods for
/// small fabrics (multiples of 8, at least 16 ToRs).  Shard planners use
/// this to align pod partitions with the built topology.
///
/// # Panics
///
/// Panics when `tors` fits neither sizing rule.
pub fn two_tier_pod_size(tors: usize) -> usize {
    if tors >= 128 && tors.is_multiple_of(64) {
        64
    } else {
        assert!(
            tors >= 16 && tors.is_multiple_of(8),
            "the two-tier preset needs 8- or 64-ToR pods ({tors} ToRs fits neither)"
        );
        8
    }
}

/// A built fabric: the graph plus the ToR/forwarding split.
///
/// ToRs are the node-id prefix `0..num_tors`; any remaining nodes are
/// aggregation switches that only forward (no demand originates or
/// terminates there).
#[derive(Debug, Clone)]
pub struct Fabric {
    /// The physical topology.
    pub graph: Graph,
    /// Number of traffic-bearing ToRs (node ids `0..num_tors`).
    pub num_tors: usize,
}

impl FabricSpec {
    /// The standard Jellyfish preset at a given ToR count: degree-16
    /// random-regular (diameter ≤ 4 up to 4096 nodes), default seed.
    pub fn jellyfish(tors: usize) -> FabricSpec {
        FabricSpec { tors, flavor: FabricFlavor::RandomRegular { degree: 16 }, seed: 7 }
    }

    /// The standard two-tier preset at a given ToR count: pods of
    /// [`two_tier_pod_size`] ToRs with 4 aggregation switches each, default
    /// seed.  Production-scale fabrics (multiples of 64, at least 128 ToRs)
    /// get 64-ToR pods; small test fabrics (multiples of 8, at least 16
    /// ToRs) get 8-ToR pods so CI-sized pod topologies exist.
    pub fn two_tier(tors: usize) -> FabricSpec {
        let pod = two_tier_pod_size(tors);
        FabricSpec {
            tors,
            flavor: FabricFlavor::TwoTierPod { pods: tors / pod, aggs_per_pod: 4 },
            seed: 7,
        }
    }

    /// Builds the fabric described by this spec.
    pub fn build(&self) -> Fabric {
        match self.flavor {
            FabricFlavor::RandomRegular { degree } => {
                assert!(self.tors > degree, "degree must be smaller than the ToR count");
                let graph =
                    random_regular("ToR fabric", self.tors, degree, TOR_CAPACITY, self.seed);
                Fabric { graph, num_tors: self.tors }
            }
            FabricFlavor::TwoTierPod { pods, aggs_per_pod } => {
                assert!(pods >= 2, "a two-tier fabric needs at least two pods");
                assert!(aggs_per_pod >= 1, "each pod needs an aggregation switch");
                assert!(
                    self.tors.is_multiple_of(pods),
                    "ToR count must be divisible by the pod count"
                );
                let tors_per_pod = self.tors / pods;
                assert!(tors_per_pod >= 1, "each pod needs a ToR");
                let num_aggs = pods * aggs_per_pod;
                let mut graph = Graph::named("pod fabric", self.tors + num_aggs);
                // ToR i lives in pod i / tors_per_pod and uplinks to every
                // aggregation switch of that pod.
                for tor in 0..self.tors {
                    let pod = tor / tors_per_pod;
                    for a in 0..aggs_per_pod {
                        let agg = self.tors + pod * aggs_per_pod + a;
                        graph
                            .add_bidirectional(NodeId(tor), NodeId(agg), TOR_CAPACITY)
                            .expect("uplink edge is valid");
                    }
                }
                // Aggregation switches of distinct pods are fully meshed with
                // fatter links (intra-pod ToRs already meet at their own aggs).
                for x in 0..num_aggs {
                    for y in (x + 1)..num_aggs {
                        if x / aggs_per_pod == y / aggs_per_pod {
                            continue;
                        }
                        graph
                            .add_bidirectional(
                                NodeId(self.tors + x),
                                NodeId(self.tors + y),
                                TOR_CAPACITY * UPLINK_FACTOR,
                            )
                            .expect("mesh edge is valid");
                    }
                }
                debug_assert!(graph.is_strongly_connected());
                Fabric { graph, num_tors: self.tors }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jellyfish_is_regular_and_connected() {
        let fabric = FabricSpec::jellyfish(128).build();
        assert_eq!(fabric.graph.num_nodes(), 128);
        assert_eq!(fabric.num_tors, 128);
        assert!(fabric.graph.is_strongly_connected());
        for n in fabric.graph.nodes() {
            assert_eq!(fabric.graph.out_degree(n), 16);
        }
    }

    #[test]
    fn two_tier_shape_and_reachability() {
        let fabric = FabricSpec::two_tier(128).build();
        let (pods, app, tpp) = (2, 4, 64);
        assert_eq!(fabric.num_tors, 128);
        assert_eq!(fabric.graph.num_nodes(), 128 + pods * app);
        assert!(fabric.graph.is_strongly_connected());
        // Every ToR uplinks to exactly its pod's aggs.
        for tor in 0..fabric.num_tors {
            assert_eq!(fabric.graph.out_degree(NodeId(tor)), app);
        }
        // Aggs carry tors_per_pod downlinks plus the cross-pod mesh.
        for a in 0..pods * app {
            assert_eq!(
                fabric.graph.out_degree(NodeId(fabric.num_tors + a)),
                tpp + (pods - 1) * app
            );
        }
        // Cross-pod ToR pairs are 3 hops (tor→agg→agg→tor), intra-pod 2.
        let cross = crate::shortest::shortest_path(
            &fabric.graph,
            NodeId(0),
            NodeId(tpp),
            crate::shortest::EdgeWeight::HopCount,
        )
        .expect("cross-pod path exists");
        assert_eq!(cross.len(), 3);
        let intra = crate::shortest::shortest_path(
            &fabric.graph,
            NodeId(0),
            NodeId(1),
            crate::shortest::EdgeWeight::HopCount,
        )
        .expect("intra-pod path exists");
        assert_eq!(intra.len(), 2);
    }

    #[test]
    fn fabric_builds_are_deterministic() {
        let a = FabricSpec::jellyfish(64).build();
        let b = FabricSpec::jellyfish(64).build();
        assert_eq!(a.graph, b.graph);
        let c = FabricSpec { seed: 11, ..FabricSpec::jellyfish(64) }.build();
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    #[should_panic(expected = "fits neither")]
    fn two_tier_preset_rejects_ragged_sizes() {
        FabricSpec::two_tier(100);
    }

    #[test]
    fn two_tier_pod_sizes_cover_small_and_large_fabrics() {
        assert_eq!(two_tier_pod_size(16), 8);
        assert_eq!(two_tier_pod_size(64), 8); // below 128: small pods
        assert_eq!(two_tier_pod_size(128), 64);
        assert_eq!(two_tier_pod_size(512), 64);
        let small = FabricSpec::two_tier(16).build();
        assert_eq!(small.num_tors, 16);
        // 2 pods of 8 ToRs, 4 aggs each.
        assert_eq!(small.graph.num_nodes(), 16 + 2 * 4);
        assert!(small.graph.is_strongly_connected());
    }
}
